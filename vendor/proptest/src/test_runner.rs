//! Test-case configuration, errors, and the deterministic RNG.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed assertion inside a generated test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generation RNG (SplitMix64).
///
/// Seeded from the test's name so every test gets an independent stream and
/// every failure reproduces by simply re-running the test — the shim's
/// replacement for upstream's persisted failure seeds.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name picks the stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Unbiased value in `[0, span)` by rejection sampling.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0);
        let zone = (u64::MAX / span) * span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Unbiased value in `[0, span)` for 128-bit spans.
    pub fn below_u128(&mut self, span: u128) -> u128 {
        assert!(span > 0);
        let zone = (u128::MAX / span) * span;
        loop {
            let v = self.next_u128();
            if v < zone {
                return v % span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_differ_by_name() {
        let a = TestRng::deterministic("alpha").next_u64();
        let b = TestRng::deterministic("beta").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
            assert!(rng.below_u128(u64::MAX as u128 + 5) < u64::MAX as u128 + 5);
        }
    }
}
