//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with a length drawn from `len` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::deterministic("vec_len");
        let s = vec(any::<u64>(), 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
