//! Offline drop-in subset of the `proptest` API.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` inner
//! attribute), `any::<T>()` for primitive `T`, integer-range strategies,
//! [`collection::vec`], `prop_map` / `prop_filter` combinators, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (a failing case reports the generated inputs via `Debug`
//! but is not minimized), no persisted failure seeds (generation is
//! deterministic per test name instead, so failures always reproduce), and
//! a fixed-seed RNG rather than an entropy-seeded one.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Top-level entry point: declares one `#[test]` per contained function,
/// each running its body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut rng,
                    );
                )*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg),*
                );
                let run = || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(e) = run() {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: {}",
                    stringify!($cond)
                )),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __lhs = $lhs;
        let __rhs = $rhs;
        if !(__lhs == __rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assert_eq failed: {:?} != {:?}",
                __lhs, __rhs
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let __lhs = $lhs;
        let __rhs = $rhs;
        if __lhs == __rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assert_ne failed: both sides are {:?}",
                __lhs
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn range_strategy_in_bounds(x in 10u32..20) {
            prop_assert!((10..20).contains(&x));
        }

        #[test]
        fn signed_range(x in -50i128..50) {
            prop_assert!(x >= -50 && x < 50);
        }
    }

    proptest! {
        #[test]
        fn vec_strategy_len(v in crate::collection::vec(any::<u64>(), 0..5)) {
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn map_and_filter(
            x in (1u64..1000).prop_map(|v| v * 2).prop_filter("even", |v| v % 2 == 0)
        ) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x >= 2);
        }
    }

    // No #[test] attribute: the macro also accepts plain functions, which
    // lets this one be invoked manually to observe the failure path.
    proptest! {
        fn always_fails(x in any::<u8>()) {
            prop_assert_eq!(x as u16 + 1, 0u16);
        }
    }

    #[test]
    #[should_panic(expected = "assert_eq failed")]
    fn failing_case_panics_with_inputs() {
        always_fails();
    }
}
