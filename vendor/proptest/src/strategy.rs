//! Value-generation strategies (no shrinking — see crate docs).

use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Reject values failing a predicate (regenerating, bounded retries).
    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 candidates in a row",
            self.reason
        );
    }
}

/// Types with a full-domain default strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — enough for this workspace's tests; upstream's
    /// `any::<f64>()` covers the full bit pattern space instead.
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = rng.below_u128(span);
                ((self.start as i128).wrapping_add(v as i128)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let v = rng.below_u128(span);
                ((lo as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic("any_u64");
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::deterministic("map");
        let s = (0u32..10).prop_map(|v| v as u64 + 100);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::deterministic("filter");
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn i128_range_covers_negatives() {
        let mut rng = TestRng::deterministic("i128");
        let s = -1000i128..1000;
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((-1000..1000).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }
}
