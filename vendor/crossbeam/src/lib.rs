//! Offline drop-in subset of the `crossbeam` 0.8 API.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided,
//! implemented over `std::sync::mpsc`. The workspace uses channels
//! point-to-point (one sender, one receiver per direction), so none of
//! crossbeam's multi-consumer or `select!` machinery is needed.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(42u64).unwrap();
            assert_eq!(rx.recv().unwrap(), 42);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u64>();
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            ));
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let sum: u64 = (0..100).map(|_| rx.recv().unwrap()).sum();
            assert_eq!(sum, 4950);
        }
    }
}
