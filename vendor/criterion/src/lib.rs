//! Offline drop-in subset of the `criterion` 0.5 benchmarking API.
//!
//! Supports the surface the `pivot-bench` suite uses: `Criterion`,
//! `benchmark_group` with `sample_size` / `measurement_time`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros (which require `harness = false` bench
//! targets, exactly as upstream does).
//!
//! Instead of upstream's statistical pipeline (outlier classification,
//! bootstrap confidence intervals, HTML reports) this shim runs a fixed
//! warm-up iteration followed by up to `sample_size` timed iterations,
//! stopping early once `measurement_time` is exhausted, and prints
//! `name ... time: [min mean max]` lines in a criterion-like format.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing loop handle passed to every benchmark closure.
pub struct Bencher<'a> {
    sample_size: usize,
    measurement_time: Duration,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Run the routine repeatedly, recording one wall-clock sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let budget_start = Instant::now();
        for done in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            // Keep at least 2 timed samples so min/max are meaningful.
            if done >= 1 && budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(5),
        }
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher<'_>),
) {
    let mut samples = Vec::with_capacity(sample_size);
    let mut b = Bencher {
        sample_size,
        measurement_time,
        samples: &mut samples,
    };
    f(&mut b);
    if samples.is_empty() {
        println!("{name:<40} (no samples recorded)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

impl Criterion {
    /// Honour a subset of criterion's CLI arguments (ignores the rest,
    /// including the `--bench` flag cargo passes to bench binaries).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        run_one(
            &name,
            self.default_sample_size,
            self.default_measurement_time,
            &mut f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (upstream requires >= 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size too small");
        self.sample_size = n;
        self
    }

    /// Wall-clock budget for each benchmark's timed iterations.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Finish the group (upstream emits summary reports here; no-op).
    pub fn finish(self) {}
}

/// Declare a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        g.bench_function("counting", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + up to 3 timed iterations.
        assert!(runs >= 2);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
