//! Offline drop-in subset of the `bytes` crate: the [`Buf`] / [`BufMut`]
//! cursor traits over `&[u8]` and `Vec<u8>`, little-endian accessors only
//! (plus `u8`). The `Bytes`/`BytesMut` reference-counted buffer types are
//! not provided — the wire codec only needs the traits.

macro_rules! get_le {
    ($($fn_name:ident -> $t:ty),* $(,)?) => {$(
        /// Read a little-endian value from the front, advancing the cursor.
        /// Panics if the buffer is too short (as upstream does).
        fn $fn_name(&mut self) -> $t {
            const N: usize = core::mem::size_of::<$t>();
            let mut bytes = [0u8; N];
            bytes.copy_from_slice(&self.chunk_prefix(N));
            self.advance(N);
            <$t>::from_le_bytes(bytes)
        }
    )*};
}

macro_rules! put_le {
    ($($fn_name:ident($t:ty)),* $(,)?) => {$(
        /// Append a value in little-endian byte order.
        fn $fn_name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Borrow the first `n` unconsumed bytes (panics if unavailable).
    fn chunk_prefix(&self, n: usize) -> &[u8];

    /// Skip `n` bytes (panics if unavailable).
    fn advance(&mut self, n: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk_prefix(1)[0];
        self.advance(1);
        b
    }

    get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_u128_le -> u128,
        get_i16_le -> i16,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_i128_le -> i128,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk_prefix(&self, n: usize) -> &[u8] {
        &self[..n]
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_u128_le(u128),
        put_i16_le(i16),
        put_i32_le(i32),
        put_i64_le(i64),
        put_i128_le(i128),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_u128_le(u128::MAX - 2);
        buf.put_i64_le(-7);
        buf.put_i128_le(-9);
        buf.put_f64_le(2.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_u128_le(), u128::MAX - 2);
        assert_eq!(r.get_i64_le(), -7);
        assert_eq!(r.get_i128_le(), -9);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    #[should_panic]
    fn underrun_panics() {
        let mut r: &[u8] = &[1u8];
        r.get_u64_le();
    }
}
