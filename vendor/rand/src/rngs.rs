//! Named RNG types (only `StdRng` is provided).

use crate::{RngCore, SeedableRng};

/// xoshiro256** — a fast, high-quality, *non-cryptographic* PRNG.
///
/// Replaces upstream's ChaCha12-based `StdRng`; see the crate docs for why
/// that is acceptable here. Determinism contract: the output stream for a
/// given `seed_from_u64` seed is fixed and platform-independent.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand seeds (the xoshiro authors' own
/// recommended seeding procedure).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point of xoshiro; re-expand it.
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_xoshiro256starstar() {
        // Reference vector: state {1, 2, 3, 4} per the xoshiro authors'
        // public C implementation.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let expect: [u64; 5] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
        ];
        for e in expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::seed_from_u64(0);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn from_seed_zero_falls_back() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert!(rng.next_u64() != 0 || rng.next_u64() != 0);
    }
}
