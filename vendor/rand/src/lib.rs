//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually uses: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`], uniform integer/float sampling
//! via [`Rng::gen_range`], and `Standard`-style sampling via [`Rng::gen`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64. It is **not**
//! the upstream ChaCha12-based `StdRng` and makes no cryptographic claims —
//! every security-relevant random value in the workspace is drawn through
//! `pivot_bignum::rng` on top of these raw bits, and the protocols under
//! test are simulations. What matters for the benchmarks is determinism:
//! identical seeds yield identical streams on every platform, forever.

pub mod rngs;

/// Low-level source of random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream convention).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Unbiased `[0, span)` sampling by rejection (span > 0).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64: values below it map to
    // `v % span` without modulo bias.
    let zone = (u64::MAX / span) * span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for 128-bit ranges wider than 2^64.
                    let v = u128::sample(rng) % span;
                    (self.start as i128 + v as i128) as $t
                } else {
                    let v = uniform_below(rng, span as u64);
                    (self.start as i128 + v as i128) as $t
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    let v = u128::sample(rng) % span;
                    (lo as i128 + v as i128) as $t
                } else {
                    let v = uniform_below(rng, span as u64);
                    (lo as i128 + v as i128) as $t
                }
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value via the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in the given range (`low..high` or `low..=high`).
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
