//! Facade crate for the Pivot reproduction: re-exports every sub-crate.
//!
//! See the individual crates for detail:
//! - [`bignum`] arbitrary-precision integers
//! - [`paillier`] threshold Paillier cryptosystem
//! - [`transport`] multi-party in-process network
//! - [`mpc`] additive secret sharing (SPDZ-style, semi-honest)
//! - [`data`] datasets, synthesis, vertical partitioning
//! - [`trees`] plaintext CART / random forest / GBDT baselines
//! - [`core`] the Pivot protocols (basic, enhanced, ensembles, baselines)
//! - [`zkp`] Σ-protocol building blocks for the malicious extension

pub use pivot_bignum as bignum;
pub use pivot_core as core;
pub use pivot_data as data;
pub use pivot_mpc as mpc;
pub use pivot_paillier as paillier;
pub use pivot_transport as transport;
pub use pivot_trees as trees;
pub use pivot_zkp as zkp;
