//! Malicious-model integration (§9.1): clients commit their indicator
//! vectors with POPK and prove their encrypted split statistics with
//! POHDP; a cheating client's forged statistic is detected.

use pivot::bignum::{rng as brng, BigUint};
use pivot::paillier::{fixtures, vector, Ciphertext};
use pivot::zkp::{DotProductProof, MultiplicationProof, PlaintextProof};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn committed_statistics_verify_and_forgeries_fail() {
    let mut rng = StdRng::seed_from_u64(1);
    let keys = fixtures::threshold_keys(3, 192);
    let pk = &keys.pk;

    // The super client publishes an encrypted label-mask vector [γ].
    let gamma_plain: Vec<u64> = vec![1, 0, 1, 1, 0];
    let gamma: Vec<Ciphertext> = gamma_plain
        .iter()
        .map(|&v| pk.encrypt(&BigUint::from_u64(v), &mut rng))
        .collect();

    // A client commits its split-indicator vector v = (1,1,0,0,1) with
    // POPK per element (§9.1.2 "commit the pre-computed split indicator
    // vectors").
    let v: Vec<u64> = vec![1, 1, 0, 0, 1];
    let mut commitments = Vec::new();
    let mut v_rand = Vec::new();
    let v_big: Vec<BigUint> = v.iter().map(|&b| BigUint::from_u64(b)).collect();
    for xv in &v_big {
        let r = brng::gen_coprime(&mut rng, pk.n());
        let c = pk.encrypt_with(xv, &r);
        let proof = PlaintextProof::prove(pk, &c, xv, &r, &mut rng);
        assert!(proof.verify(pk, &c), "commitment proof must verify");
        commitments.push(c);
        v_rand.push(r);
    }

    // The client computes its encrypted statistic g = v ⊙ [γ] and proves
    // it with POHDP.
    let (stat, s) = DotProductProof::dot(pk, &gamma, &v_big, &mut rng);
    let proof = DotProductProof::prove(
        pk,
        &commitments,
        &gamma,
        &stat,
        &v_big,
        &v_rand,
        &s,
        &mut rng,
    );
    assert!(proof.verify(pk, &commitments, &gamma, &stat));

    // Decrypts to the honest dot product: samples 0 and 4 match → 1+0 = 1…
    // v·γ = 1·1 + 1·0 + 0·1 + 0·1 + 1·0 = 1.
    let partials: Vec<_> = keys
        .shares
        .iter()
        .map(|sh| sh.partial_decrypt(&stat))
        .collect();
    assert_eq!(keys.combiner.combine(&partials), BigUint::from_u64(1));

    // Forgery: the client swaps in a different statistic — verification
    // fails, the honest clients abort (§9.1.2).
    let forged = vector::dot_binary(pk, &gamma, &[true, true, true, true, true]);
    assert!(!proof.verify(pk, &commitments, &gamma, &forged));
}

#[test]
fn eta_update_proof_for_prediction() {
    // Algorithm 4's η updates are plaintext-ciphertext multiplications;
    // POPCM proves each one (§9.1.2 model prediction).
    let mut rng = StdRng::seed_from_u64(2);
    let keys = fixtures::threshold_keys(2, 192);
    let pk = &keys.pk;

    let eta_j = pk.encrypt(&BigUint::one(), &mut rng);
    // The client's path bit (here: eliminate the path, bit = 0), committed.
    let bit = BigUint::zero();
    let r1 = brng::gen_coprime(&mut rng, pk.n());
    let c1 = pk.encrypt_with(&bit, &r1);
    let (updated, s) = MultiplicationProof::multiply(pk, &eta_j, &bit, &mut rng);
    let proof = MultiplicationProof::prove(pk, &c1, &eta_j, &updated, &bit, &r1, &s, &mut rng);
    assert!(proof.verify(pk, &c1, &eta_j, &updated));

    // The updated entry decrypts to 0 (path eliminated) without revealing
    // which client eliminated it.
    let partials: Vec<_> = keys
        .shares
        .iter()
        .map(|sh| sh.partial_decrypt(&updated))
        .collect();
    assert_eq!(keys.combiner.combine(&partials), BigUint::zero());

    // A cheater claiming a different η' fails.
    let wrong = pk.encrypt(&BigUint::one(), &mut rng);
    assert!(!proof.verify(pk, &c1, &eta_j, &wrong));
}
