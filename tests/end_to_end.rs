//! Cross-crate integration tests on the facade crate: the full pipeline
//! from data synthesis through vertical partitioning, privacy-preserving
//! training, and joint prediction.

use pivot::core::{config::PivotParams, party::PartyContext, predict_basic, train_basic};
use pivot::data::{metrics, partition_vertically, synth};
use pivot::transport::run_parties;
use pivot::trees::{train_tree, TreeParams};

#[test]
fn full_pipeline_classification() {
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 90,
        features: 6,
        informative: 4,
        classes: 3,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 99,
    });
    let (train, test) = data.train_test_split(0.3);
    let m = 3;
    let train_part = partition_vertically(&train, m, 0);
    let test_part = partition_vertically(&test, m, 0);
    let params = PivotParams {
        tree: TreeParams {
            max_depth: 3,
            max_splits: 4,
            ..Default::default()
        },
        keysize: 128,
        ..Default::default()
    };

    let results = run_parties(m, |ep| {
        let view = train_part.views[ep.id()].clone();
        let test_view = &test_part.views[ep.id()];
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let tree = train_basic::train(&mut ctx);
        let local: Vec<Vec<f64>> = (0..test_view.num_samples())
            .map(|i| test_view.features[i].clone())
            .collect();
        predict_basic::predict_batch(&mut ctx, &tree, &local)
    });

    let acc = metrics::accuracy(&results[0], test.labels());
    assert!(acc > 0.75, "federated accuracy {acc}");

    // Sanity: close to what a centralized tree achieves.
    let central = train_tree(
        &train,
        &TreeParams {
            max_depth: 3,
            max_splits: 4,
            ..Default::default()
        },
    );
    let central_preds: Vec<f64> = (0..test.num_samples())
        .map(|i| central.predict(test.sample(i)))
        .collect();
    let central_acc = metrics::accuracy(&central_preds, test.labels());
    assert!(
        (acc - central_acc).abs() < 0.1,
        "federated {acc} vs centralized {central_acc}"
    );
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time checks that the facade exposes every subsystem.
    let _ = pivot::bignum::BigUint::from_u64(1);
    let _ = pivot::mpc::Fp::new(5);
    let _ = pivot::paillier::fixtures::threshold_keys(2, 128);
    let _ = pivot::zkp::Sha256::digest(b"pivot");
    let cfg = pivot::mpc::FixedConfig::default();
    cfg.assert_valid();
}

#[test]
fn different_super_client_positions() {
    // The label holder need not be client 0.
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 40,
        features: 6,
        informative: 3,
        classes: 2,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 4,
    });
    let m = 3;
    for super_client in [0usize, 1, 2] {
        let partition = partition_vertically(&data, m, super_client);
        let params = PivotParams {
            tree: TreeParams {
                max_depth: 2,
                max_splits: 3,
                ..Default::default()
            },
            keysize: 128,
            ..Default::default()
        };
        let trees = run_parties(m, |ep| {
            let view = partition.views[ep.id()].clone();
            let mut ctx = PartyContext::setup(&ep, view, params.clone());
            assert_eq!(ctx.super_client, super_client);
            train_basic::train(&mut ctx)
        });
        assert_eq!(trees[0], trees[1]);
        assert_eq!(trees[1], trees[2]);
    }
}
