//! Smoke test: every `pivot::*` re-export resolves and the headline types
//! are usable through the facade paths alone.

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_reexports_resolve() {
    // bignum
    let x = pivot::bignum::BigUint::from_u64(42);
    assert_eq!(x.to_decimal(), "42");
    let _ = pivot::bignum::BigInt::from(x);
    assert!(pivot::bignum::LIMB_BITS >= 32);

    // paillier
    let mut rng = StdRng::seed_from_u64(1);
    let kp = pivot::paillier::keygen(&mut rng, 128);
    let c = kp
        .pk
        .encrypt(&pivot::bignum::BigUint::from_u64(7), &mut rng);
    assert_eq!(kp.sk.decrypt(&c), pivot::bignum::BigUint::from_u64(7));

    // transport
    let results = pivot::transport::run_parties(2, |ep| ep.parties());
    assert_eq!(results, vec![2, 2]);

    // mpc
    let _cfg = pivot::mpc::FixedConfig::default();

    // data
    let ds = pivot::data::synth::make_classification(&Default::default());
    assert!(ds.num_samples() > 0);
    let _split = pivot::data::partition_vertically(&ds, 3, 0);
    assert!(pivot::data::metrics::accuracy(&[1.0], &[1.0]) == 1.0);

    // trees
    let params = pivot::trees::TreeParams::default();
    assert!(params.max_depth >= 1);

    // core
    let p = pivot::core::PivotParams::default();
    assert_eq!(p.protocol, pivot::core::Protocol::Basic);
    let enhanced = pivot::core::PivotParams::enhanced();
    assert_eq!(enhanced.protocol, pivot::core::Protocol::Enhanced);
    let _metrics = pivot::core::ProtocolMetrics::new();

    // zkp (proof types are exercised end-to-end in tests/malicious_zkp.rs)
    let mut hasher = pivot::zkp::Sha256::new();
    hasher.update(b"facade");
    let digest = hasher.finalize();
    assert_eq!(digest.len(), 32);
}
