//! Shared long-lived worker pool for batched cryptographic operations.
//!
//! The paper's `-PP` variants parallelize threshold decryption across
//! ciphertexts (§8.3, 6 cores). PR-2 did this with an ad-hoc
//! spawn-per-batch `parallel_map` in `pivot-core`; every batch paid thread
//! creation and teardown, and nothing but partial decryption could use it.
//! This crate replaces that with one process-wide pool of long-lived
//! workers shared by every party thread and every batched operation
//! (`encrypt_batch`, `mul_plain_batch`, partial decryption, combination,
//! randomness precomputation).
//!
//! Scheduling: the queue has two priorities. Online batches
//! ([`WorkerPool::map`]) always preempt detached background work
//! ([`WorkerPool::spawn`], used by the offline randomness pool) — a deep
//! precompute backlog must never stall the protocol's critical path.
//!
//! Determinism contract: [`WorkerPool::map`] is *order-preserving* — the
//! output vector is indexed exactly like the input regardless of which
//! worker ran which chunk — so a parallel run produces bit-identical
//! results to the serial run whenever the per-item closure is a pure
//! function of its input.

pub mod idle;

use crossbeam::channel::unbounded;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on pool size: protects against pathological
/// `crypto_threads` values; real configurations sit far below it.
pub const MAX_WORKERS: usize = 64;

/// A boxed unit of work. Jobs are `'static`: [`WorkerPool::map`] erases
/// borrow lifetimes internally and blocks until every chunk reports
/// completion, which is what makes the erasure sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Queues {
    /// Online batch chunks (protocol critical path).
    high: VecDeque<Job>,
    /// Detached background work (randomness precomputation).
    low: VecDeque<Job>,
    /// Set when the owning pool is dropped; parked workers exit.
    closed: bool,
}

struct Shared {
    queues: Mutex<Queues>,
    available: Condvar,
}

/// A pool of long-lived worker threads fed from one shared two-priority
/// queue.
///
/// Workers are spawned lazily up to the largest parallelism any caller has
/// requested (capped at [`MAX_WORKERS`]), then live for the life of the
/// pool — batches never pay spawn/teardown again.
pub struct WorkerPool {
    shared: Arc<Shared>,
    spawned: Mutex<usize>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut q = self.shared.queues.lock().expect("pool lock poisoned");
        q.closed = true;
        drop(q);
        self.shared.available.notify_all();
    }
}

impl WorkerPool {
    /// Create an empty pool; workers spawn on first demand.
    pub fn new() -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                queues: Mutex::new(Queues::default()),
                available: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// Number of workers currently alive.
    pub fn workers(&self) -> usize {
        *self.spawned.lock().expect("pool lock poisoned")
    }

    /// Make sure at least `n` workers exist (capped at [`MAX_WORKERS`]).
    fn ensure_workers(&self, n: usize) {
        let n = n.min(MAX_WORKERS);
        let mut spawned = self.spawned.lock().expect("pool lock poisoned");
        while *spawned < n {
            let shared = Arc::clone(&self.shared);
            let id = *spawned;
            std::thread::Builder::new()
                .name(format!("pivot-crypto-{id}"))
                .spawn(move || loop {
                    let job = {
                        let mut q = shared.queues.lock().expect("pool lock poisoned");
                        loop {
                            if let Some(job) = q.high.pop_front().or_else(|| q.low.pop_front()) {
                                break Some(job);
                            }
                            if q.closed {
                                break None;
                            }
                            q = shared.available.wait(q).expect("pool lock poisoned");
                        }
                    };
                    match job {
                        // Jobs contain their own panic handling; this
                        // catch is a backstop so a worker never dies.
                        Some(job) => drop(catch_unwind(AssertUnwindSafe(job))),
                        None => break,
                    }
                })
                .expect("spawn crypto worker");
            *spawned += 1;
        }
    }

    fn submit(&self, job: Job, high_priority: bool) {
        let mut q = self.shared.queues.lock().expect("pool lock poisoned");
        if high_priority {
            q.high.push_back(job);
        } else {
            q.low.push_back(job);
        }
        let depth = q.high.len() + q.low.len();
        drop(q);
        // Occupancy tick for the trace timeline (no-op unless a trace
        // collector is live somewhere in the process).
        if pivot_trace::enabled() {
            pivot_trace::runtime_gauge("worker_queue_depth", depth as f64);
        }
        self.shared.available.notify_one();
    }

    /// Run a detached background job at *low* priority (used for offline
    /// randomness-pool refills). The job must be self-contained
    /// (`'static`) and never outranks an online batch.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.ensure_workers(1);
        self.submit(Box::new(job), false);
    }

    /// Order-preserving parallel map: apply `f` to every item using at
    /// most `threads` workers, returning outputs in input order.
    ///
    /// Falls back to a plain serial loop when `threads <= 1` or the batch
    /// is trivially small, so callers can pass their configured thread
    /// count unconditionally. Panics in `f` are forwarded to the caller
    /// after all chunks have finished (no worker is left running borrowed
    /// data).
    pub fn map<T, U, F>(&self, threads: usize, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let threads = threads.max(1).min(items.len());
        if threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        self.ensure_workers(threads);

        let chunk = items.len().div_ceil(threads);
        let n_chunks = items.len().div_ceil(chunk);
        let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        let (done_tx, done_rx) = unbounded::<(usize, Option<Box<dyn Any + Send>>)>();

        {
            // One writer per chunk: disjoint &mut [Option<U>] slices.
            let slots = out.chunks_mut(chunk);
            for ((ci, slice), slot) in items.chunks(chunk).enumerate().zip(slots) {
                let f = &f;
                let done = done_tx.clone();
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        for (dst, item) in slot.iter_mut().zip(slice) {
                            *dst = Some(f(item));
                        }
                    }));
                    let _ = done.send((ci, result.err()));
                });
                // SAFETY: the job borrows `items`, `f`, and a disjoint
                // chunk of `out`. We block below until every chunk has
                // reported on `done_rx`, so no borrow outlives this call;
                // panics inside `f` are caught and reported, never
                // unwinding a worker past the borrowed data.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + '_>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                };
                self.submit(job, true);
            }
        }

        let mut panic: Option<Box<dyn Any + Send>> = None;
        for _ in 0..n_chunks {
            let (_ci, err) = done_rx.recv().expect("worker pool disconnected");
            if let Some(p) = err {
                panic = Some(p);
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out.into_iter()
            .map(|v| v.expect("every chunk filled its slots"))
            .collect()
    }
}

/// The process-wide shared pool. All parties of an in-process run and all
/// batched operations draw from this single set of workers.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..1000).collect();
        let out = pool.map(4, &items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_serial_for_any_thread_count() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..97).collect(); // non-divisible length
        let serial = pool.map(1, &items, |&x| x * x + 1);
        for threads in [2, 3, 5, 8, 97, 200] {
            assert_eq!(pool.map(threads, &items, |&x| x * x + 1), serial);
        }
    }

    #[test]
    fn map_borrows_caller_state() {
        let pool = WorkerPool::new();
        let offset = 100u64;
        let items: Vec<u64> = (0..50).collect();
        let out = pool.map(3, &items, |&x| x + offset);
        assert_eq!(out[49], 149);
    }

    #[test]
    fn empty_and_single_item_batches() {
        let pool = WorkerPool::new();
        let empty: Vec<u64> = Vec::new();
        assert!(pool.map(8, &empty, |&x| x).is_empty());
        assert_eq!(pool.map(8, &[7u64], |&x| x + 1), vec![8]);
    }

    #[test]
    fn workers_are_reused_across_batches() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..64).collect();
        for _ in 0..10 {
            pool.map(4, &items, |&x| x + 1);
        }
        assert!(pool.workers() <= 4, "spawned {} workers", pool.workers());
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let pool = WorkerPool::new();
        static HITS: AtomicUsize = AtomicUsize::new(0);
        let (tx, rx) = unbounded();
        for _ in 0..8 {
            let tx = tx.clone();
            pool.spawn(move || {
                HITS.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..8 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(HITS.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn map_preempts_background_backlog() {
        // A deep low-priority backlog must not delay an online batch: the
        // map chunks jump the queue. With one worker, strict FIFO would
        // need ~100 × 5 ms before the map's first chunk; assert the map
        // comes back well before the backlog can have drained.
        let pool = WorkerPool::new();
        pool.map(1, &[0u64], |&x| x); // pin worker count at 1 via lazy spawn
        static DRAINED: AtomicUsize = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                DRAINED.fetch_add(1, Ordering::SeqCst);
            });
        }
        let items: Vec<u64> = (0..8).collect();
        let out = pool.map(2, &items, |&x| x + 1);
        assert_eq!(out[7], 8);
        assert!(
            DRAINED.load(Ordering::SeqCst) < 100,
            "map waited for the whole background backlog"
        );
    }

    #[test]
    fn panic_in_map_propagates_after_batch_completes() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..40).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(4, &items, |&x| {
                if x == 17 {
                    panic!("boom at 17");
                }
                x
            })
        }));
        assert!(result.is_err());
        // Pool stays usable after a panicked batch.
        assert_eq!(pool.map(4, &items[..4], |&x| x), vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_count_is_capped() {
        let pool = WorkerPool::new();
        let items: Vec<u64> = (0..200).collect();
        pool.map(10_000, &items, |&x| x);
        assert!(pool.workers() <= MAX_WORKERS);
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
    }
}
