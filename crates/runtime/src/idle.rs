//! Interruptible idle waits for background threads.
//!
//! Reconnect backoff, acceptor polling, and similar maintenance loops
//! spend most of their life sleeping between attempts. A plain
//! `thread::sleep` makes teardown pay the full remaining sleep: dropping
//! a link mid-backoff would block `Drop` for seconds. An [`IdleGate`]
//! replaces those sleeps with condvar waits that any thread can cut
//! short — `interrupt` wakes every waiter immediately and permanently,
//! so shutdown latency is bounded by lock handoff, not by the longest
//! backoff step in flight.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A shared wake-up gate for idle loops.
///
/// Waiters park with [`IdleGate::wait_for`]; any thread calls
/// [`IdleGate::interrupt`] once to release all current and future waits
/// (the gate latches — it cannot be re-armed, matching its use as a
/// shutdown signal).
#[derive(Default)]
pub struct IdleGate {
    interrupted: Mutex<bool>,
    wake: Condvar,
}

impl IdleGate {
    /// A fresh, armed gate.
    pub fn new() -> IdleGate {
        IdleGate::default()
    }

    /// Park the calling thread for up to `timeout`, returning early if
    /// the gate is (or becomes) interrupted. Returns `true` when the
    /// full wait elapsed, `false` when it was cut short.
    pub fn wait_for(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut interrupted = self.interrupted.lock().expect("idle gate poisoned");
        loop {
            if *interrupted {
                return false;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return true;
            }
            let (guard, _timeout) = self
                .wake
                .wait_timeout(interrupted, remaining)
                .expect("idle gate poisoned");
            interrupted = guard;
        }
    }

    /// Latch the gate: every current and future [`IdleGate::wait_for`]
    /// returns immediately.
    pub fn interrupt(&self) {
        *self.interrupted.lock().expect("idle gate poisoned") = true;
        self.wake.notify_all();
    }

    /// Whether [`IdleGate::interrupt`] has been called.
    pub fn is_interrupted(&self) -> bool {
        *self.interrupted.lock().expect("idle gate poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_wait_elapses_when_not_interrupted() {
        let gate = IdleGate::new();
        let start = Instant::now();
        assert!(gate.wait_for(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn interrupt_cuts_a_wait_short() {
        let gate = Arc::new(IdleGate::new());
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let start = Instant::now();
                let elapsed_fully = gate.wait_for(Duration::from_secs(30));
                (elapsed_fully, start.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        gate.interrupt();
        let (elapsed_fully, waited) = waiter.join().expect("waiter");
        assert!(!elapsed_fully);
        assert!(waited < Duration::from_secs(5), "wait not cut: {waited:?}");
    }

    #[test]
    fn interrupt_latches_for_future_waits() {
        let gate = IdleGate::new();
        gate.interrupt();
        assert!(gate.is_interrupted());
        let start = Instant::now();
        assert!(!gate.wait_for(Duration::from_secs(10)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
