//! POPK — proof of plaintext knowledge (paper §9.1.1, from CDN [24]).
//!
//! Statement: ciphertext `c`. Witness: `(x, r)` with `c = g^x·r^N mod N²`.
//!
//! Σ-protocol (using `g = 1+N`, so `g^N ≡ 1 (mod N²)`):
//! commitment `a = g^u·v^N`; challenge `e`; response
//! `z = u + e·x mod N`, `w = v·r^e mod N`. Verification:
//! `g^z·w^N ≡ a·c^e (mod N²)`.

use crate::{challenge_bits, Transcript};
use pivot_bignum::{rng as brng, BigUint};
use pivot_paillier::{Ciphertext, PublicKey};
use rand::Rng;

/// A non-interactive proof of plaintext knowledge.
#[derive(Clone, Debug)]
pub struct PlaintextProof {
    pub commitment: BigUint,
    pub z: BigUint,
    pub w: BigUint,
}

impl PlaintextProof {
    /// Prove knowledge of `(x, r)` for `c = Enc(x; r)`.
    pub fn prove<R: Rng + ?Sized>(
        pk: &PublicKey,
        c: &Ciphertext,
        x: &BigUint,
        r: &BigUint,
        rng: &mut R,
    ) -> PlaintextProof {
        let n = pk.n();
        let u = brng::gen_below(rng, n);
        let v = brng::gen_coprime(rng, n);
        let a = pk.encrypt_with(&u, &v); // g^u·v^N — same shape as Enc

        let e = Self::derive_challenge(pk, c, a.raw());

        // z = u + e·x mod N; w = v·r^e mod N.
        let z = (&u + &(&e * x)).rem_of(n);
        let r_e = pivot_bignum::mod_pow(r, &e, n);
        let w = (&v * &r_e).rem_of(n);
        PlaintextProof {
            commitment: a.into_raw(),
            z,
            w,
        }
    }

    /// Verify against the ciphertext.
    pub fn verify(&self, pk: &PublicKey, c: &Ciphertext) -> bool {
        let n2 = pk.n_squared();
        if self.z >= *pk.n() || self.w >= *pk.n() || self.w.is_zero() {
            return false;
        }
        let e = Self::derive_challenge(pk, c, &self.commitment);
        // lhs = g^z·w^N; rhs = a·c^e.
        let lhs = pk.encrypt_with(&self.z, &self.w).into_raw();
        let c_e = pivot_bignum::mod_pow(c.raw(), &e, n2);
        let rhs = (&self.commitment * &c_e).rem_of(n2);
        lhs == rhs
    }

    fn derive_challenge(pk: &PublicKey, c: &Ciphertext, a: &BigUint) -> BigUint {
        let mut t = Transcript::new("popk");
        t.absorb("N", pk.n());
        t.absorb("c", c.raw());
        t.absorb("a", a);
        t.challenge("e", challenge_bits(pk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_paillier::keygen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (pivot_paillier::KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(101);
        (keygen(&mut rng, 192), rng)
    }

    #[test]
    fn honest_proof_verifies() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(42);
        let r = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c = kp.pk.encrypt_with(&x, &r);
        let proof = PlaintextProof::prove(&kp.pk, &c, &x, &r, &mut rng);
        assert!(proof.verify(&kp.pk, &c));
    }

    #[test]
    fn zero_plaintext_proves() {
        let (kp, mut rng) = setup();
        let x = BigUint::zero();
        let r = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c = kp.pk.encrypt_with(&x, &r);
        let proof = PlaintextProof::prove(&kp.pk, &c, &x, &r, &mut rng);
        assert!(proof.verify(&kp.pk, &c));
    }

    #[test]
    fn wrong_ciphertext_rejected() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(42);
        let r = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c = kp.pk.encrypt_with(&x, &r);
        let proof = PlaintextProof::prove(&kp.pk, &c, &x, &r, &mut rng);
        let other = kp.pk.encrypt(&BigUint::from_u64(43), &mut rng);
        assert!(!proof.verify(&kp.pk, &other));
    }

    #[test]
    fn tampered_response_rejected() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(7);
        let r = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c = kp.pk.encrypt_with(&x, &r);
        let mut proof = PlaintextProof::prove(&kp.pk, &c, &x, &r, &mut rng);
        proof.z = (&proof.z + &BigUint::one()).rem_of(kp.pk.n());
        assert!(!proof.verify(&kp.pk, &c));
    }

    #[test]
    fn tampered_commitment_rejected() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(7);
        let r = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c = kp.pk.encrypt_with(&x, &r);
        let mut proof = PlaintextProof::prove(&kp.pk, &c, &x, &r, &mut rng);
        proof.commitment = (&proof.commitment + &BigUint::one()).rem_of(kp.pk.n_squared());
        assert!(!proof.verify(&kp.pk, &c));
    }

    #[test]
    fn out_of_range_fields_rejected() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(7);
        let r = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c = kp.pk.encrypt_with(&x, &r);
        let mut proof = PlaintextProof::prove(&kp.pk, &c, &x, &r, &mut rng);
        proof.w = kp.pk.n().clone(); // ≥ N must be rejected outright
        assert!(!proof.verify(&kp.pk, &c));
    }
}
