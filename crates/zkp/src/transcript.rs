//! Fiat–Shamir transcript: absorb labeled protocol messages, squeeze
//! challenges. Converts the interactive Σ-protocols into non-interactive
//! proofs (the paper cites the Fiat–Shamir transform via [31, 37]).

use crate::sha256::Sha256;
use pivot_bignum::BigUint;

/// A running Fiat–Shamir transcript.
///
/// Challenges are derived as `SHA-256(state ‖ counter)` blocks; every
/// absorbed message is length-prefixed and labeled so the encoding is
/// unambiguous (no two transcripts collide unless their messages do).
pub struct Transcript {
    hasher: Sha256,
    counter: u64,
}

impl Transcript {
    /// Start a transcript under a domain-separation label.
    pub fn new(domain: &str) -> Transcript {
        let mut hasher = Sha256::new();
        hasher.update(b"pivot-zkp-v1");
        hasher.update(&(domain.len() as u64).to_be_bytes());
        hasher.update(domain.as_bytes());
        Transcript { hasher, counter: 0 }
    }

    /// Absorb a labeled byte string.
    pub fn absorb_bytes(&mut self, label: &str, data: &[u8]) {
        self.hasher.update(&(label.len() as u64).to_be_bytes());
        self.hasher.update(label.as_bytes());
        self.hasher.update(&(data.len() as u64).to_be_bytes());
        self.hasher.update(data);
    }

    /// Absorb a labeled big integer.
    pub fn absorb(&mut self, label: &str, value: &BigUint) {
        self.absorb_bytes(label, &value.to_bytes_be());
    }

    /// Squeeze a challenge of at most `bits` bits.
    pub fn challenge(&mut self, label: &str, bits: u32) -> BigUint {
        self.absorb_bytes("challenge-label", label.as_bytes());
        let bytes_needed = bits.div_ceil(8) as usize;
        let mut out = Vec::with_capacity(bytes_needed);
        while out.len() < bytes_needed {
            let mut block = self.hasher.clone();
            block.update(&self.counter.to_be_bytes());
            self.counter += 1;
            out.extend_from_slice(&block.finalize());
        }
        out.truncate(bytes_needed);
        // Mask the top byte down to the requested width.
        let extra_bits = (8 * bytes_needed as u32) - bits;
        if extra_bits > 0 {
            out[0] &= 0xffu8 >> extra_bits;
        }
        BigUint::from_bytes_be(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut t1 = Transcript::new("test");
        let mut t2 = Transcript::new("test");
        t1.absorb("x", &BigUint::from_u64(42));
        t2.absorb("x", &BigUint::from_u64(42));
        assert_eq!(t1.challenge("e", 128), t2.challenge("e", 128));
    }

    #[test]
    fn differs_on_message() {
        let mut t1 = Transcript::new("test");
        let mut t2 = Transcript::new("test");
        t1.absorb("x", &BigUint::from_u64(42));
        t2.absorb("x", &BigUint::from_u64(43));
        assert_ne!(t1.challenge("e", 128), t2.challenge("e", 128));
    }

    #[test]
    fn differs_on_domain() {
        let mut t1 = Transcript::new("a");
        let mut t2 = Transcript::new("b");
        assert_ne!(t1.challenge("e", 64), t2.challenge("e", 64));
    }

    #[test]
    fn challenge_width_respected() {
        let mut t = Transcript::new("test");
        for bits in [16u32, 31, 64, 128] {
            let c = t.challenge("e", bits);
            assert!(c.bits() <= bits, "challenge too wide for {bits}");
        }
    }

    #[test]
    fn sequential_challenges_differ() {
        let mut t = Transcript::new("test");
        let a = t.challenge("e", 64);
        let b = t.challenge("e", 64);
        assert_ne!(a, b);
    }

    #[test]
    fn label_ambiguity_resisted() {
        // ("ab", "c") must differ from ("a", "bc").
        let mut t1 = Transcript::new("t");
        t1.absorb_bytes("ab", b"c");
        let mut t2 = Transcript::new("t");
        t2.absorb_bytes("a", b"bc");
        assert_ne!(t1.challenge("e", 64), t2.challenge("e", 64));
    }
}
