//! POPCM — proof of plaintext–ciphertext multiplication (§9.1.1, CDN
//! [24]): given `c₁ = Enc(x)`, `c₂`, and `c₃`, prove
//! `Dec(c₃) = x·Dec(c₂)` for the committed `x`.
//!
//! Witness: `(x, r₁, s)` with `c₁ = g^x·r₁^N` and `c₃ = c₂^x·s^N`.

use crate::{challenge_bits, Transcript};
use pivot_bignum::{mod_pow, rng as brng, BigUint};
use pivot_paillier::{Ciphertext, PublicKey};
use rand::Rng;

/// Non-interactive multiplication proof.
#[derive(Clone, Debug)]
pub struct MultiplicationProof {
    /// `a = g^u·v^N`.
    pub a: BigUint,
    /// `b = c₂^u·w'^N`.
    pub b: BigUint,
    pub z: BigUint,
    pub w1: BigUint,
    pub w2: BigUint,
}

impl MultiplicationProof {
    /// Compute `c₃ = c₂^x·s^N` (the operation being proven) — helper so
    /// prover and protocol agree on the randomness `s`.
    pub fn multiply<R: Rng + ?Sized>(
        pk: &PublicKey,
        c2: &Ciphertext,
        x: &BigUint,
        rng: &mut R,
    ) -> (Ciphertext, BigUint) {
        let s = brng::gen_coprime(rng, pk.n());
        let base = pk.mul_plain(c2, x);
        let s_n = mod_pow(&s, pk.n(), pk.n_squared());
        let c3 = Ciphertext::from_raw((base.raw() * &s_n).rem_of(pk.n_squared()));
        (c3, s)
    }

    /// Prove `Dec(c₃) = x·Dec(c₂)`.
    #[allow(clippy::too_many_arguments)]
    pub fn prove<R: Rng + ?Sized>(
        pk: &PublicKey,
        c1: &Ciphertext,
        c2: &Ciphertext,
        c3: &Ciphertext,
        x: &BigUint,
        r1: &BigUint,
        s: &BigUint,
        rng: &mut R,
    ) -> MultiplicationProof {
        let n = pk.n();
        let n2 = pk.n_squared();
        let u = brng::gen_below(rng, n);
        let v = brng::gen_coprime(rng, n);
        let w_prime = brng::gen_coprime(rng, n);

        let a = pk.encrypt_with(&u, &v).into_raw();
        let b = {
            let c2_u = mod_pow(c2.raw(), &u, n2);
            let wn = mod_pow(&w_prime, n, n2);
            (&c2_u * &wn).rem_of(n2)
        };

        let e = Self::derive_challenge(pk, c1, c2, c3, &a, &b);

        let full = &u + &(&e * x);
        let (t, z) = full.div_rem(n);
        let w1 = (&v * &mod_pow(r1, &e, n)).rem_of(n);
        // w₂ = w'·s^e·(c₂^t mod N) mod N.
        let c2_t = mod_pow(&c2.raw().rem_of(n), &t, n);
        let w2 = (&(&w_prime * &mod_pow(s, &e, n)).rem_of(n) * &c2_t).rem_of(n);
        MultiplicationProof { a, b, z, w1, w2 }
    }

    /// Verify against `(c₁, c₂, c₃)`.
    pub fn verify(
        &self,
        pk: &PublicKey,
        c1: &Ciphertext,
        c2: &Ciphertext,
        c3: &Ciphertext,
    ) -> bool {
        let n = pk.n();
        let n2 = pk.n_squared();
        if self.z >= *n || self.w1 >= *n || self.w2 >= *n {
            return false;
        }
        let e = Self::derive_challenge(pk, c1, c2, c3, &self.a, &self.b);

        // (1) g^z·w₁^N = a·c₁^e.
        let lhs1 = pk.encrypt_with(&self.z, &self.w1).into_raw();
        let rhs1 = (&self.a * &mod_pow(c1.raw(), &e, n2)).rem_of(n2);
        if lhs1 != rhs1 {
            return false;
        }
        // (2) c₂^z·w₂^N = b·c₃^e.
        let lhs2 = {
            let c2_z = mod_pow(c2.raw(), &self.z, n2);
            let w2_n = mod_pow(&self.w2, n, n2);
            (&c2_z * &w2_n).rem_of(n2)
        };
        let rhs2 = (&self.b * &mod_pow(c3.raw(), &e, n2)).rem_of(n2);
        lhs2 == rhs2
    }

    fn derive_challenge(
        pk: &PublicKey,
        c1: &Ciphertext,
        c2: &Ciphertext,
        c3: &Ciphertext,
        a: &BigUint,
        b: &BigUint,
    ) -> BigUint {
        let mut t = Transcript::new("popcm");
        t.absorb("N", pk.n());
        t.absorb("c1", c1.raw());
        t.absorb("c2", c2.raw());
        t.absorb("c3", c3.raw());
        t.absorb("a", a);
        t.absorb("b", b);
        t.challenge("e", challenge_bits(pk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_paillier::keygen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (pivot_paillier::KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(202);
        (keygen(&mut rng, 192), rng)
    }

    #[test]
    fn honest_multiplication_verifies() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(6);
        let r1 = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c1 = kp.pk.encrypt_with(&x, &r1);
        let c2 = kp.pk.encrypt(&BigUint::from_u64(7), &mut rng);
        let (c3, s) = MultiplicationProof::multiply(&kp.pk, &c2, &x, &mut rng);
        // Semantics: c₃ decrypts to 42.
        assert_eq!(kp.sk.decrypt(&c3), BigUint::from_u64(42));
        let proof = MultiplicationProof::prove(&kp.pk, &c1, &c2, &c3, &x, &r1, &s, &mut rng);
        assert!(proof.verify(&kp.pk, &c1, &c2, &c3));
    }

    #[test]
    fn mismatched_product_rejected() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(6);
        let r1 = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c1 = kp.pk.encrypt_with(&x, &r1);
        let c2 = kp.pk.encrypt(&BigUint::from_u64(7), &mut rng);
        let (c3, s) = MultiplicationProof::multiply(&kp.pk, &c2, &x, &mut rng);
        let proof = MultiplicationProof::prove(&kp.pk, &c1, &c2, &c3, &x, &r1, &s, &mut rng);
        // Claiming the product is an encryption of something else fails.
        let fake_c3 = kp.pk.encrypt(&BigUint::from_u64(41), &mut rng);
        assert!(!proof.verify(&kp.pk, &c1, &c2, &fake_c3));
    }

    #[test]
    fn wrong_multiplier_rejected() {
        let (kp, mut rng) = setup();
        let x = BigUint::from_u64(6);
        let r1 = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c1 = kp.pk.encrypt_with(&x, &r1);
        let c2 = kp.pk.encrypt(&BigUint::from_u64(7), &mut rng);
        // A malicious prover uses x' = 5 in the product but claims c1.
        let (c3, s) = MultiplicationProof::multiply(&kp.pk, &c2, &BigUint::from_u64(5), &mut rng);
        let proof = MultiplicationProof::prove(
            &kp.pk,
            &c1,
            &c2,
            &c3,
            &BigUint::from_u64(5),
            &r1,
            &s,
            &mut rng,
        );
        assert!(!proof.verify(&kp.pk, &c1, &c2, &c3));
    }

    #[test]
    fn multiply_by_zero() {
        let (kp, mut rng) = setup();
        let x = BigUint::zero();
        let r1 = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
        let c1 = kp.pk.encrypt_with(&x, &r1);
        let c2 = kp.pk.encrypt(&BigUint::from_u64(9), &mut rng);
        let (c3, s) = MultiplicationProof::multiply(&kp.pk, &c2, &x, &mut rng);
        assert_eq!(kp.sk.decrypt(&c3), BigUint::zero());
        let proof = MultiplicationProof::prove(&kp.pk, &c1, &c2, &c3, &x, &r1, &s, &mut rng);
        assert!(proof.verify(&kp.pk, &c1, &c2, &c3));
    }
}
