//! Zero-knowledge building blocks for Pivot's malicious-model extension
//! (§9.1): Σ-protocols proving correct use of Paillier ciphertexts, made
//! non-interactive with Fiat–Shamir over a from-scratch SHA-256.
//!
//! * [`popk`] — **P**roof **o**f **P**laintext **K**nowledge: the prover
//!   knows `(x, r)` with `c = g^x·r^N` (used when clients commit their
//!   split-indicator and label vectors before training).
//! * [`popcm`] — proof of plaintext–ciphertext multiplication:
//!   `Dec(c₃) = x·Dec(c₂)` for a committed `x` (used for the `β ⊗ [α]`
//!   mask refinements and the η updates of Algorithm 4).
//! * [`pohdp`] — proof of homomorphic dot product:
//!   `Dec(c_out) = Σ xᵢ·Dec(cᵢ)` for a committed vector `x` (used for the
//!   encrypted split statistics, Eqn 7).
//!
//! The protocols follow Cramer–Damgård–Nielsen (the paper's [24]) and
//! Helen (the paper's [81]). Soundness relies on the challenge being
//! smaller than the factors of `N`; [`challenge_bits`] picks the size from
//! the key.

pub mod pohdp;
pub mod popcm;
pub mod popk;
pub mod sha256;
pub mod transcript;

pub use pohdp::DotProductProof;
pub use popcm::MultiplicationProof;
pub use popk::PlaintextProof;
pub use sha256::Sha256;
pub use transcript::Transcript;

use pivot_paillier::PublicKey;

/// Fiat–Shamir challenge width for a key: must stay below the smallest
/// prime factor of `N` for special soundness; capped at 128 bits.
pub fn challenge_bits(pk: &PublicKey) -> u32 {
    (pk.keysize() / 2).saturating_sub(8).clamp(16, 128)
}
