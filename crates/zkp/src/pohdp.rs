//! POHDP — proof of homomorphic dot product (§9.1.1, from Helen [81]):
//! given commitments `cxᵢ = Enc(xᵢ)`, inputs `cᵢ`, and output `c_out`,
//! prove `Dec(c_out) = Σ xᵢ·Dec(cᵢ)` for the committed vector `x`.
//!
//! This is the vector generalization of [`crate::popcm`]; the clients use
//! it to prove their encrypted split statistics (Eqn 7) were computed with
//! the committed indicator vectors.

use crate::{challenge_bits, Transcript};
use pivot_bignum::{mod_pow, rng as brng, BigUint};
use pivot_paillier::{Ciphertext, PublicKey};
use rand::Rng;

/// Non-interactive dot-product proof.
#[derive(Clone, Debug)]
pub struct DotProductProof {
    /// Per-element commitments `aᵢ = g^{uᵢ}·vᵢ^N`.
    pub a: Vec<BigUint>,
    /// Aggregate commitment `b = Π cᵢ^{uᵢ}·w'^N`.
    pub b: BigUint,
    pub z: Vec<BigUint>,
    pub w1: Vec<BigUint>,
    pub w2: BigUint,
}

impl DotProductProof {
    /// Compute `c_out = Π cᵢ^{xᵢ}·s^N` with fresh randomness `s`.
    pub fn dot<R: Rng + ?Sized>(
        pk: &PublicKey,
        inputs: &[Ciphertext],
        x: &[BigUint],
        rng: &mut R,
    ) -> (Ciphertext, BigUint) {
        assert_eq!(inputs.len(), x.len());
        let n2 = pk.n_squared();
        let s = brng::gen_coprime(rng, pk.n());
        let mut acc = mod_pow(&s, pk.n(), n2);
        for (c, xi) in inputs.iter().zip(x) {
            if !xi.is_zero() {
                acc = (&acc * &mod_pow(c.raw(), xi, n2)).rem_of(n2);
            }
        }
        (Ciphertext::from_raw(acc), s)
    }

    /// Prove the dot-product relation.
    #[allow(clippy::too_many_arguments)]
    pub fn prove<R: Rng + ?Sized>(
        pk: &PublicKey,
        commitments: &[Ciphertext],
        inputs: &[Ciphertext],
        output: &Ciphertext,
        x: &[BigUint],
        r: &[BigUint],
        s: &BigUint,
        rng: &mut R,
    ) -> DotProductProof {
        let n = pk.n();
        let n2 = pk.n_squared();
        let len = x.len();
        assert_eq!(commitments.len(), len);
        assert_eq!(inputs.len(), len);
        assert_eq!(r.len(), len);

        let u: Vec<BigUint> = (0..len).map(|_| brng::gen_below(rng, n)).collect();
        let v: Vec<BigUint> = (0..len).map(|_| brng::gen_coprime(rng, n)).collect();
        let w_prime = brng::gen_coprime(rng, n);

        let a: Vec<BigUint> = u
            .iter()
            .zip(&v)
            .map(|(ui, vi)| pk.encrypt_with(ui, vi).into_raw())
            .collect();
        let b = {
            let mut acc = mod_pow(&w_prime, n, n2);
            for (c, ui) in inputs.iter().zip(&u) {
                acc = (&acc * &mod_pow(c.raw(), ui, n2)).rem_of(n2);
            }
            acc
        };

        let e = Self::derive_challenge(pk, commitments, inputs, output, &a, &b);

        let mut z = Vec::with_capacity(len);
        let mut w1 = Vec::with_capacity(len);
        let mut w2 = (&w_prime * &mod_pow(s, &e, n)).rem_of(n);
        for i in 0..len {
            let full = &u[i] + &(&e * &x[i]);
            let (t_i, z_i) = full.div_rem(n);
            z.push(z_i);
            w1.push((&v[i] * &mod_pow(&r[i], &e, n)).rem_of(n));
            // Fold each carry factor cᵢ^{tᵢ} into w₂.
            let c_t = mod_pow(&inputs[i].raw().rem_of(n), &t_i, n);
            w2 = (&w2 * &c_t).rem_of(n);
        }
        DotProductProof { a, b, z, w1, w2 }
    }

    /// Verify against `(commitments, inputs, output)`.
    pub fn verify(
        &self,
        pk: &PublicKey,
        commitments: &[Ciphertext],
        inputs: &[Ciphertext],
        output: &Ciphertext,
    ) -> bool {
        let n = pk.n();
        let n2 = pk.n_squared();
        let len = commitments.len();
        if self.a.len() != len || self.z.len() != len || self.w1.len() != len || inputs.len() != len
        {
            return false;
        }
        if self.z.iter().any(|z| z >= n) || self.w1.iter().any(|w| w >= n) || self.w2 >= *n {
            return false;
        }
        let e = Self::derive_challenge(pk, commitments, inputs, output, &self.a, &self.b);

        // Per-element: g^{zᵢ}·w1ᵢ^N = aᵢ·cxᵢ^e.
        for i in 0..len {
            let lhs = pk.encrypt_with(&self.z[i], &self.w1[i]).into_raw();
            let rhs = (&self.a[i] * &mod_pow(commitments[i].raw(), &e, n2)).rem_of(n2);
            if lhs != rhs {
                return false;
            }
        }
        // Aggregate: Π cᵢ^{zᵢ}·w₂^N = b·c_out^e.
        let mut lhs = mod_pow(&self.w2, n, n2);
        for (c, z_i) in inputs.iter().zip(&self.z) {
            lhs = (&lhs * &mod_pow(c.raw(), z_i, n2)).rem_of(n2);
        }
        let rhs = (&self.b * &mod_pow(output.raw(), &e, n2)).rem_of(n2);
        lhs == rhs
    }

    fn derive_challenge(
        pk: &PublicKey,
        commitments: &[Ciphertext],
        inputs: &[Ciphertext],
        output: &Ciphertext,
        a: &[BigUint],
        b: &BigUint,
    ) -> BigUint {
        let mut t = Transcript::new("pohdp");
        t.absorb("N", pk.n());
        for c in commitments {
            t.absorb("cx", c.raw());
        }
        for c in inputs {
            t.absorb("c", c.raw());
        }
        t.absorb("out", output.raw());
        for ai in a {
            t.absorb("a", ai);
        }
        t.absorb("b", b);
        t.challenge("e", challenge_bits(pk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_paillier::keygen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (pivot_paillier::KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(303);
        (keygen(&mut rng, 192), rng)
    }

    fn commit_vector(
        pk: &PublicKey,
        x: &[u64],
        rng: &mut StdRng,
    ) -> (Vec<Ciphertext>, Vec<BigUint>, Vec<BigUint>) {
        let mut cts = Vec::new();
        let mut rs = Vec::new();
        let mut xs = Vec::new();
        for &v in x {
            let r = pivot_bignum::rng::gen_coprime(rng, pk.n());
            let xv = BigUint::from_u64(v);
            cts.push(pk.encrypt_with(&xv, &r));
            rs.push(r);
            xs.push(xv);
        }
        (cts, xs, rs)
    }

    #[test]
    fn honest_dot_product_verifies() {
        let (kp, mut rng) = setup();
        // Indicator vector (1,0,1) against encrypted values (10,20,30).
        let (commitments, x, r) = commit_vector(&kp.pk, &[1, 0, 1], &mut rng);
        let inputs: Vec<Ciphertext> = [10u64, 20, 30]
            .iter()
            .map(|&v| kp.pk.encrypt(&BigUint::from_u64(v), &mut rng))
            .collect();
        let (output, s) = DotProductProof::dot(&kp.pk, &inputs, &x, &mut rng);
        assert_eq!(kp.sk.decrypt(&output), BigUint::from_u64(40));
        let proof =
            DotProductProof::prove(&kp.pk, &commitments, &inputs, &output, &x, &r, &s, &mut rng);
        assert!(proof.verify(&kp.pk, &commitments, &inputs, &output));
    }

    #[test]
    fn forged_output_rejected() {
        let (kp, mut rng) = setup();
        let (commitments, x, r) = commit_vector(&kp.pk, &[1, 1], &mut rng);
        let inputs: Vec<Ciphertext> = [5u64, 6]
            .iter()
            .map(|&v| kp.pk.encrypt(&BigUint::from_u64(v), &mut rng))
            .collect();
        let (output, s) = DotProductProof::dot(&kp.pk, &inputs, &x, &mut rng);
        let proof =
            DotProductProof::prove(&kp.pk, &commitments, &inputs, &output, &x, &r, &s, &mut rng);
        let forged = kp.pk.encrypt(&BigUint::from_u64(12), &mut rng);
        assert!(!proof.verify(&kp.pk, &commitments, &inputs, &forged));
    }

    #[test]
    fn vector_substitution_rejected() {
        // Prover committed to (1,0) but computes the dot with (0,1).
        let (kp, mut rng) = setup();
        let (commitments, _x, r) = commit_vector(&kp.pk, &[1, 0], &mut rng);
        let other: Vec<BigUint> = vec![BigUint::zero(), BigUint::one()];
        let inputs: Vec<Ciphertext> = [5u64, 6]
            .iter()
            .map(|&v| kp.pk.encrypt(&BigUint::from_u64(v), &mut rng))
            .collect();
        let (output, s) = DotProductProof::dot(&kp.pk, &inputs, &other, &mut rng);
        let proof = DotProductProof::prove(
            &kp.pk,
            &commitments,
            &inputs,
            &output,
            &other,
            &r,
            &s,
            &mut rng,
        );
        assert!(!proof.verify(&kp.pk, &commitments, &inputs, &output));
    }

    #[test]
    fn length_mismatch_rejected() {
        let (kp, mut rng) = setup();
        let (commitments, x, r) = commit_vector(&kp.pk, &[1], &mut rng);
        let inputs = vec![kp.pk.encrypt(&BigUint::from_u64(5), &mut rng)];
        let (output, s) = DotProductProof::dot(&kp.pk, &inputs, &x, &mut rng);
        let proof =
            DotProductProof::prove(&kp.pk, &commitments, &inputs, &output, &x, &r, &s, &mut rng);
        let extra = vec![commitments[0].clone(), commitments[0].clone()];
        assert!(!proof.verify(&kp.pk, &extra, &inputs, &output));
    }
}
