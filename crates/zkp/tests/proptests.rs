//! Tamper-soundness properties: every proof kind must *reject* (never
//! panic on) arbitrary mutations of its statement or response fields —
//! the contract the verification plane's `ProofRejected` error relies on.

use pivot_bignum::BigUint;
use pivot_paillier::{keygen, Ciphertext, KeyPair, PublicKey};
use pivot_zkp::{challenge_bits, DotProductProof, MultiplicationProof, PlaintextProof};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared 128-bit key pair (keygen dominates test time otherwise).
fn kp() -> &'static KeyPair {
    static KP: OnceLock<KeyPair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(909);
        keygen(&mut rng, 128)
    })
}

/// Add a non-zero delta to `v` modulo `m` — guaranteed to change the
/// residue, the canonical "one mutated byte" of a wire-borne field.
fn perturb(v: &BigUint, delta: u64, m: &BigUint) -> BigUint {
    let delta = BigUint::from_u64(delta.max(1));
    (v + &delta).rem_of(m)
}

fn coprime(rng: &mut StdRng, pk: &PublicKey) -> BigUint {
    pivot_bignum::rng::gen_coprime(rng, pk.n())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn popk_rejects_any_mutation(
        x in any::<u64>(),
        seed in any::<u64>(),
        field in 0usize..4,
        delta in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = &kp().pk;
        let x = BigUint::from_u64(x);
        let r = coprime(&mut rng, pk);
        let c = pk.encrypt_with(&x, &r);
        let mut proof = PlaintextProof::prove(pk, &c, &x, &r, &mut rng);
        prop_assert!(proof.verify(pk, &c));
        let mut c = c;
        match field {
            0 => proof.commitment = perturb(&proof.commitment, delta, pk.n_squared()),
            1 => proof.z = perturb(&proof.z, delta, pk.n()),
            2 => proof.w = perturb(&proof.w, delta, pk.n()),
            // Statement mutation: the tampered-ciphertext case.
            _ => c = Ciphertext::from_raw(perturb(c.raw(), delta, pk.n_squared())),
        }
        prop_assert!(!proof.verify(pk, &c));
    }

    #[test]
    fn popk_rejects_out_of_range_fields(
        x in any::<u64>(),
        seed in any::<u64>(),
        field in 0usize..2,
        excess in any::<u64>(),
    ) {
        // Fields past their modulus must fail the range check, not wrap
        // or panic.
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = &kp().pk;
        let x = BigUint::from_u64(x);
        let r = coprime(&mut rng, pk);
        let c = pk.encrypt_with(&x, &r);
        let mut proof = PlaintextProof::prove(pk, &c, &x, &r, &mut rng);
        let bump = pk.n() + &BigUint::from_u64(excess);
        match field {
            0 => proof.z = bump,
            _ => proof.w = bump,
        }
        prop_assert!(!proof.verify(pk, &c));
    }

    #[test]
    fn popcm_rejects_any_mutation(
        x in any::<u32>(),
        y in any::<u32>(),
        seed in any::<u64>(),
        field in 0usize..8,
        delta in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = &kp().pk;
        let x = BigUint::from_u64(x as u64);
        let r1 = coprime(&mut rng, pk);
        let c1 = pk.encrypt_with(&x, &r1);
        let c2 = pk.encrypt(&BigUint::from_u64(y as u64), &mut rng);
        let (c3, s) = MultiplicationProof::multiply(pk, &c2, &x, &mut rng);
        let mut proof = MultiplicationProof::prove(pk, &c1, &c2, &c3, &x, &r1, &s, &mut rng);
        prop_assert!(proof.verify(pk, &c1, &c2, &c3));
        let (mut c1, mut c2, mut c3) = (c1, c2, c3);
        let n2 = pk.n_squared();
        match field {
            0 => proof.a = perturb(&proof.a, delta, n2),
            1 => proof.b = perturb(&proof.b, delta, n2),
            2 => proof.z = perturb(&proof.z, delta, pk.n()),
            3 => proof.w1 = perturb(&proof.w1, delta, pk.n()),
            4 => proof.w2 = perturb(&proof.w2, delta, pk.n()),
            5 => c1 = Ciphertext::from_raw(perturb(c1.raw(), delta, n2)),
            6 => c2 = Ciphertext::from_raw(perturb(c2.raw(), delta, n2)),
            _ => c3 = Ciphertext::from_raw(perturb(c3.raw(), delta, n2)),
        }
        prop_assert!(!proof.verify(pk, &c1, &c2, &c3));
    }

    #[test]
    fn pohdp_rejects_any_mutation(
        bits in proptest::collection::vec(any::<bool>(), 1..4),
        vals in proptest::collection::vec(any::<u32>(), 3..4),
        seed in any::<u64>(),
        field in 0usize..8,
        delta in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = &kp().pk;
        let len = bits.len();
        let x: Vec<BigUint> = bits
            .iter()
            .map(|&b| BigUint::from_u64(u64::from(b)))
            .collect();
        let r: Vec<BigUint> = (0..len).map(|_| coprime(&mut rng, pk)).collect();
        let commitments: Vec<Ciphertext> =
            x.iter().zip(&r).map(|(xi, ri)| pk.encrypt_with(xi, ri)).collect();
        let inputs: Vec<Ciphertext> = (0..len)
            .map(|i| pk.encrypt(&BigUint::from_u64(vals[i % vals.len()] as u64), &mut rng))
            .collect();
        let (output, s) = DotProductProof::dot(pk, &inputs, &x, &mut rng);
        let mut proof =
            DotProductProof::prove(pk, &commitments, &inputs, &output, &x, &r, &s, &mut rng);
        prop_assert!(proof.verify(pk, &commitments, &inputs, &output));
        let (mut commitments, mut inputs, mut output) = (commitments, inputs, output);
        let n2 = pk.n_squared();
        let i = (delta as usize) % len;
        match field {
            0 => proof.a[i] = perturb(&proof.a[i], delta, n2),
            1 => proof.b = perturb(&proof.b, delta, n2),
            2 => proof.z[i] = perturb(&proof.z[i], delta, pk.n()),
            3 => proof.w1[i] = perturb(&proof.w1[i], delta, pk.n()),
            4 => proof.w2 = perturb(&proof.w2, delta, pk.n()),
            5 => commitments[i] = Ciphertext::from_raw(perturb(commitments[i].raw(), delta, n2)),
            6 => inputs[i] = Ciphertext::from_raw(perturb(inputs[i].raw(), delta, n2)),
            _ => output = Ciphertext::from_raw(perturb(output.raw(), delta, n2)),
        }
        prop_assert!(!proof.verify(pk, &commitments, &inputs, &output));
    }

    #[test]
    fn pohdp_never_panics_on_length_mismatch(
        extra in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = &kp().pk;
        let x = vec![BigUint::one()];
        let r = vec![coprime(&mut rng, pk)];
        let commitments = vec![pk.encrypt_with(&x[0], &r[0])];
        let inputs = vec![pk.encrypt(&BigUint::from_u64(5), &mut rng)];
        let (output, s) = DotProductProof::dot(pk, &inputs, &x, &mut rng);
        let proof =
            DotProductProof::prove(pk, &commitments, &inputs, &output, &x, &r, &s, &mut rng);
        let padded: Vec<Ciphertext> =
            std::iter::repeat_with(|| commitments[0].clone()).take(1 + extra).collect();
        let ok = proof.verify(pk, &padded, &inputs, &output);
        prop_assert_eq!(ok, extra == 0);
    }
}

#[test]
fn challenge_bits_clamps_tiny_and_huge_keys() {
    // 16-bit modulus: keysize/2 − 8 = 0 → clamped up to the 16-bit floor.
    let tiny = PublicKey::from_n(BigUint::from_u64(0xC00D));
    assert_eq!(tiny.keysize(), 16);
    assert_eq!(challenge_bits(&tiny), 16);
    // 64-bit modulus: in the linear region (64/2 − 8 = 24).
    let mid = PublicKey::from_n(BigUint::from_u64(0x8000_0000_0000_000Du64));
    assert_eq!(challenge_bits(&mid), 24);
    // 512-bit modulus: capped at 128.
    let mut rng = StdRng::seed_from_u64(77);
    let big = keygen(&mut rng, 512);
    assert_eq!(challenge_bits(&big.pk), 128);
}

#[test]
fn tiny_key_proofs_still_round_trip() {
    // The clamp floor (challenge wider than the factors) breaks the
    // soundness *bound*, not completeness: honest proofs must verify and
    // tampered ones must still reject without panicking.
    let mut rng = StdRng::seed_from_u64(55);
    let kp = keygen(&mut rng, 32);
    let x = BigUint::from_u64(9);
    let r = pivot_bignum::rng::gen_coprime(&mut rng, kp.pk.n());
    let c = kp.pk.encrypt_with(&x, &r);
    let mut proof = PlaintextProof::prove(&kp.pk, &c, &x, &r, &mut rng);
    assert!(proof.verify(&kp.pk, &c));
    proof.z = (&proof.z + &BigUint::one()).rem_of(kp.pk.n());
    assert!(!proof.verify(&kp.pk, &c));
}
