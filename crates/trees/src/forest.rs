//! Random forests (paper §7.1): independently trained CART trees over
//! bootstrap samples; majority vote (classification) or mean (regression).

use crate::cart::{CartTrainer, TreeParams};
use crate::model::DecisionTree;
use pivot_data::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest hyper-parameters.
#[derive(Clone, Debug)]
pub struct RandomForestParams {
    /// Number of trees `W`.
    pub trees: usize,
    /// Per-tree CART parameters.
    pub tree: TreeParams,
    /// Bootstrap-sample fraction (1.0 = n samples drawn with replacement).
    pub sample_fraction: f64,
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            trees: 8,
            tree: TreeParams::default(),
            sample_fraction: 1.0,
            seed: 13,
        }
    }
}

/// A trained random forest.
#[derive(Clone, Debug)]
pub struct RandomForest {
    pub trees: Vec<DecisionTree>,
    task: Task,
}

impl RandomForest {
    /// Train `params.trees` CART trees on bootstrap masks.
    pub fn train(data: &Dataset, params: &RandomForestParams) -> Self {
        assert!(params.trees >= 1);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let trainer = CartTrainer::new(data, params.tree.clone());
        let n = data.num_samples();
        let draws = ((n as f64) * params.sample_fraction).round().max(1.0) as usize;
        let trees = (0..params.trees)
            .map(|_| {
                let mut mask = vec![false; n];
                for _ in 0..draws {
                    mask[rng.gen_range(0..n)] = true;
                }
                trainer.train_masked(&mask)
            })
            .collect();
        RandomForest {
            trees,
            task: data.task(),
        }
    }

    /// Predict one sample: majority vote or mean over trees (§7.1).
    pub fn predict(&self, sample: &[f64]) -> f64 {
        match self.task {
            Task::Classification { classes } => {
                let mut votes = vec![0usize; classes];
                for tree in &self.trees {
                    votes[tree.predict(sample) as usize] += 1;
                }
                let mut best = 0usize;
                for (k, &v) in votes.iter().enumerate() {
                    if v > votes[best] {
                        best = k;
                    }
                }
                best as f64
            }
            Task::Regression => {
                let sum: f64 = self.trees.iter().map(|t| t.predict(sample)).sum();
                sum / self.trees.len() as f64
            }
        }
    }

    /// Predict a batch.
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Vec<f64> {
        samples.iter().map(|s| self.predict(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::synth;

    #[test]
    fn forest_beats_or_matches_a_stump_task() {
        let ds = synth::make_classification(&synth::ClassificationSpec {
            samples: 500,
            classes: 2,
            class_sep: 1.5,
            flip_y: 0.02,
            ..Default::default()
        });
        let (train, test) = ds.train_test_split(0.3);
        let rf = RandomForest::train(&train, &RandomForestParams::default());
        let preds = rf.predict_batch(
            &(0..test.num_samples())
                .map(|i| test.sample(i).to_vec())
                .collect::<Vec<_>>(),
        );
        let acc = pivot_data::metrics::accuracy(&preds, test.labels());
        assert!(acc > 0.75, "forest accuracy {acc}");
    }

    #[test]
    fn regression_averages_trees() {
        let ds = synth::make_regression(&synth::RegressionSpec {
            samples: 400,
            noise: 0.05,
            ..Default::default()
        });
        let (train, test) = ds.train_test_split(0.25);
        let rf = RandomForest::train(
            &train,
            &RandomForestParams {
                trees: 12,
                ..Default::default()
            },
        );
        let preds = rf.predict_batch(
            &(0..test.num_samples())
                .map(|i| test.sample(i).to_vec())
                .collect::<Vec<_>>(),
        );
        let mse = pivot_data::metrics::mse(&preds, test.labels());
        assert!(mse < 0.2, "forest regression mse {mse}");
    }

    #[test]
    fn tree_count_respected() {
        let ds = synth::make_classification(&Default::default());
        let rf = RandomForest::train(
            &ds,
            &RandomForestParams {
                trees: 5,
                ..Default::default()
            },
        );
        assert_eq!(rf.trees.len(), 5);
    }

    #[test]
    fn deterministic_for_seed() {
        let ds = synth::make_classification(&Default::default());
        let a = RandomForest::train(&ds, &RandomForestParams::default());
        let b = RandomForest::train(&ds, &RandomForestParams::default());
        assert_eq!(a.predict(ds.sample(0)), b.predict(ds.sample(0)));
    }
}
