//! The decision-tree model representation shared by plaintext and
//! privacy-preserving trainers: an arena of nodes addressed by [`NodeId`].

use pivot_data::Task;

/// Index into a tree's node arena.
pub type NodeId = usize;

/// One tree node.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// Internal split: go left iff `value(feature) ≤ threshold`.
    Internal {
        feature: usize,
        threshold: f64,
        left: NodeId,
        right: NodeId,
    },
    /// Leaf carrying the prediction (class index or regression value).
    Leaf { value: f64 },
}

/// A CART-style binary decision tree.
#[derive(Clone, Debug, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    root: NodeId,
    task: Task,
}

impl DecisionTree {
    /// Build from an arena and root (validated).
    pub fn new(nodes: Vec<Node>, root: NodeId, task: Task) -> Self {
        assert!(root < nodes.len(), "root out of range");
        for node in &nodes {
            if let Node::Internal { left, right, .. } = node {
                assert!(
                    *left < nodes.len() && *right < nodes.len(),
                    "dangling child"
                );
            }
        }
        DecisionTree { nodes, root, task }
    }

    /// A single-leaf tree.
    pub fn leaf(value: f64, task: Task) -> Self {
        DecisionTree {
            nodes: vec![Node::Leaf { value }],
            root: 0,
            task,
        }
    }

    /// The node arena.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Root id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The task this tree was trained for.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Number of internal nodes (the paper's `t`).
    pub fn internal_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Internal { .. }))
            .count()
    }

    /// Number of leaves (`t + 1` for a full binary tree).
    pub fn leaf_count(&self) -> usize {
        self.nodes.len() - self.internal_count()
    }

    /// Maximum depth (root = depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: NodeId) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, self.root)
    }

    /// Predict a single sample.
    pub fn predict(&self, sample: &[f64]) -> f64 {
        let mut id = self.root;
        loop {
            match &self.nodes[id] {
                Node::Leaf { value } => return *value,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if sample[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict a batch of samples.
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Vec<f64> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Enumerate leaves in left-to-right order as
    /// `(leaf value, path: Vec<(feature, threshold, went_left)>)` — the
    /// leaf-label vector `z` and prediction paths of Algorithm 4.
    pub fn leaf_paths(&self) -> Vec<(f64, Vec<(usize, f64, bool)>)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            match &self.nodes[id] {
                Node::Leaf { value } => out.push((*value, path)),
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // Push right first so left-to-right order pops left first.
                    let mut right_path = path.clone();
                    right_path.push((*feature, *threshold, false));
                    stack.push((*right, right_path));
                    let mut left_path = path;
                    left_path.push((*feature, *threshold, true));
                    stack.push((*left, left_path));
                }
            }
        }
        out
    }

    /// Render as an indented text diagram (for examples / debugging).
    pub fn render(&self, feature_names: &[String]) -> String {
        fn walk(nodes: &[Node], id: NodeId, names: &[String], depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match &nodes[id] {
                Node::Leaf { value } => {
                    out.push_str(&format!("{pad}leaf: {value:.4}\n"));
                }
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let name = names
                        .get(*feature)
                        .cloned()
                        .unwrap_or_else(|| format!("f{feature}"));
                    out.push_str(&format!("{pad}{name} <= {threshold:.4}\n"));
                    walk(nodes, *left, names, depth + 1, out);
                    out.push_str(&format!("{pad}{name} >  {threshold:.4}\n"));
                    walk(nodes, *right, names, depth + 1, out);
                }
            }
        }
        let mut out = String::new();
        walk(&self.nodes, self.root, feature_names, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stump() -> DecisionTree {
        // f0 <= 2.0 → 0.0 else 1.0
        DecisionTree::new(
            vec![
                Node::Internal {
                    feature: 0,
                    threshold: 2.0,
                    left: 1,
                    right: 2,
                },
                Node::Leaf { value: 0.0 },
                Node::Leaf { value: 1.0 },
            ],
            0,
            Task::Classification { classes: 2 },
        )
    }

    #[test]
    fn prediction_follows_thresholds() {
        let t = stump();
        assert_eq!(t.predict(&[1.0]), 0.0);
        assert_eq!(t.predict(&[2.0]), 0.0); // boundary goes left
        assert_eq!(t.predict(&[3.0]), 1.0);
    }

    #[test]
    fn counts_and_depth() {
        let t = stump();
        assert_eq!(t.internal_count(), 1);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.depth(), 1);
        assert_eq!(DecisionTree::leaf(5.0, Task::Regression).depth(), 0);
    }

    #[test]
    fn leaf_paths_enumerate_left_to_right() {
        let t = stump();
        let paths = t.leaf_paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].0, 0.0);
        assert_eq!(paths[0].1, vec![(0, 2.0, true)]);
        assert_eq!(paths[1].0, 1.0);
        assert_eq!(paths[1].1, vec![(0, 2.0, false)]);
    }

    #[test]
    #[should_panic(expected = "dangling child")]
    fn dangling_child_rejected() {
        DecisionTree::new(
            vec![Node::Internal {
                feature: 0,
                threshold: 0.0,
                left: 5,
                right: 6,
            }],
            0,
            Task::Regression,
        );
    }

    #[test]
    fn render_contains_structure() {
        let t = stump();
        let txt = t.render(&["age".to_string()]);
        assert!(txt.contains("age <= 2.0000"));
        assert!(txt.contains("leaf: 1.0000"));
    }
}
