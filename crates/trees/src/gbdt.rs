//! Gradient-boosted decision trees (paper §7.2): squared-loss residual
//! boosting for regression; one-vs-rest with softmax for classification.

use crate::cart::{train_tree, TreeParams};
use crate::model::DecisionTree;
use pivot_data::{Dataset, Task};

/// GBDT hyper-parameters.
#[derive(Clone, Debug)]
pub struct GbdtParams {
    /// Boosting rounds `W`.
    pub rounds: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Per-tree CART parameters (regression trees internally).
    pub tree: TreeParams,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            rounds: 8,
            learning_rate: 0.3,
            tree: TreeParams {
                max_depth: 3,
                stop_when_pure: false,
                ..Default::default()
            },
        }
    }
}

/// A trained GBDT model: for classification, `forests[k]` is the regression
/// forest of class `k` (one-vs-rest); for regression there is one forest.
#[derive(Clone, Debug)]
pub struct Gbdt {
    forests: Vec<Vec<DecisionTree>>,
    base: Vec<f64>,
    learning_rate: f64,
    task: Task,
}

impl Gbdt {
    /// Train with squared-loss residual boosting.
    pub fn train(data: &Dataset, params: &GbdtParams) -> Self {
        match data.task() {
            Task::Regression => {
                let (trees, base) = Self::train_regressor(data, data.labels(), params);
                Gbdt {
                    forests: vec![trees],
                    base: vec![base],
                    learning_rate: params.learning_rate,
                    task: Task::Regression,
                }
            }
            Task::Classification { classes } => {
                // One-vs-rest: binary targets per class, boosted separately
                // (§7.2: "build a GBDT regression forest for each class").
                let mut forests = Vec::with_capacity(classes);
                let mut bases = Vec::with_capacity(classes);
                for k in 0..classes {
                    let targets: Vec<f64> = data
                        .labels()
                        .iter()
                        .map(|&y| if y as usize == k { 1.0 } else { 0.0 })
                        .collect();
                    let (trees, base) = Self::train_regressor(data, &targets, params);
                    forests.push(trees);
                    bases.push(base);
                }
                Gbdt {
                    forests,
                    base: bases,
                    learning_rate: params.learning_rate,
                    task: data.task(),
                }
            }
        }
    }

    /// Core boosting loop on explicit targets. Returns (trees, base score).
    fn train_regressor(
        data: &Dataset,
        targets: &[f64],
        params: &GbdtParams,
    ) -> (Vec<DecisionTree>, f64) {
        let n = data.num_samples() as f64;
        let base = targets.iter().sum::<f64>() / n;
        let mut predictions = vec![base; targets.len()];
        let mut trees = Vec::with_capacity(params.rounds);
        for _ in 0..params.rounds {
            // Squared loss ⇒ residuals are the negative gradients.
            let residuals: Vec<f64> = targets
                .iter()
                .zip(&predictions)
                .map(|(t, p)| t - p)
                .collect();
            let stage = data.with_labels(residuals, Task::Regression);
            let tree = train_tree(&stage, &params.tree);
            for (i, pred) in predictions.iter_mut().enumerate() {
                *pred += params.learning_rate * tree.predict(data.sample(i));
            }
            trees.push(tree);
        }
        (trees, base)
    }

    /// Raw additive score(s): one for regression, one per class otherwise.
    pub fn scores(&self, sample: &[f64]) -> Vec<f64> {
        self.forests
            .iter()
            .zip(&self.base)
            .map(|(trees, &base)| {
                base + self.learning_rate * trees.iter().map(|t| t.predict(sample)).sum::<f64>()
            })
            .collect()
    }

    /// Predict: regression value, or argmax of per-class scores (the
    /// plaintext analogue of the secure softmax decision — softmax is
    /// monotone, so argmax over scores equals argmax over probabilities).
    pub fn predict(&self, sample: &[f64]) -> f64 {
        let scores = self.scores(sample);
        match self.task {
            Task::Regression => scores[0],
            Task::Classification { .. } => {
                let mut best = 0usize;
                for (k, &s) in scores.iter().enumerate() {
                    if s > scores[best] {
                        best = k;
                    }
                }
                best as f64
            }
        }
    }

    /// Predict a batch.
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Vec<f64> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Number of boosting rounds trained.
    pub fn rounds(&self) -> usize {
        self.forests.first().map_or(0, |f| f.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::synth;

    #[test]
    fn boosting_reduces_training_error() {
        let ds = synth::make_regression(&synth::RegressionSpec {
            samples: 300,
            noise: 0.02,
            ..Default::default()
        });
        let short = Gbdt::train(
            &ds,
            &GbdtParams {
                rounds: 1,
                ..Default::default()
            },
        );
        let long = Gbdt::train(
            &ds,
            &GbdtParams {
                rounds: 12,
                ..Default::default()
            },
        );
        let samples: Vec<Vec<f64>> = (0..ds.num_samples())
            .map(|i| ds.sample(i).to_vec())
            .collect();
        let mse_short = pivot_data::metrics::mse(&short.predict_batch(&samples), ds.labels());
        let mse_long = pivot_data::metrics::mse(&long.predict_batch(&samples), ds.labels());
        assert!(
            mse_long < mse_short,
            "more rounds should fit better: {mse_long} vs {mse_short}"
        );
    }

    #[test]
    fn classification_one_vs_rest() {
        let ds = synth::make_classification(&synth::ClassificationSpec {
            samples: 400,
            classes: 3,
            class_sep: 2.0,
            flip_y: 0.0,
            ..Default::default()
        });
        let (train, test) = ds.train_test_split(0.25);
        let model = Gbdt::train(&train, &GbdtParams::default());
        let preds = model.predict_batch(
            &(0..test.num_samples())
                .map(|i| test.sample(i).to_vec())
                .collect::<Vec<_>>(),
        );
        let acc = pivot_data::metrics::accuracy(&preds, test.labels());
        assert!(acc > 0.75, "gbdt accuracy {acc}");
        assert_eq!(model.scores(test.sample(0)).len(), 3);
    }

    #[test]
    fn rounds_counted() {
        let ds = synth::make_regression(&Default::default());
        let model = Gbdt::train(
            &ds,
            &GbdtParams {
                rounds: 5,
                ..Default::default()
            },
        );
        assert_eq!(model.rounds(), 5);
    }
}
