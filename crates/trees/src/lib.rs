//! Plaintext tree learners: CART decision trees (Algorithm 1), random
//! forests, and gradient-boosted decision trees.
//!
//! These serve two roles in the reproduction:
//!
//! 1. the **non-private baselines** of Table 3 (NP-DT / NP-RF / NP-GBDT,
//!    which the paper takes from sklearn), and
//! 2. the **reference semantics** for the Pivot protocols — both sides use
//!    the same `b`-bucket candidate splits ([`pivot_data::candidate_splits`])
//!    and the same gain formulation, so the privacy-preserving training can
//!    be tested for *structural equality* against the plaintext trainer.

mod cart;
mod forest;
mod gbdt;
mod model;

pub use cart::{train_tree, CartTrainer, TreeParams};
pub use forest::{RandomForest, RandomForestParams};
pub use gbdt::{Gbdt, GbdtParams};
pub use model::{DecisionTree, Node, NodeId};
