//! Plaintext CART training (paper Algorithm 1) over `b`-bucket candidate
//! splits — the reference semantics for the Pivot protocols and the NP-DT
//! baseline of Table 3.

use crate::model::{DecisionTree, Node, NodeId};
use pivot_data::{candidate_splits, Dataset, SplitCandidates, Task};

/// Tree-growing hyper-parameters (paper Table 4 notation).
#[derive(Clone, Debug)]
pub struct TreeParams {
    /// Maximum depth `h` (root at depth 0; `h` edges down).
    pub max_depth: usize,
    /// Prune when a node holds fewer samples than this.
    pub min_samples: usize,
    /// Maximum candidate splits per feature `b`.
    pub max_splits: usize,
    /// Stop splitting pure nodes. The Pivot *basic* protocol mirrors this
    /// with a secure purity check (the released model reveals it anyway);
    /// the *enhanced* protocol disables it to avoid the extra bit of leakage.
    pub stop_when_pure: bool,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_samples: 2,
            max_splits: 8,
            stop_when_pure: true,
        }
    }
}

/// A reusable trainer (precomputes candidate splits once per dataset).
pub struct CartTrainer<'a> {
    data: &'a Dataset,
    params: TreeParams,
    candidates: Vec<SplitCandidates>,
}

/// Train a CART tree with the given parameters.
pub fn train_tree(data: &Dataset, params: &TreeParams) -> DecisionTree {
    CartTrainer::new(data, params.clone()).train()
}

impl<'a> CartTrainer<'a> {
    pub fn new(data: &'a Dataset, params: TreeParams) -> Self {
        assert!(data.num_samples() > 0, "cannot train on an empty dataset");
        let candidates = (0..data.num_features())
            .map(|j| candidate_splits(&data.feature_column(j), params.max_splits))
            .collect();
        CartTrainer {
            data,
            params,
            candidates,
        }
    }

    /// Candidate thresholds per feature (shared with the Pivot protocols).
    pub fn candidates(&self) -> &[SplitCandidates] {
        &self.candidates
    }

    /// Train on all samples.
    pub fn train(&self) -> DecisionTree {
        let mask = vec![true; self.data.num_samples()];
        self.train_masked(&mask)
    }

    /// Train on the samples selected by `mask` (used by bagging).
    pub fn train_masked(&self, mask: &[bool]) -> DecisionTree {
        assert_eq!(mask.len(), self.data.num_samples());
        let mut nodes = Vec::new();
        let root = self.build(mask, 0, &mut nodes);
        DecisionTree::new(nodes, root, self.data.task())
    }

    fn build(&self, mask: &[bool], depth: usize, nodes: &mut Vec<Node>) -> NodeId {
        let n: usize = mask.iter().filter(|&&b| b).count();
        let prune = depth >= self.params.max_depth
            || n < self.params.min_samples
            || (self.params.stop_when_pure && self.is_pure(mask));
        if prune {
            let value = self.leaf_value(mask);
            nodes.push(Node::Leaf { value });
            return nodes.len() - 1;
        }

        match self.best_split(mask) {
            None => {
                let value = self.leaf_value(mask);
                nodes.push(Node::Leaf { value });
                nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let mut left_mask = vec![false; mask.len()];
                let mut right_mask = vec![false; mask.len()];
                for i in 0..mask.len() {
                    if mask[i] {
                        if self.data.value(i, feature) <= threshold {
                            left_mask[i] = true;
                        } else {
                            right_mask[i] = true;
                        }
                    }
                }
                let left = self.build(&left_mask, depth + 1, nodes);
                let right = self.build(&right_mask, depth + 1, nodes);
                nodes.push(Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                });
                nodes.len() - 1
            }
        }
    }

    /// The split score used throughout the reproduction — identical (up to
    /// an additive constant shared by all splits of a node, and a positive
    /// factor `1/n`) to the paper's Eqn (5) impurity gain for
    /// classification and Eqn (6) variance gain for regression:
    ///
    /// * classification: `Σ_k g_{l,k}²/n_l + Σ_k g_{r,k}²/n_r`
    /// * regression:     `(Σ_l y)²/n_l + (Σ_r y)²/n_r`
    ///
    /// Splits leaving an empty side score `-1` (the protocols' invalid
    /// marker). The first maximum wins ties, in global
    /// (feature, split-index) order.
    pub fn split_score(&self, mask: &[bool], feature: usize, threshold: f64) -> f64 {
        match self.data.task() {
            Task::Classification { classes } => {
                let mut left_counts = vec![0usize; classes];
                let mut right_counts = vec![0usize; classes];
                for i in 0..mask.len() {
                    if mask[i] {
                        let k = self.data.class(i);
                        if self.data.value(i, feature) <= threshold {
                            left_counts[k] += 1;
                        } else {
                            right_counts[k] += 1;
                        }
                    }
                }
                let n_l: usize = left_counts.iter().sum();
                let n_r: usize = right_counts.iter().sum();
                if n_l == 0 || n_r == 0 {
                    return -1.0;
                }
                let sum_sq = |counts: &[usize], n: usize| -> f64 {
                    counts.iter().map(|&g| (g * g) as f64).sum::<f64>() / n as f64
                };
                sum_sq(&left_counts, n_l) + sum_sq(&right_counts, n_r)
            }
            Task::Regression => {
                let (mut sum_l, mut sum_r) = (0.0f64, 0.0f64);
                let (mut n_l, mut n_r) = (0usize, 0usize);
                for i in 0..mask.len() {
                    if mask[i] {
                        if self.data.value(i, feature) <= threshold {
                            sum_l += self.data.label(i);
                            n_l += 1;
                        } else {
                            sum_r += self.data.label(i);
                            n_r += 1;
                        }
                    }
                }
                if n_l == 0 || n_r == 0 {
                    return -1.0;
                }
                sum_l * sum_l / n_l as f64 + sum_r * sum_r / n_r as f64
            }
        }
    }

    fn best_split(&self, mask: &[bool]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
        for feature in 0..self.data.num_features() {
            for &threshold in &self.candidates[feature].thresholds {
                let score = self.split_score(mask, feature, threshold);
                if score < 0.0 {
                    continue;
                }
                // Strict > keeps the first maximum.
                if best.map_or(true, |(_, _, s)| score > s) {
                    best = Some((feature, threshold, score));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    fn is_pure(&self, mask: &[bool]) -> bool {
        let mut first: Option<f64> = None;
        for i in 0..mask.len() {
            if mask[i] {
                match first {
                    None => first = Some(self.data.label(i)),
                    Some(v) if (v - self.data.label(i)).abs() > f64::EPSILON => {
                        return false;
                    }
                    _ => {}
                }
            }
        }
        true
    }

    /// Leaf value: majority class (classification) or mean label
    /// (regression) — Algorithm 1 lines 2–3. First class wins ties.
    pub fn leaf_value(&self, mask: &[bool]) -> f64 {
        match self.data.task() {
            Task::Classification { classes } => {
                let mut counts = vec![0usize; classes];
                for i in 0..mask.len() {
                    if mask[i] {
                        counts[self.data.class(i)] += 1;
                    }
                }
                let mut best = 0usize;
                for (k, &c) in counts.iter().enumerate() {
                    if c > counts[best] {
                        best = k;
                    }
                }
                best as f64
            }
            Task::Regression => {
                let mut sum = 0.0;
                let mut n = 0usize;
                for i in 0..mask.len() {
                    if mask[i] {
                        sum += self.data.label(i);
                        n += 1;
                    }
                }
                if n == 0 {
                    0.0
                } else {
                    sum / n as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_data::synth;

    fn xor_dataset() -> Dataset {
        // XOR of two features: needs depth 2.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..5 {
                features.push(vec![a, b]);
                labels.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
            }
        }
        Dataset::new(features, labels, Task::Classification { classes: 2 })
    }

    #[test]
    fn learns_a_simple_threshold() {
        let data = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![10.0], vec![11.0]],
            vec![0.0, 0.0, 1.0, 1.0],
            Task::Classification { classes: 2 },
        );
        let tree = train_tree(&data, &TreeParams::default());
        assert_eq!(tree.predict(&[1.5]), 0.0);
        assert_eq!(tree.predict(&[10.5]), 1.0);
        assert_eq!(tree.depth(), 1, "one split suffices");
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let tree = train_tree(&xor_dataset(), &TreeParams::default());
        assert_eq!(tree.predict(&[0.0, 0.0]), 0.0);
        assert_eq!(tree.predict(&[0.0, 1.0]), 1.0);
        assert_eq!(tree.predict(&[1.0, 0.0]), 1.0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn respects_max_depth() {
        let ds = synth::make_classification(&synth::ClassificationSpec {
            samples: 300,
            ..Default::default()
        });
        for depth in [1usize, 2, 3] {
            let tree = train_tree(
                &ds,
                &TreeParams {
                    max_depth: depth,
                    ..Default::default()
                },
            );
            assert!(tree.depth() <= depth, "depth {} > {}", tree.depth(), depth);
        }
    }

    #[test]
    fn regression_fits_means() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]],
            vec![0.1, 0.2, 0.9, 1.0],
            Task::Regression,
        );
        let tree = train_tree(
            &data,
            &TreeParams {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert!((tree.predict(&[0.5]) - 0.15).abs() < 1e-9);
        assert!((tree.predict(&[10.5]) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn pure_node_stops_early() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![1.0, 1.0, 1.0, 1.0],
            Task::Classification { classes: 2 },
        );
        let tree = train_tree(&data, &TreeParams::default());
        assert_eq!(tree.depth(), 0, "pure root should be a leaf");
        assert_eq!(tree.predict(&[9.0]), 1.0);
    }

    #[test]
    fn without_purity_stop_grows_to_depth() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![1.0, 1.0, 1.0, 1.0],
            Task::Classification { classes: 2 },
        );
        let tree = train_tree(
            &data,
            &TreeParams {
                stop_when_pure: false,
                max_depth: 2,
                ..Default::default()
            },
        );
        // Splits exist (features vary) even though gain is flat.
        assert!(tree.depth() > 0);
        assert_eq!(tree.predict(&[2.5]), 1.0);
    }

    #[test]
    fn min_samples_prunes() {
        let data = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![10.0], vec![11.0]],
            vec![0.0, 0.0, 1.0, 1.0],
            Task::Classification { classes: 2 },
        );
        let tree = train_tree(
            &data,
            &TreeParams {
                min_samples: 10,
                ..Default::default()
            },
        );
        assert_eq!(tree.depth(), 0, "root below min_samples must be a leaf");
    }

    #[test]
    fn reasonable_accuracy_on_synthetic() {
        let ds = synth::make_classification(&synth::ClassificationSpec {
            samples: 600,
            classes: 2,
            class_sep: 2.0,
            flip_y: 0.0,
            ..Default::default()
        });
        let (train, test) = ds.train_test_split(0.3);
        let tree = train_tree(
            &train,
            &TreeParams {
                max_depth: 6,
                ..Default::default()
            },
        );
        let preds: Vec<f64> = (0..test.num_samples())
            .map(|i| tree.predict(test.sample(i)))
            .collect();
        let acc = pivot_data::metrics::accuracy(&preds, test.labels());
        assert!(acc > 0.8, "accuracy {acc} too low");
    }

    #[test]
    fn score_marks_empty_sides_invalid() {
        let data = Dataset::new(
            vec![vec![1.0], vec![2.0]],
            vec![0.0, 1.0],
            Task::Classification { classes: 2 },
        );
        let trainer = CartTrainer::new(&data, TreeParams::default());
        // Threshold beyond all values → empty right side.
        assert_eq!(trainer.split_score(&[true, true], 0, 5.0), -1.0);
    }
}
