//! Additive shares and their free (local) linear algebra.

use crate::field::Fp;
use pivot_transport::wire::{Wire, WireError};
use std::ops::{Add, Mul, Neg, Sub};

/// One party's additive share of a secret field element: the paper's `⟨a⟩ᵢ`.
///
/// Linear operations (addition, subtraction, multiplication by a public
/// constant) are local; anything else goes through [`crate::MpcEngine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Share(pub Fp);

impl Share {
    /// The all-parties share of the public constant zero.
    pub const ZERO: Share = Share(Fp::ZERO);

    /// Share of a public constant: party 0 holds the value, others hold 0.
    /// (Every party must call this with the same constant.)
    pub fn from_public(party: usize, value: Fp) -> Share {
        if party == 0 {
            Share(value)
        } else {
            Share(Fp::ZERO)
        }
    }

    /// Add a public constant (party 0 adjusts its share).
    pub fn add_public(self, party: usize, value: Fp) -> Share {
        if party == 0 {
            Share(self.0 + value)
        } else {
            self
        }
    }

    /// Subtract a public constant.
    pub fn sub_public(self, party: usize, value: Fp) -> Share {
        if party == 0 {
            Share(self.0 - value)
        } else {
            self
        }
    }

    /// Multiply by a public constant (local for every party).
    pub fn scale(self, c: Fp) -> Share {
        Share(self.0 * c)
    }
}

impl Add for Share {
    type Output = Share;
    fn add(self, rhs: Share) -> Share {
        Share(self.0 + rhs.0)
    }
}

impl Sub for Share {
    type Output = Share;
    fn sub(self, rhs: Share) -> Share {
        Share(self.0 - rhs.0)
    }
}

impl Neg for Share {
    type Output = Share;
    fn neg(self) -> Share {
        Share(-self.0)
    }
}

impl Mul<Fp> for Share {
    type Output = Share;
    fn mul(self, rhs: Fp) -> Share {
        self.scale(rhs)
    }
}

impl Wire for Share {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Share(Fp::decode(buf)?))
    }
}

/// Element-wise addition of share vectors.
pub fn add_vec(a: &[Share], b: &[Share]) -> Vec<Share> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Element-wise subtraction of share vectors.
pub fn sub_vec(a: &[Share], b: &[Share]) -> Vec<Share> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Scale a share vector by a public constant.
pub fn scale_vec(a: &[Share], c: Fp) -> Vec<Share> {
    a.iter().map(|&x| x.scale(c)).collect()
}

/// Local sum of a share vector (share of the sum of secrets).
pub fn sum_shares(a: &[Share]) -> Share {
    a.iter().fold(Share::ZERO, |acc, &x| acc + x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Split a secret into `m` additive shares (test helper).
    fn split(secret: Fp, m: usize, seed: u64) -> Vec<Share> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shares: Vec<Share> = (0..m - 1)
            .map(|_| Share(Fp::new(rng.gen::<u64>())))
            .collect();
        let partial = shares.iter().fold(Fp::ZERO, |acc, s| acc + s.0);
        shares.push(Share(secret - partial));
        shares
    }

    fn reconstruct(shares: &[Share]) -> Fp {
        shares.iter().fold(Fp::ZERO, |acc, s| acc + s.0)
    }

    #[test]
    fn split_reconstruct() {
        let secret = Fp::new(123456);
        let shares = split(secret, 4, 1);
        assert_eq!(reconstruct(&shares), secret);
    }

    #[test]
    fn linear_ops_commute_with_reconstruction() {
        let a = Fp::new(100);
        let b = Fp::new(999);
        let sa = split(a, 3, 2);
        let sb = split(b, 3, 3);
        let sum: Vec<Share> = add_vec(&sa, &sb);
        assert_eq!(reconstruct(&sum), a + b);
        let diff = sub_vec(&sa, &sb);
        assert_eq!(reconstruct(&diff), a - b);
        let scaled = scale_vec(&sa, Fp::new(7));
        assert_eq!(reconstruct(&scaled), a * Fp::new(7));
    }

    #[test]
    fn public_constant_shares() {
        let shares: Vec<Share> = (0..3).map(|p| Share::from_public(p, Fp::new(42))).collect();
        assert_eq!(reconstruct(&shares), Fp::new(42));
        let adjusted: Vec<Share> = shares
            .iter()
            .enumerate()
            .map(|(p, s)| s.add_public(p, Fp::new(8)))
            .collect();
        assert_eq!(reconstruct(&adjusted), Fp::new(50));
    }

    #[test]
    fn sum_of_share_vector() {
        let secrets = [Fp::new(1), Fp::new(2), Fp::new(3)];
        let per_party: Vec<Vec<Share>> = (0..3)
            .map(|i| split(secrets[i], 2, 10 + i as u64))
            .collect();
        // Party p's vector of shares across the 3 secrets:
        let party0: Vec<Share> = per_party.iter().map(|s| s[0]).collect();
        let party1: Vec<Share> = per_party.iter().map(|s| s[1]).collect();
        let total = sum_shares(&party0) + sum_shares(&party1);
        assert_eq!(total.0, Fp::new(6));
    }
}
