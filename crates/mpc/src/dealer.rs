//! The offline phase: correlated randomness for the online protocols.
//!
//! MP-SPDZ separates an input-independent offline phase (Beaver triples,
//! shared random bits, masked-truncation pairs) from the online phase; the
//! paper reports online time only (§8.1: "we report the running time of the
//! online phase"). We reproduce that cost model with a *simulated trusted
//! dealer*: every party derives the same preprocessing stream from a common
//! seed and keeps its own component, so preprocessing costs zero online
//! communication.
//!
//! This is a **simulation of the offline phase**, not a secure realization
//! of it (each party could recompute the others' shares from the seed). The
//! online protocols built on top are the real ones; swapping in genuine
//! OT/HE-based preprocessing would not change any online message.

use crate::field::{Fp, MODULUS};
use crate::fixed::FixedConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Beaver multiplication triple share: `(⟨a⟩, ⟨b⟩, ⟨ab⟩)`.
#[derive(Clone, Copy, Debug)]
pub struct TripleShare {
    pub a: Fp,
    pub b: Fp,
    pub c: Fp,
}

/// Shares backing one exact-truncation / comparison mask:
/// `r = r_high · 2^t + Σ bits_i · 2^i`, with the low part bit-decomposed.
#[derive(Clone, Debug)]
pub struct MaskedBitsShare {
    /// Share of the full mask `r`.
    pub r: Fp,
    /// Share of the high part `r_high`.
    pub r_high: Fp,
    /// Shares of the `t` low bits (LSB first).
    pub bits: Vec<Fp>,
}

/// Per-party client of the simulated dealer. All parties construct it with
/// the same `seed` and call the same sequence of methods; each call advances
/// an identical PRG stream and returns this party's component.
pub struct DealerClient {
    rng: StdRng,
    party: usize,
    m: usize,
}

impl DealerClient {
    /// `seed` must be identical across parties; `party` is this party's id.
    pub fn new(seed: u64, party: usize, m: usize) -> Self {
        assert!(party < m);
        DealerClient {
            rng: StdRng::seed_from_u64(seed),
            party,
            m,
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.m
    }

    fn uniform(&mut self) -> Fp {
        Fp::new(self.rng.gen_range(0..MODULUS))
    }

    /// Split `value` into `m` additive shares and keep this party's.
    /// Every party generates the identical share vector and indexes it.
    fn split(&mut self, value: Fp) -> Fp {
        let mut total = Fp::ZERO;
        let mut mine = Fp::ZERO;
        for i in 0..self.m - 1 {
            let share = self.uniform();
            total += share;
            if i == self.party {
                mine = share;
            }
        }
        let last = value - total;
        if self.party == self.m - 1 {
            mine = last;
        }
        mine
    }

    /// Next Beaver triple.
    pub fn triple(&mut self) -> TripleShare {
        let a = self.uniform();
        let b = self.uniform();
        let c = a * b;
        TripleShare {
            a: self.split(a),
            b: self.split(b),
            c: self.split(c),
        }
    }

    /// A batch of Beaver triples.
    pub fn triples(&mut self, n: usize) -> Vec<TripleShare> {
        (0..n).map(|_| self.triple()).collect()
    }

    /// Share of a uniformly random field element (unknown to all parties).
    pub fn random_share(&mut self) -> Fp {
        let v = self.uniform();
        self.split(v)
    }

    /// Share of a uniformly random bit.
    pub fn random_bit(&mut self) -> Fp {
        let b = Fp::new(self.rng.gen_range(0..2u64));
        self.split(b)
    }

    /// Masked-truncation material for `Mod2m` with `t` low bits: the low
    /// part is bit-decomposed, the high part is uniform in
    /// `[0, 2^(k + κ - t))` per `cfg`.
    pub fn masked_bits(&mut self, t: u32, cfg: &FixedConfig) -> MaskedBitsShare {
        let high_bits = cfg.int_bits + cfg.kappa - t;
        debug_assert!(t + high_bits < 61);
        let mut low_val = 0u64;
        let mut bit_shares = Vec::with_capacity(t as usize);
        for i in 0..t {
            let bit = self.rng.gen_range(0..2u64);
            low_val |= bit << i;
            bit_shares.push(self.split(Fp::new(bit)));
        }
        let high = self.rng.gen_range(0..(1u64 << high_bits));
        let r_val = Fp::new(high << t) + Fp::new(low_val);
        let r = self.split(r_val);
        let r_high = self.split(Fp::new(high));
        MaskedBitsShare {
            r,
            r_high,
            bits: bit_shares,
        }
    }

    /// Probabilistic-truncation mask: `(⟨r⟩, ⟨r_high⟩)` with
    /// `r = r_high·2^t + r_low`, `r_low` uniform in `[0, 2^t)` (bits not
    /// needed for the probabilistic variant).
    pub fn trunc_pair(&mut self, t: u32, cfg: &FixedConfig) -> (Fp, Fp) {
        let high_bits = cfg.int_bits + cfg.kappa - t;
        let low = self.rng.gen_range(0..(1u64 << t));
        let high = self.rng.gen_range(0..(1u64 << high_bits));
        let r_val = Fp::new((high << t).wrapping_add(low));
        (self.split(r_val), self.split(Fp::new(high)))
    }

    /// Shares of a uniform fixed-point value in `[0, 1)` (that is, a random
    /// `f`-bit integer at scale `2^-f`) — used by the DP samplers (Alg. 5/6).
    pub fn random_unit_fraction(&mut self, cfg: &FixedConfig) -> Fp {
        let v = self.rng.gen_range(0..(1u64 << cfg.frac_bits));
        self.split(Fp::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `m` dealer clients in lockstep and reconstruct their outputs.
    fn clients(m: usize) -> Vec<DealerClient> {
        (0..m).map(|p| DealerClient::new(7, p, m)).collect()
    }

    fn reconstruct(shares: impl IntoIterator<Item = Fp>) -> Fp {
        shares.into_iter().fold(Fp::ZERO, |a, b| a + b)
    }

    #[test]
    fn triples_multiply() {
        let mut cs = clients(3);
        for _ in 0..20 {
            let ts: Vec<TripleShare> = cs.iter_mut().map(|c| c.triple()).collect();
            let a = reconstruct(ts.iter().map(|t| t.a));
            let b = reconstruct(ts.iter().map(|t| t.b));
            let c = reconstruct(ts.iter().map(|t| t.c));
            assert_eq!(a * b, c);
        }
    }

    #[test]
    fn random_bits_are_bits() {
        let mut cs = clients(4);
        let mut seen = [false; 2];
        for _ in 0..50 {
            let shares: Vec<Fp> = cs.iter_mut().map(|c| c.random_bit()).collect();
            let b = reconstruct(shares).value();
            assert!(b <= 1, "reconstructed {b} is not a bit");
            seen[b as usize] = true;
        }
        assert!(seen[0] && seen[1], "both bit values should occur");
    }

    #[test]
    fn masked_bits_consistent() {
        let cfg = FixedConfig::default();
        let mut cs = clients(2);
        for _ in 0..10 {
            let ms: Vec<MaskedBitsShare> = cs.iter_mut().map(|c| c.masked_bits(16, &cfg)).collect();
            let r = reconstruct(ms.iter().map(|m| m.r)).value();
            let r_high = reconstruct(ms.iter().map(|m| m.r_high)).value();
            let mut low = 0u64;
            for i in 0..16 {
                let bit = reconstruct(ms.iter().map(|m| m.bits[i])).value();
                assert!(bit <= 1);
                low |= bit << i;
            }
            assert_eq!(r, (r_high << 16) + low, "r = r_high·2^16 + r_low");
        }
    }

    #[test]
    fn trunc_pair_structure() {
        let cfg = FixedConfig::default();
        let mut cs = clients(3);
        for _ in 0..10 {
            let ps: Vec<(Fp, Fp)> = cs.iter_mut().map(|c| c.trunc_pair(16, &cfg)).collect();
            let r = reconstruct(ps.iter().map(|p| p.0)).value();
            let high = reconstruct(ps.iter().map(|p| p.1)).value();
            assert_eq!(r >> 16, high, "high part matches");
            assert!(high < 1 << (cfg.int_bits + cfg.kappa - 16));
        }
    }

    #[test]
    fn streams_identical_across_parties() {
        // Two independent sets of clients with the same seed produce the
        // same reconstructed values.
        let mut a = clients(2);
        let mut b = clients(2);
        let ta: Vec<TripleShare> = a.iter_mut().map(|c| c.triple()).collect();
        let tb: Vec<TripleShare> = b.iter_mut().map(|c| c.triple()).collect();
        assert_eq!(
            reconstruct(ta.iter().map(|t| t.a)),
            reconstruct(tb.iter().map(|t| t.a))
        );
    }

    #[test]
    fn unit_fraction_in_range() {
        let cfg = FixedConfig::default();
        let mut cs = clients(2);
        for _ in 0..20 {
            let shares: Vec<Fp> = cs
                .iter_mut()
                .map(|c| c.random_unit_fraction(&cfg))
                .collect();
            let v = reconstruct(shares).value();
            assert!(v < 1 << cfg.frac_bits);
        }
    }
}
