//! The offline phase: correlated randomness for the online protocols.
//!
//! MP-SPDZ separates an input-independent offline phase (Beaver triples,
//! shared random bits, masked-truncation pairs) from the online phase; the
//! paper reports online time only (§8.1: "we report the running time of the
//! online phase"). We reproduce that cost model with a *simulated trusted
//! dealer*: every party derives the same preprocessing stream from a common
//! seed and keeps its own component, so preprocessing costs zero online
//! communication.
//!
//! This is a **simulation of the offline phase**, not a secure realization
//! of it (each party could recompute the others' shares from the seed). The
//! online protocols built on top are the real ones; swapping in genuine
//! OT/HE-based preprocessing would not change any online message.
//!
//! Two stream layouts coexist:
//!
//! * **Legacy single stream** (`comparison_bits = "full"`): every draw —
//!   triples, masks, truncation pairs — advances one PRG in protocol call
//!   order, reproducing the PR-3/PR-4 transcripts bit for bit. Nothing can
//!   be precomputed ahead of time without perturbing later draws.
//! * **Split streams** (bounded comparison modes): Beaver triples and
//!   masked-bit rows move to *dedicated derived streams*, one per material
//!   kind (and per mask width). Each stream is consumed FIFO, so a
//!   [`DealerPool`] can precompute rows on background workers during idle
//!   phases without changing a single value — the same determinism contract
//!   as the PR-3 `NoncePool`. Order-sensitive material (probabilistic
//!   truncation pairs, DP unit fractions, random bits/shares) stays on the
//!   legacy stream: its values feed ±1-ulp rounding and DP draws, so
//!   reordering would change results, not just transcripts.

use crate::field::{Fp, MODULUS};
use crate::fixed::FixedConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A Beaver multiplication triple share: `(⟨a⟩, ⟨b⟩, ⟨ab⟩)`.
#[derive(Clone, Copy, Debug)]
pub struct TripleShare {
    pub a: Fp,
    pub b: Fp,
    pub c: Fp,
}

/// Shares backing one exact-truncation / comparison mask:
/// `r = r_high · 2^t + Σ bits_i · 2^i`, with the low part bit-decomposed.
#[derive(Clone, Debug)]
pub struct MaskedBitsShare {
    /// Share of the full mask `r`.
    pub r: Fp,
    /// Share of the high part `r_high`.
    pub r_high: Fp,
    /// Shares of the `t` low bits (LSB first).
    pub bits: Vec<Fp>,
}

/// Draw a uniform field element from `rng` (same draw on every party).
fn draw_uniform(rng: &mut StdRng) -> Fp {
    Fp::new(rng.gen_range(0..MODULUS))
}

/// Split `value` into `m` additive shares and keep party `party`'s.
/// Every party generates the identical share vector and indexes it.
fn draw_split(rng: &mut StdRng, party: usize, m: usize, value: Fp) -> Fp {
    let mut total = Fp::ZERO;
    let mut mine = Fp::ZERO;
    for i in 0..m - 1 {
        let share = draw_uniform(rng);
        total += share;
        if i == party {
            mine = share;
        }
    }
    let last = value - total;
    if party == m - 1 {
        mine = last;
    }
    mine
}

fn draw_triple(rng: &mut StdRng, party: usize, m: usize) -> TripleShare {
    let a = draw_uniform(rng);
    let b = draw_uniform(rng);
    let c = a * b;
    TripleShare {
        a: draw_split(rng, party, m, a),
        b: draw_split(rng, party, m, b),
        c: draw_split(rng, party, m, c),
    }
}

/// One masked-bit row: `t` bit-decomposed low bits plus a uniform
/// `high_bits`-bit high part. The caller fixes `high_bits = k + κ − t`
/// for the audited comparison width `k` (legacy callers: `k = int_bits`).
fn draw_masked_row(
    rng: &mut StdRng,
    party: usize,
    m: usize,
    t: u32,
    high_bits: u32,
) -> MaskedBitsShare {
    debug_assert!(t + high_bits < 61, "mask exceeds the 61-bit field");
    let mut low_val = 0u64;
    let mut bit_shares = Vec::with_capacity(t as usize);
    for i in 0..t {
        let bit = rng.gen_range(0..2u64);
        low_val |= bit << i;
        bit_shares.push(draw_split(rng, party, m, Fp::new(bit)));
    }
    let high = rng.gen_range(0..(1u64 << high_bits));
    let r_val = Fp::new(high << t) + Fp::new(low_val);
    MaskedBitsShare {
        r: draw_split(rng, party, m, r_val),
        r_high: draw_split(rng, party, m, Fp::new(high)),
        bits: bit_shares,
    }
}

/// Derive a per-stream seed from the dealer seed and a material tag.
/// SplitMix64-style finalizer: identical on every party, spreads nearby
/// tags far apart so streams never collide.
fn derived_seed(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const TRIPLE_TAG: u64 = 0x7219_7213_BEAF_E201;
const MASKED_TAG: u64 = 0x0A5C_ED81_7500_13D7;

/// Hit/miss behavior of one party's [`DealerPool`] (timing-dependent —
/// *not* part of the cross-backend parity contract; the values drawn are).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DealerPoolStats {
    /// Refill target per stream (0 = inline generation only).
    pub target: u64,
    /// Beaver triples served from the precomputed queue.
    pub triple_hits: u64,
    /// Beaver triples generated inline on demand.
    pub triple_misses: u64,
    /// Masked-bit rows served from the precomputed queues.
    pub masked_hits: u64,
    /// Masked-bit rows generated inline on demand.
    pub masked_misses: u64,
    /// Items precomputed by background workers.
    pub produced: u64,
}

impl DealerPoolStats {
    /// Field-wise accumulation; `target` keeps the maximum so a
    /// default-initialized side (mixed-version reports) never zeroes a
    /// configured one.
    pub fn merge(&mut self, other: &DealerPoolStats) {
        self.target = self.target.max(other.target);
        self.triple_hits += other.triple_hits;
        self.triple_misses += other.triple_misses;
        self.masked_hits += other.masked_hits;
        self.masked_misses += other.masked_misses;
        self.produced += other.produced;
    }

    /// Fraction of takes served from the precomputed queues (`None` when
    /// nothing was taken).
    pub fn hit_rate(&self) -> Option<f64> {
        let hits = self.triple_hits + self.masked_hits;
        let total = hits + self.triple_misses + self.masked_misses;
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }
}

/// FIFO stream of one preprocessing material kind: a dedicated seeded PRG
/// plus a queue of precomputed items. Values depend only on how many items
/// were drawn so far, never on *when* they were generated — the property
/// that makes background precomputation transcript-neutral.
struct Stream<T> {
    rng: StdRng,
    queue: VecDeque<T>,
    /// Items drawn since the last background refill sized this stream
    /// (the trickle window the async worker adapts to).
    demand: u64,
    /// Largest inter-refill window drain observed.
    burst: u64,
    /// Items drawn since the last *barrier* refill — accumulates across
    /// background refills so the level barrier sees the whole level's
    /// demand even when async triggers split the window.
    level_demand: u64,
    /// Largest full-level drain observed at a barrier.
    level_burst: u64,
}

impl<T> Stream<T> {
    fn new(seed: u64) -> Self {
        Stream {
            rng: StdRng::seed_from_u64(seed),
            queue: VecDeque::new(),
            demand: 0,
            burst: 0,
            level_demand: 0,
            level_burst: 0,
        }
    }
}

/// Per-party offline pool for the split-stream dealer layout: Beaver
/// triples and masked-bit rows precomputed on the `pivot-runtime`
/// background queue during idle phases (mirroring the PR-3 `NoncePool`).
pub struct DealerPool {
    party: usize,
    m: usize,
    seed: u64,
    /// Refill target per stream; 0 disables background precomputation
    /// (everything generates inline, still from the derived streams).
    target: usize,
    triples: Mutex<Stream<TripleShare>>,
    /// Masked-bit streams keyed by `(t, high_bits)` — each width draws
    /// from its own derived seed, so widths never perturb each other.
    masked: Mutex<HashMap<(u32, u32), Stream<MaskedBitsShare>>>,
    refill_pending: AtomicBool,
    triple_hits: AtomicU64,
    triple_misses: AtomicU64,
    masked_hits: AtomicU64,
    masked_misses: AtomicU64,
    produced: AtomicU64,
}

impl DealerPool {
    pub fn new(seed: u64, party: usize, m: usize, target: usize) -> Arc<DealerPool> {
        Arc::new(DealerPool {
            party,
            m,
            seed,
            target,
            triples: Mutex::new(Stream::new(derived_seed(seed, TRIPLE_TAG))),
            masked: Mutex::new(HashMap::new()),
            refill_pending: AtomicBool::new(false),
            triple_hits: AtomicU64::new(0),
            triple_misses: AtomicU64::new(0),
            masked_hits: AtomicU64::new(0),
            masked_misses: AtomicU64::new(0),
            produced: AtomicU64::new(0),
        })
    }

    /// Take `n` triples: precomputed rows first (FIFO), inline generation
    /// for the rest — the values are identical either way.
    fn take_triples(&self, n: usize) -> Vec<TripleShare> {
        let mut s = self.triples.lock().expect("dealer pool poisoned");
        s.demand += n as u64;
        s.level_demand += n as u64;
        let mut out = Vec::with_capacity(n);
        let hits = n.min(s.queue.len());
        for _ in 0..hits {
            out.push(s.queue.pop_front().expect("counted"));
        }
        for _ in hits..n {
            out.push(draw_triple(&mut s.rng, self.party, self.m));
        }
        self.triple_hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.triple_misses
            .fetch_add((n - hits) as u64, Ordering::Relaxed);
        if pivot_trace::enabled() {
            let h = self.triple_hits.load(Ordering::Relaxed);
            let miss = self.triple_misses.load(Ordering::Relaxed);
            pivot_trace::gauge(
                "dealer_triple_hit_rate",
                h as f64 / (h + miss).max(1) as f64,
            );
        }
        out
    }

    /// Take `n` masked-bit rows of shape `(t, high_bits)`.
    fn take_masked(&self, t: u32, high_bits: u32, n: usize) -> Vec<MaskedBitsShare> {
        let mut map = self.masked.lock().expect("dealer pool poisoned");
        let s = map.entry((t, high_bits)).or_insert_with(|| {
            Stream::new(derived_seed(
                self.seed,
                MASKED_TAG ^ ((t as u64) << 32 | high_bits as u64),
            ))
        });
        s.demand += n as u64;
        s.level_demand += n as u64;
        let mut out = Vec::with_capacity(n);
        let hits = n.min(s.queue.len());
        for _ in 0..hits {
            out.push(s.queue.pop_front().expect("counted"));
        }
        for _ in hits..n {
            out.push(draw_masked_row(
                &mut s.rng, self.party, self.m, t, high_bits,
            ));
        }
        self.masked_hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.masked_misses
            .fetch_add((n - hits) as u64, Ordering::Relaxed);
        if pivot_trace::enabled() {
            let h = self.masked_hits.load(Ordering::Relaxed);
            let miss = self.masked_misses.load(Ordering::Relaxed);
            pivot_trace::gauge(
                "dealer_masked_hit_rate",
                h as f64 / (h + miss).max(1) as f64,
            );
        }
        out
    }

    /// Top up every stream on the shared background queue. Cheap no-op
    /// when a refill is already pending or the target is 0; call from
    /// protocol idle phases (setup, conversion waits, level barriers).
    ///
    /// Each stream fills to `max(target, demand since its last refill)`:
    /// the pipelined scheduler drains whole level-bursts at once, far
    /// past any fixed floor, and the next level's burst has the same
    /// shape — so sizing to the observed drain keeps the pool ahead of
    /// bursty consumers without changing a single drawn value (rows are
    /// FIFO; values depend only on draw order).
    pub fn refill(self: &Arc<Self>) {
        if self.target == 0 || self.refill_pending.swap(true, Ordering::AcqRel) {
            return;
        }
        let pool = Arc::clone(self);
        pivot_runtime::global().spawn(move || {
            let _span = pivot_trace::runtime_span("dealer_refill");
            // Generate in small chunks so online takes never wait long on
            // the stream lock.
            const CHUNK: usize = 16;
            let triple_goal = {
                let mut s = pool.triples.lock().expect("dealer pool poisoned");
                s.burst = s.burst.max(std::mem::take(&mut s.demand));
                pool.target.max(s.burst.max(s.level_burst) as usize)
            };
            loop {
                let mut s = pool.triples.lock().expect("dealer pool poisoned");
                if s.queue.len() >= triple_goal {
                    break;
                }
                for _ in 0..CHUNK {
                    let t = draw_triple(&mut s.rng, pool.party, pool.m);
                    s.queue.push_back(t);
                }
                pool.produced.fetch_add(CHUNK as u64, Ordering::Relaxed);
            }
            // Refill every width the protocol has requested so far.
            let keys: Vec<(u32, u32)> = {
                let map = pool.masked.lock().expect("dealer pool poisoned");
                map.keys().copied().collect()
            };
            for key in keys {
                let goal = {
                    let mut map = pool.masked.lock().expect("dealer pool poisoned");
                    let s = map.get_mut(&key).expect("known key");
                    s.burst = s.burst.max(std::mem::take(&mut s.demand));
                    pool.target.max(s.burst.max(s.level_burst) as usize)
                };
                loop {
                    let mut map = pool.masked.lock().expect("dealer pool poisoned");
                    let s = map.get_mut(&key).expect("known key");
                    if s.queue.len() >= goal {
                        break;
                    }
                    for _ in 0..CHUNK {
                        let row = draw_masked_row(&mut s.rng, pool.party, pool.m, key.0, key.1);
                        s.queue.push_back(row);
                    }
                    pool.produced.fetch_add(CHUNK as u64, Ordering::Relaxed);
                }
            }
            pool.refill_pending.store(false, Ordering::Release);
        });
    }

    /// Synchronously top up every stream to its burst-informed goal on
    /// the caller's thread. The pipelined scheduler calls this at level
    /// barriers: the next level replays this level's burst shape scaled
    /// by the frontier growth `grow_num / grow_den` (next-level node
    /// count over this level's demanding node count), far past what the
    /// background worker can stage between a trigger and a drain — so
    /// the barrier, the protocol's designated idle point, absorbs the
    /// generation instead of the online takes. Values are unchanged
    /// either way (FIFO streams).
    pub fn refill_blocking(&self, grow_num: usize, grow_den: usize) {
        if self.target == 0 {
            return;
        }
        let scaled = |burst: u64| -> usize {
            let num = burst as u128 * grow_num.max(1) as u128;
            num.div_ceil(grow_den.max(1) as u128) as usize
        };
        {
            let mut s = self.triples.lock().expect("dealer pool poisoned");
            s.burst = s.burst.max(std::mem::take(&mut s.demand));
            s.level_burst = s.level_burst.max(std::mem::take(&mut s.level_demand));
            let goal = self.target.max(scaled(s.level_burst));
            let mut made = 0u64;
            while s.queue.len() < goal {
                let t = draw_triple(&mut s.rng, self.party, self.m);
                s.queue.push_back(t);
                made += 1;
            }
            self.produced.fetch_add(made, Ordering::Relaxed);
        }
        let keys: Vec<(u32, u32)> = {
            let map = self.masked.lock().expect("dealer pool poisoned");
            map.keys().copied().collect()
        };
        for key in keys {
            let mut map = self.masked.lock().expect("dealer pool poisoned");
            let s = map.get_mut(&key).expect("known key");
            s.burst = s.burst.max(std::mem::take(&mut s.demand));
            s.level_burst = s.level_burst.max(std::mem::take(&mut s.level_demand));
            let goal = self.target.max(scaled(s.level_burst));
            let mut made = 0u64;
            while s.queue.len() < goal {
                let row = draw_masked_row(&mut s.rng, self.party, self.m, key.0, key.1);
                s.queue.push_back(row);
                made += 1;
            }
            self.produced.fetch_add(made, Ordering::Relaxed);
        }
    }

    pub fn stats(&self) -> DealerPoolStats {
        DealerPoolStats {
            target: self.target as u64,
            triple_hits: self.triple_hits.load(Ordering::Relaxed),
            triple_misses: self.triple_misses.load(Ordering::Relaxed),
            masked_hits: self.masked_hits.load(Ordering::Relaxed),
            masked_misses: self.masked_misses.load(Ordering::Relaxed),
            produced: self.produced.load(Ordering::Relaxed),
        }
    }
}

/// Per-party client of the simulated dealer. All parties construct it with
/// the same `seed` and call the same sequence of methods; each call advances
/// an identical PRG stream and returns this party's component.
pub struct DealerClient {
    rng: StdRng,
    party: usize,
    m: usize,
    seed: u64,
    /// Set in bounded comparison modes: triples and masked rows come from
    /// the pool's derived streams instead of the legacy single stream.
    pool: Option<Arc<DealerPool>>,
}

impl DealerClient {
    /// `seed` must be identical across parties; `party` is this party's id.
    pub fn new(seed: u64, party: usize, m: usize) -> Self {
        assert!(party < m);
        DealerClient {
            rng: StdRng::seed_from_u64(seed),
            party,
            m,
            seed,
            pool: None,
        }
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.m
    }

    /// Switch triples and masked-bit rows onto dedicated derived streams
    /// (bounded comparison modes) with `target` precomputed rows per
    /// stream (0 = inline generation, still poolable semantics).
    ///
    /// Must be called before the first draw; the legacy stream keeps
    /// serving the order-sensitive material either way.
    pub fn enable_split_streams(&mut self, target: usize) {
        self.pool = Some(DealerPool::new(self.seed, self.party, self.m, target));
    }

    /// The offline pool, when split streams are enabled.
    pub fn pool(&self) -> Option<&Arc<DealerPool>> {
        self.pool.as_ref()
    }

    /// Pool behavior counters (zeros under the legacy single stream).
    pub fn pool_stats(&self) -> DealerPoolStats {
        self.pool.as_ref().map(|p| p.stats()).unwrap_or_default()
    }

    fn uniform(&mut self) -> Fp {
        draw_uniform(&mut self.rng)
    }

    fn split(&mut self, value: Fp) -> Fp {
        draw_split(&mut self.rng, self.party, self.m, value)
    }

    /// Next Beaver triple.
    pub fn triple(&mut self) -> TripleShare {
        self.triples(1).remove(0)
    }

    /// A batch of Beaver triples.
    pub fn triples(&mut self, n: usize) -> Vec<TripleShare> {
        match &self.pool {
            Some(pool) => pool.take_triples(n),
            None => (0..n)
                .map(|_| draw_triple(&mut self.rng, self.party, self.m))
                .collect(),
        }
    }

    /// Share of a uniformly random field element (unknown to all parties).
    pub fn random_share(&mut self) -> Fp {
        let v = self.uniform();
        self.split(v)
    }

    /// Share of a uniformly random bit.
    pub fn random_bit(&mut self) -> Fp {
        let b = Fp::new(self.rng.gen_range(0..2u64));
        self.split(b)
    }

    /// Masked-truncation material for `Mod2m` with `t` low bits: the low
    /// part is bit-decomposed, the high part is uniform in
    /// `[0, 2^(int_bits + κ - t))` per `cfg` (legacy full-width call).
    pub fn masked_bits(&mut self, t: u32, cfg: &FixedConfig) -> MaskedBitsShare {
        self.masked_rows(t, cfg.int_bits, 1, cfg).remove(0)
    }

    /// Width-aware masked-bit rows: the comparison operates on values in
    /// `[0, 2^k)`, so the high part only needs `k + κ − t` bits — the
    /// statistical-headroom audit scales with the *proven* range instead
    /// of the global `int_bits`. With `k = cfg.int_bits` and the legacy
    /// stream this is draw-for-draw identical to the PR-3/PR-4 dealer.
    pub fn masked_rows(
        &mut self,
        t: u32,
        k: u32,
        n: usize,
        cfg: &FixedConfig,
    ) -> Vec<MaskedBitsShare> {
        assert!(t <= k, "mod 2^{t} needs at least {t} value bits, got {k}");
        assert!(
            k + cfg.kappa < 61,
            "comparison width {k} + κ {} = {} exceeds the 61-bit field",
            cfg.kappa,
            k + cfg.kappa
        );
        let high_bits = k + cfg.kappa - t;
        match &self.pool {
            Some(pool) => pool.take_masked(t, high_bits, n),
            None => (0..n)
                .map(|_| draw_masked_row(&mut self.rng, self.party, self.m, t, high_bits))
                .collect(),
        }
    }

    /// Probabilistic-truncation mask: `(⟨r⟩, ⟨r_high⟩)` with
    /// `r = r_high·2^t + r_low`, `r_low` uniform in `[0, 2^t)` (bits not
    /// needed for the probabilistic variant).
    ///
    /// Always drawn from the legacy stream: the mask value decides the
    /// ±1-ulp rounding of every probabilistic truncation, so reordering
    /// draws would change *results*, not just transcripts.
    pub fn trunc_pair(&mut self, t: u32, cfg: &FixedConfig) -> (Fp, Fp) {
        let high_bits = cfg.int_bits + cfg.kappa - t;
        let low = self.rng.gen_range(0..(1u64 << t));
        let high = self.rng.gen_range(0..(1u64 << high_bits));
        let r_val = Fp::new((high << t).wrapping_add(low));
        (self.split(r_val), self.split(Fp::new(high)))
    }

    /// Shares of a uniform fixed-point value in `[0, 1)` (that is, a random
    /// `f`-bit integer at scale `2^-f`) — used by the DP samplers (Alg. 5/6).
    /// Legacy stream: the draw *is* the DP randomness.
    pub fn random_unit_fraction(&mut self, cfg: &FixedConfig) -> Fp {
        let v = self.rng.gen_range(0..(1u64 << cfg.frac_bits));
        self.split(Fp::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive `m` dealer clients in lockstep and reconstruct their outputs.
    fn clients(m: usize) -> Vec<DealerClient> {
        (0..m).map(|p| DealerClient::new(7, p, m)).collect()
    }

    fn reconstruct(shares: impl IntoIterator<Item = Fp>) -> Fp {
        shares.into_iter().fold(Fp::ZERO, |a, b| a + b)
    }

    #[test]
    fn triples_multiply() {
        let mut cs = clients(3);
        for _ in 0..20 {
            let ts: Vec<TripleShare> = cs.iter_mut().map(|c| c.triple()).collect();
            let a = reconstruct(ts.iter().map(|t| t.a));
            let b = reconstruct(ts.iter().map(|t| t.b));
            let c = reconstruct(ts.iter().map(|t| t.c));
            assert_eq!(a * b, c);
        }
    }

    #[test]
    fn random_bits_are_bits() {
        let mut cs = clients(4);
        let mut seen = [false; 2];
        for _ in 0..50 {
            let shares: Vec<Fp> = cs.iter_mut().map(|c| c.random_bit()).collect();
            let b = reconstruct(shares).value();
            assert!(b <= 1, "reconstructed {b} is not a bit");
            seen[b as usize] = true;
        }
        assert!(seen[0] && seen[1], "both bit values should occur");
    }

    #[test]
    fn masked_bits_consistent() {
        let cfg = FixedConfig::default();
        let mut cs = clients(2);
        for _ in 0..10 {
            let ms: Vec<MaskedBitsShare> = cs.iter_mut().map(|c| c.masked_bits(16, &cfg)).collect();
            let r = reconstruct(ms.iter().map(|m| m.r)).value();
            let r_high = reconstruct(ms.iter().map(|m| m.r_high)).value();
            let mut low = 0u64;
            for i in 0..16 {
                let bit = reconstruct(ms.iter().map(|m| m.bits[i])).value();
                assert!(bit <= 1);
                low |= bit << i;
            }
            assert_eq!(r, (r_high << 16) + low, "r = r_high·2^16 + r_low");
        }
    }

    #[test]
    fn bounded_masked_rows_respect_width() {
        let cfg = FixedConfig::default();
        let mut cs = clients(3);
        // Width-10 masks with t = 9 low bits: high part < 2^(10 + κ − 9).
        let rows: Vec<Vec<MaskedBitsShare>> = cs
            .iter_mut()
            .map(|c| c.masked_rows(9, 10, 5, &cfg))
            .collect();
        for i in 0..5 {
            let high = reconstruct(rows.iter().map(|r| r[i].r_high)).value();
            assert!(
                high < 1 << (10 + cfg.kappa - 9),
                "high part {high} too wide"
            );
            let r = reconstruct(rows.iter().map(|r| r[i].r)).value();
            let mut low = 0u64;
            for b in 0..9 {
                low |= reconstruct(rows.iter().map(|r| r[i].bits[b])).value() << b;
            }
            assert_eq!(r, (high << 9) + low);
        }
    }

    #[test]
    fn trunc_pair_structure() {
        let cfg = FixedConfig::default();
        let mut cs = clients(3);
        for _ in 0..10 {
            let ps: Vec<(Fp, Fp)> = cs.iter_mut().map(|c| c.trunc_pair(16, &cfg)).collect();
            let r = reconstruct(ps.iter().map(|p| p.0)).value();
            let high = reconstruct(ps.iter().map(|p| p.1)).value();
            assert_eq!(r >> 16, high, "high part matches");
            assert!(high < 1 << (cfg.int_bits + cfg.kappa - 16));
        }
    }

    #[test]
    fn streams_identical_across_parties() {
        // Two independent sets of clients with the same seed produce the
        // same reconstructed values.
        let mut a = clients(2);
        let mut b = clients(2);
        let ta: Vec<TripleShare> = a.iter_mut().map(|c| c.triple()).collect();
        let tb: Vec<TripleShare> = b.iter_mut().map(|c| c.triple()).collect();
        assert_eq!(
            reconstruct(ta.iter().map(|t| t.a)),
            reconstruct(tb.iter().map(|t| t.a))
        );
    }

    #[test]
    fn unit_fraction_in_range() {
        let cfg = FixedConfig::default();
        let mut cs = clients(2);
        for _ in 0..20 {
            let shares: Vec<Fp> = cs
                .iter_mut()
                .map(|c| c.random_unit_fraction(&cfg))
                .collect();
            let v = reconstruct(shares).value();
            assert!(v < 1 << cfg.frac_bits);
        }
    }

    #[test]
    fn split_streams_match_inline_generation() {
        // Pooled (precomputed) and unpooled (inline) split-stream dealers
        // must produce identical values in identical order — the
        // determinism contract behind background precomputation.
        let cfg = FixedConfig::default();
        let drain = |c: &mut DealerClient| {
            let mut out: Vec<Fp> = Vec::new();
            for t in c.triples(40) {
                out.extend([t.a, t.b, t.c]);
            }
            for row in c.masked_rows(9, 10, 8, &cfg) {
                out.push(row.r);
                out.push(row.r_high);
                out.extend(row.bits);
            }
            for t in c.triples(3) {
                out.extend([t.a, t.b, t.c]);
            }
            out
        };
        let mut inline = DealerClient::new(77, 0, 2);
        inline.enable_split_streams(0);
        let baseline = drain(&mut inline);

        let mut pooled = DealerClient::new(77, 0, 2);
        pooled.enable_split_streams(64);
        // Force a full precompute round and wait for it to land.
        pooled.pool().unwrap().refill();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pooled.pool().unwrap().stats().produced < 64 {
            assert!(std::time::Instant::now() < deadline, "refill never ran");
            std::thread::yield_now();
        }
        assert_eq!(drain(&mut pooled), baseline);
        let stats = pooled.pool().unwrap().stats();
        assert!(
            stats.triple_hits > 0,
            "precomputed triples unused: {stats:?}"
        );
        assert!(stats.hit_rate().unwrap() > 0.0);
    }

    #[test]
    fn split_stream_draws_are_width_independent() {
        // Draw order across widths must not perturb the per-width values.
        let cfg = FixedConfig::default();
        let mut a = DealerClient::new(5, 0, 2);
        a.enable_split_streams(0);
        let narrow_first: Vec<Fp> = a.masked_rows(5, 6, 3, &cfg).iter().map(|r| r.r).collect();
        let _wide = a.masked_rows(20, 30, 3, &cfg);

        let mut b = DealerClient::new(5, 0, 2);
        b.enable_split_streams(0);
        let _wide = b.masked_rows(20, 30, 3, &cfg);
        let narrow_second: Vec<Fp> = b.masked_rows(5, 6, 3, &cfg).iter().map(|r| r.r).collect();
        assert_eq!(narrow_first, narrow_second);
    }

    #[test]
    fn pool_stats_merge_is_field_wise() {
        let a = DealerPoolStats {
            target: 512,
            triple_hits: 10,
            triple_misses: 2,
            masked_hits: 5,
            masked_misses: 1,
            produced: 16,
        };
        // Default side in either order leaves the configured side intact.
        let mut m = a;
        m.merge(&DealerPoolStats::default());
        assert_eq!(m, a);
        let mut m = DealerPoolStats::default();
        m.merge(&a);
        assert_eq!(m, a);
        // Two configured sides add counters and keep the max target.
        let mut m = a;
        m.merge(&DealerPoolStats {
            target: 64,
            triple_hits: 1,
            triple_misses: 1,
            masked_hits: 1,
            masked_misses: 1,
            produced: 4,
        });
        assert_eq!(m.target, 512);
        assert_eq!(m.triple_hits, 11);
        assert_eq!(m.produced, 20);
    }

    #[test]
    #[should_panic(expected = "exceeds the 61-bit field")]
    fn oversized_width_rejected() {
        let cfg = FixedConfig::default();
        let mut c = DealerClient::new(1, 0, 2);
        c.masked_rows(40, 50, 1, &cfg);
    }
}
