//! SPDZ-style semi-honest MPC over a 61-bit Mersenne prime field.
//!
//! The original Pivot uses the MP-SPDZ framework's semi-honest additive
//! secret sharing and reports *online-phase* time only (§8.1). This crate
//! reproduces that stack:
//!
//! * [`Fp`] — the computation domain `Z_p`, `p = 2^61 − 1` (Mersenne, so
//!   reduction is two folds and a conditional subtract).
//! * [`Share`] — additive shares with free linear operations.
//! * [`dealer`] — the offline phase: Beaver triples, shared random bits and
//!   masked-truncation material, derived from a common seed so the online
//!   protocol pays zero communication for preprocessing (exactly the cost
//!   model of the paper's reported numbers).
//! * [`MpcEngine`] — vectorized online protocols: open, multiply (Beaver),
//!   fixed-point truncation, comparison (Catrina–de Hoogh style with shared
//!   random bits), division (Goldschmidt reciprocal), exponential/softmax
//!   (for GBDT, §7.2), argmax (best-split selection, §4.1), and the
//!   differential-privacy samplers of §9.2 (Algorithms 5 and 6).
//!
//! All collective operations are **vectorized**: one communication round
//! handles a whole vector, mirroring the SPDZ compiler's vectorization.

pub mod dealer;
pub mod dp;
mod engine;
mod field;
mod fixed;
mod share;

pub use dealer::{DealerClient, DealerPool, DealerPoolStats};
pub use engine::{width_for_magnitude, CompareBits, ComparisonCounters, MpcEngine, OpCounters};
pub use field::{Fp, MODULUS};
pub use fixed::FixedConfig;
pub use share::{add_vec, scale_vec, sub_vec, sum_shares, Share};
