//! Differential privacy inside MPC (paper §9.2): secretly shared Laplace
//! sampling (Algorithm 5) and exponential-mechanism selection (Algorithm 6).
//! No party ever sees the plaintext noise or the sampled index.

use crate::engine::MpcEngine;
use crate::field::Fp;
use crate::share::Share;

/// Algorithm 5: sample `⟨X⟩ ~ Laplace(mu, b)` in secret-shared form.
///
/// Follows the paper exactly: draw uniform `⟨U⟩ ∈ (−1/2, 1/2)`, extract the
/// sign and magnitude with secure comparison/selection, and apply the
/// inverse CDF `X = µ − b · sgn(U) · ln(1 − 2|U|)`.
pub fn laplace_sample(engine: &mut MpcEngine<'_>, mu: f64, b: f64) -> Share {
    laplace_sample_vec(engine, mu, b, 1)[0]
}

/// Vectorized Algorithm 5: `count` independent Laplace samples.
pub fn laplace_sample_vec(engine: &mut MpcEngine<'_>, mu: f64, b: f64, count: usize) -> Vec<Share> {
    let party = engine.party();
    let cfg = engine.cfg;
    let half = cfg.encode(0.5);
    // U = u − 1/2 with u uniform in [0, 1) from the offline phase.
    let u: Vec<Share> = (0..count)
        .map(|_| {
            let frac = engine.dealer_mut().random_unit_fraction(&cfg);
            Share(frac).sub_public(party, half)
        })
        .collect();

    // ⟨Us⟩ = sign, ⟨Ua⟩ = |U| (lines 2–8 of Algorithm 5).
    // |U| ≤ 1/2 at scale 2^f, so the sign test needs f + 2 bits.
    let neg = engine.ltz_vec_bounded(&u, cfg.frac_bits + 2); // 1 iff U < 0
    let minus_u: Vec<Share> = u.iter().map(|&x| -x).collect();
    let ua = engine.select_vec(&neg, &minus_u, &u);

    // ln(1 − 2·Ua); the argument lies in (0, 1]. Add one ulp so the series
    // never sees an exact zero.
    let one = engine.cfg.encode(1.0);
    let args: Vec<Share> = ua
        .iter()
        .map(|&a| (Share::from_public(party, one) - a.scale(Fp::new(2))).add_public(party, Fp::ONE))
        .collect();
    let lns = engine.ln_unit_vec(&args);

    // Us = 1 − 2·neg ∈ {−1, +1} (integer-valued share), X = µ − b·Us·ln(...).
    let us: Vec<Share> = neg
        .iter()
        .map(|&s| Share::from_public(party, Fp::ONE) - s.scale(Fp::new(2)))
        .collect();
    let signed_ln = engine.mul_vec(&us, &lns); // integer × fixed → scale f
    let scaled = engine.fixscale_vec(&signed_ln, b);
    let mu_enc = engine.cfg.encode(mu);
    scaled
        .into_iter()
        .map(|t| (-t).add_public(party, mu_enc))
        .collect()
}

/// Algorithm 6: select a secretly shared index from `scores` with the
/// exponential mechanism (`Pr[r] ∝ exp(ε·score_r / 2Δ)`).
///
/// Returns `⟨index⟩`. Uses the max-shift form of the softmax so the
/// normalizing sum stays in `[1, R]` for the secure reciprocal.
pub fn exponential_mechanism(
    engine: &mut MpcEngine<'_>,
    scores: &[Share],
    epsilon: f64,
    sensitivity: f64,
) -> Share {
    let r = scores.len();
    assert!(r >= 1, "need at least one candidate");
    let party = engine.party();

    // Scaled scores ε·s/(2Δ) (public scaling), then probabilities via the
    // shifted secure softmax (lines 1–2 of Algorithm 6, with the standard
    // max-shift so the sum is at least 1).
    let scale = epsilon / (2.0 * sensitivity);
    let scaled = engine.fixscale_vec(scores, scale);
    let probs = engine.softmax_rows(&scaled, r);

    // Cumulative distribution F_r (line 5–7; linear, no communication).
    let mut cums = Vec::with_capacity(r);
    let mut acc = Share::ZERO;
    for &p in &probs {
        acc = acc + p;
        cums.push(acc);
    }

    // Uniform ⟨U⟩ ∈ [0, 1) and the interval test (lines 8–14).
    let cfg = engine.cfg;
    let u = Share(engine.dealer_mut().random_unit_fraction(&cfg));
    // b_j = 1[U < F_j]; the selected index is Σ_j j·(b_j − b_{j−1}), which
    // is linear in the b_j: Σ_j j·b_j − Σ_j j·b_{j-1} = Σ_j (j)·b_j − (j+1)·b_j + (R−1)·b_{R−1}…
    // equivalently index = (R−1) − Σ_{j<R−1} b_j  …because b is a step
    // function: b_j = 1 exactly for j ≥ selected index.
    let diffs: Vec<Share> = cums.iter().map(|&f| u - f).collect();
    // U ∈ [0, 1) and F_j ∈ (0, 1 + ulp]: the interval tests compare
    // bounded uniform draws, so f + 3 bits suffice.
    let bs = engine.ltz_vec_bounded(&diffs, cfg.frac_bits + 3); // b_j = 1[U < F_j]
    let mut index = Share::from_public(party, Fp::new(r as u64 - 1));
    for b in bs.iter().take(r - 1) {
        index = index - *b;
    }
    index
}

#[cfg(test)]
mod tests {
    // End-to-end DP tests need multiple parties; they live in the crate's
    // integration tests (tests/engine.rs) where a party harness exists.
}
