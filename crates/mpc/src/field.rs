//! The MPC computation domain: `Z_p` with the Mersenne prime `p = 2^61 − 1`.
//!
//! 61 bits leave headroom for 40-bit signed fixed-point values plus an
//! 18-bit statistical mask (see [`crate::FixedConfig`]), while keeping
//! multiplication a single `u128` product with fold-reduction.

use pivot_transport::wire::{Wire, WireError};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// `p = 2^61 − 1`.
pub const MODULUS: u64 = (1 << 61) - 1;

/// A field element of `Z_{2^61 − 1}`, always kept reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp(u64);

impl Fp {
    pub const ZERO: Fp = Fp(0);
    pub const ONE: Fp = Fp(1);

    /// Reduce an arbitrary u64.
    pub fn new(v: u64) -> Fp {
        Fp(reduce64(v))
    }

    /// The canonical representative in `[0, p)`.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Lift a signed integer (negatives wrap to the upper half).
    pub fn from_i64(v: i64) -> Fp {
        if v >= 0 {
            Fp::new(v as u64)
        } else {
            -Fp::new(v.unsigned_abs())
        }
    }

    /// Interpret as signed: values above `p/2` are negative.
    pub fn to_i64(self) -> i64 {
        if self.0 > MODULUS / 2 {
            -((MODULUS - self.0) as i64)
        } else {
            self.0 as i64
        }
    }

    /// Multiplicative inverse via Fermat (`a^{p-2}`). Panics on zero.
    pub fn inv(self) -> Fp {
        assert!(self.0 != 0, "inverse of zero");
        self.pow(MODULUS - 2)
    }

    /// `self^e` by square-and-multiply.
    pub fn pow(self, mut e: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// `2^k` as a field element (`k < 61`).
    pub fn pow2(k: u32) -> Fp {
        assert!(k < 61, "2^{k} exceeds the field");
        Fp(1u64 << k)
    }

    /// Inverse of `2^k` (precomputable public constant).
    pub fn inv_pow2(k: u32) -> Fp {
        Fp::pow2(k).inv()
    }
}

/// Reduce a value `< 2^64` modulo `2^61 − 1`.
#[inline(always)]
fn reduce64(v: u64) -> u64 {
    let folded = (v & MODULUS) + (v >> 61);
    if folded >= MODULUS {
        folded - MODULUS
    } else {
        folded
    }
}

/// Reduce a 122-bit product modulo `2^61 − 1`.
#[inline(always)]
fn reduce128(v: u128) -> u64 {
    let lo = (v as u64) & MODULUS;
    let hi = (v >> 61) as u64; // ≤ 2^67, fold again
    reduce64(lo + (hi & MODULUS) + (hi >> 61))
}

impl Add for Fp {
    type Output = Fp;
    #[inline(always)]
    fn add(self, rhs: Fp) -> Fp {
        let s = self.0 + rhs.0; // < 2^62, safe
        Fp(if s >= MODULUS { s - MODULUS } else { s })
    }
}

impl AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline(always)]
    fn sub(self, rhs: Fp) -> Fp {
        Fp(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        })
    }
}

impl SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline(always)]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp(if self.0 == 0 { 0 } else { MODULUS - self.0 })
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Wire for Fp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let raw = u64::decode(buf)?;
        if raw >= MODULUS {
            return Err(WireError("field element out of range"));
        }
        Ok(Fp(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_boundaries() {
        assert_eq!(Fp::new(MODULUS).value(), 0);
        assert_eq!(Fp::new(MODULUS + 1).value(), 1);
        assert_eq!(Fp::new(u64::MAX).value(), u64::MAX % MODULUS);
    }

    #[test]
    fn add_sub_wraparound() {
        let a = Fp::new(MODULUS - 1);
        assert_eq!((a + Fp::ONE).value(), 0);
        assert_eq!((Fp::ZERO - Fp::ONE).value(), MODULUS - 1);
        assert_eq!((a + a).value(), MODULUS - 2);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let cases = [
            (0u64, 5u64),
            (1, MODULUS - 1),
            (MODULUS - 1, MODULUS - 1),
            (0x1234_5678_9abc, 0xfff_ffff_ffff),
            (MODULUS / 2, 3),
        ];
        for (a, b) in cases {
            let expect = ((a as u128 * b as u128) % MODULUS as u128) as u64;
            assert_eq!((Fp::new(a) * Fp::new(b)).value(), expect, "{a} * {b}");
        }
    }

    #[test]
    fn inverse_law() {
        for v in [1u64, 2, 3, 12345, MODULUS - 1, 1 << 40] {
            let a = Fp::new(v);
            assert_eq!(a * a.inv(), Fp::ONE, "inverse of {v}");
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [0i64, 1, -1, 42, -42, 1 << 39, -(1 << 39)] {
            assert_eq!(Fp::from_i64(v).to_i64(), v, "value {v}");
        }
    }

    #[test]
    fn pow2_and_inverse() {
        let x = Fp::new(0xabcdef);
        let scaled = x * Fp::pow2(16);
        assert_eq!(scaled * Fp::inv_pow2(16), x);
    }

    #[test]
    fn fermat() {
        assert_eq!(Fp::new(7).pow(MODULUS - 1), Fp::ONE);
    }

    #[test]
    fn wire_rejects_unreduced() {
        use pivot_transport::wire::Wire;
        let bad = (MODULUS + 5).to_wire();
        assert!(Fp::from_wire(&bad).is_err());
        let good = Fp::new(123).to_wire();
        assert_eq!(Fp::from_wire(&good).unwrap(), Fp::new(123));
    }
}
