//! Fixed-point parameters and public-side conversions.

use crate::field::Fp;

/// Fixed-point layout inside the field (paper: "fixed-point integer
/// representation", §8).
///
/// A real `x` is represented by the field element `round(x · 2^f)`, with
/// negatives in the upper half of `Z_p`. Magnitudes must stay below
/// `2^(k-1)`; masked openings add `kappa` statistical bits, and
/// `k + kappa + 1` must stay below the 61 field bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedConfig {
    /// Fractional bits `f`.
    pub frac_bits: u32,
    /// Total significant bits `k` (signed values in `(-2^(k-1), 2^(k-1))`).
    pub int_bits: u32,
    /// Statistical masking bits `κ`.
    pub kappa: u32,
}

impl Default for FixedConfig {
    /// `f = 20` keeps `1/n_l` representable for realistic node sizes,
    /// `k = 45` bounds every intermediate of the gain pipeline (see
    /// DESIGN.md §8), and `κ = 14` statistical masking bits exactly fill
    /// the 61-bit field (`45 + 14 + 1 = 60 < 61`).
    fn default() -> Self {
        FixedConfig {
            frac_bits: 20,
            int_bits: 45,
            kappa: 14,
        }
    }
}

impl FixedConfig {
    /// Validate the layout fits the field.
    pub fn assert_valid(&self) {
        assert!(self.frac_bits < self.int_bits, "need integer headroom");
        assert!(
            self.int_bits + self.kappa + 1 < 61,
            "fixed-point layout exceeds the 61-bit field"
        );
    }

    /// Encode a real as a field element.
    pub fn encode(&self, x: f64) -> Fp {
        assert!(x.is_finite(), "cannot encode NaN/inf");
        let scaled = (x * (1u64 << self.frac_bits) as f64).round();
        let bound = (1i64 << (self.int_bits - 1)) as f64;
        assert!(
            scaled.abs() < bound,
            "value {x} overflows the {}-bit fixed-point range",
            self.int_bits
        );
        Fp::from_i64(scaled as i64)
    }

    /// Decode a field element at scale level 1.
    pub fn decode(&self, v: Fp) -> f64 {
        v.to_i64() as f64 / (1u64 << self.frac_bits) as f64
    }

    /// Encode an integer without fractional scaling (e.g. sample counts).
    pub fn encode_int(&self, x: i64) -> Fp {
        Fp::from_i64(x)
    }

    /// The field constant `2^f` (one unit of scale).
    pub fn one(&self) -> Fp {
        Fp::pow2(self.frac_bits)
    }

    /// The public constant `inv(2^f)` used by exact truncation.
    pub fn inv_one(&self) -> Fp {
        Fp::inv_pow2(self.frac_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_valid() {
        FixedConfig::default().assert_valid();
    }

    #[test]
    fn encode_decode_round_trip() {
        let cfg = FixedConfig::default();
        for x in [0.0f64, 1.0, -1.0, 3.25, -7.75, 1000.125, -65536.5] {
            assert!((cfg.decode(cfg.encode(x)) - x).abs() < 1e-4, "{x}");
        }
    }

    #[test]
    fn near_boundary_values() {
        let cfg = FixedConfig::default();
        // Just inside the 40-bit signed boundary at scale 2^16: |x| < 2^23.
        let max = (1u64 << (cfg.int_bits - 1 - cfg.frac_bits)) as f64 - 1.0;
        assert!((cfg.decode(cfg.encode(max)) - max).abs() < 1e-3);
        assert!((cfg.decode(cfg.encode(-max)) + max).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_rejected() {
        let cfg = FixedConfig::default();
        cfg.encode(1e12);
    }

    #[test]
    #[should_panic(expected = "exceeds the 61-bit field")]
    fn invalid_layout_rejected() {
        FixedConfig {
            frac_bits: 20,
            int_bits: 50,
            kappa: 20,
        }
        .assert_valid();
    }
}
