//! Derived fixed-point arithmetic: reciprocal/division (Goldschmidt with
//! oblivious normalization), exponential and natural log approximations —
//! the "secure division and secure exponential" primitives the paper draws
//! from SPDZ (§2.2).

use super::MpcEngine;
use crate::field::Fp;
use crate::share::Share;

/// Goldschmidt iterations after normalizing into `[1/2, 1)`; 4 iterations
/// give ≈ `0.086^16 ≈ 2^-56` relative error, beyond the fixed-point ulp.
const GOLDSCHMIDT_ITERS: usize = 4;

impl MpcEngine<'_> {
    /// Fixed-point reciprocal of **positive** values `d ∈ [1, bound]`
    /// (value-wise; `d` is a fixed-point share at scale `2^f`).
    ///
    /// Strategy: obliviously normalize each `d` into `[1/2, 1)` by counting
    /// power-of-two thresholds with one batched comparison, run Goldschmidt
    /// with a linear initial estimate, then undo the normalization.
    pub fn recip_vec(&mut self, d: &[Share], bound: f64) -> Vec<Share> {
        let n = d.len();
        if n == 0 {
            return Vec::new();
        }
        assert!(bound >= 1.0, "bound must cover the input range");
        let s = (bound.log2().ceil() as u32).max(1);
        let f = self.cfg.frac_bits;
        assert!(
            s + 1 + f < self.cfg.int_bits,
            "reciprocal bound 2^{s} too large for the fixed-point layout"
        );
        let party = self.party();

        // b_j = 1[d < 2^j] for j = 1..=s, one batched comparison whose
        // width only needs to cover |d − 2^(f+j)| < 2^(f+s+1).
        let mut batch = Vec::with_capacity(n * s as usize);
        for &x in d {
            for j in 1..=s {
                batch.push(x.sub_public(party, Fp::pow2(f + j)));
            }
        }
        let bits = self.ltz_vec_bounded(&batch, f + s + 2);
        self.recip_tail(d, &bits, s)
    }

    /// Fixed-point reciprocal of **positive integer-valued** shares
    /// `d ∈ [1, bound]` at scale `2^0` (e.g. node sample counts): the
    /// normalization comparisons run in the *integer* domain
    /// (`1[d·2^f < 2^(f+j)] = 1[d < 2^j]`, width `⌈log₂ bound⌉ + 2`
    /// instead of `f + ⌈log₂ bound⌉ + 2`), then the Goldschmidt tail is
    /// shared with [`Self::recip_vec`]. Returns `⟨1/d⟩` at scale `2^f`.
    pub fn recip_vec_int(&mut self, d: &[Share], bound: f64) -> Vec<Share> {
        let n = d.len();
        if n == 0 {
            return Vec::new();
        }
        let f = self.cfg.frac_bits;
        let fixed: Vec<Share> = d.iter().map(|&x| x.scale(Fp::pow2(f))).collect();
        if self.legacy_comparisons() {
            // Full-width policy: take exactly the fixed-point comparison
            // path, reproducing the PR-3/PR-4 transcript bit for bit.
            return self.recip_vec(&fixed, bound);
        }
        assert!(bound >= 1.0, "bound must cover the input range");
        let s = (bound.log2().ceil() as u32).max(1);
        assert!(
            s + 1 + f < self.cfg.int_bits,
            "reciprocal bound 2^{s} too large for the fixed-point layout"
        );
        let party = self.party();
        let mut batch = Vec::with_capacity(n * s as usize);
        for &x in d {
            for j in 1..=s {
                batch.push(x.sub_public(party, Fp::pow2(j)));
            }
        }
        let bits = self.ltz_vec_bounded(&batch, s + 2);
        self.recip_tail(&fixed, &bits, s)
    }

    /// Shared Goldschmidt tail: normalization bits → oblivious scaling →
    /// iterated refinement → denormalization. `d` is fixed-point at scale
    /// `2^f`; `bits[i·s + j]` is `1[d_i < 2^(f+j+1)]`.
    fn recip_tail(&mut self, d: &[Share], bits: &[Share], s: u32) -> Vec<Share> {
        let n = d.len();
        let party = self.party();

        // v = 2^z = Π (1 + b_j), a log-depth product tree (integer share).
        let one = Share::from_public(party, Fp::ONE);
        let mut factors: Vec<Vec<Share>> = (0..n)
            .map(|i| {
                (0..s as usize)
                    .map(|j| one + bits[i * s as usize + j])
                    .collect()
            })
            .collect();
        while factors[0].len() > 1 {
            let half = factors[0].len() / 2;
            let odd = factors[0].len() % 2 == 1;
            let mut lhs = Vec::with_capacity(n * half);
            let mut rhs = Vec::with_capacity(n * half);
            for row in &factors {
                for i in 0..half {
                    lhs.push(row[2 * i]);
                    rhs.push(row[2 * i + 1]);
                }
            }
            let prods = self.mul_vec(&lhs, &rhs);
            for (r, row) in factors.iter_mut().enumerate() {
                let mut next: Vec<Share> = prods[r * half..(r + 1) * half].to_vec();
                if odd {
                    next.push(*row.last().expect("odd element"));
                }
                *row = next;
            }
        }
        let v: Vec<Share> = factors.iter().map(|row| row[0]).collect();

        // d_norm = d · 2^z / 2^(s+1) ∈ [1/2, 1).
        let dv = self.mul_vec(d, &v);
        let d_norm = self.trunc_vec(&dv, s + 1);

        // w0 = 2.9142 − 2·d_norm (standard linear estimate on [1/2, 1)).
        let c_init = self.cfg.encode(2.9142);
        let mut w: Vec<Share> = d_norm
            .iter()
            .map(|&dn| Share::from_public(party, c_init) - dn.scale(Fp::new(2)))
            .collect();
        // w ← w·(2 − d_norm·w), quadratic convergence.
        let two = self.cfg.encode(2.0);
        for _ in 0..GOLDSCHMIDT_ITERS {
            let dw = self.fixmul_vec(&d_norm, &w);
            let corr: Vec<Share> = dw
                .iter()
                .map(|&x| Share::from_public(party, two) - x)
                .collect();
            w = self.fixmul_vec(&w, &corr);
        }

        // 1/d = (1/d_norm) · 2^z / 2^(s+1) = trunc(w · v, s+1).
        let wv = self.mul_vec(&w, &v);
        self.trunc_vec(&wv, s + 1)
    }

    /// Fixed-point division `a / b` for positive `b ∈ [1, bound]`.
    pub fn div_vec(&mut self, a: &[Share], b: &[Share], bound: f64) -> Vec<Share> {
        let recip = self.recip_vec(b, bound);
        self.fixmul_vec(a, &recip)
    }

    /// Secure exponential via the compound limit
    /// `e^x ≈ (1 + x/2^8)^(2^8)`, with inputs clamped to `[-8, 8]`.
    ///
    /// The clamp bound is a field-capacity constraint: the final squaring
    /// holds `≈ e^|x| · 2^2f` before truncation, and `e^8 · 2^40 ≈ 2^51`
    /// must stay well below `p ≈ 2^61`. Relative error is ≤ `e^(x²/512)`
    /// (≈13% at the clamp edge, <1% for |x| ≤ 2) — adequate for the secure
    /// softmax of §7.2 (probabilities, not gradients, are consumed).
    pub fn exp_vec(&mut self, x: &[Share]) -> Vec<Share> {
        self.exp_vec_impl(x, self.cfg.int_bits)
    }

    /// [`Self::exp_vec`] with a caller-proven input bound `|x| ≤ bound`
    /// (real value): the clamp comparisons run at the width the bound
    /// justifies instead of the full `int_bits`, cutting their bit cost.
    /// Results are identical — the clamp is exact at any proven width.
    pub fn exp_vec_clamped(&mut self, x: &[Share], bound: f64) -> Vec<Share> {
        let k = self.clamp_width(bound.abs() + 8.0);
        self.exp_vec_impl(x, k)
    }

    /// Comparison width justified by a real-valued magnitude bound on the
    /// clamp differences, never wider than the engine's default.
    fn clamp_width(&self, magnitude: f64) -> u32 {
        let mag = (magnitude.abs() * (1u64 << self.cfg.frac_bits) as f64).ceil() as u64;
        super::width_for_magnitude(mag).min(self.cfg.int_bits)
    }

    fn exp_vec_impl(&mut self, x: &[Share], k: u32) -> Vec<Share> {
        let n = x.len();
        if n == 0 {
            return Vec::new();
        }
        let party = self.party();
        // Clamp to [-8, 8] with two batched comparisons folded into one.
        let hi = self.constant_f64(8.0);
        let lo = self.constant_f64(-8.0);
        let mut batch = Vec::with_capacity(2 * n);
        for &v in x {
            batch.push(hi - v); // 1[hi < v] → too big
        }
        for &v in x {
            batch.push(v - lo); // 1[v < lo] → too small
        }
        let signs = self.ltz_vec_bounded(&batch, k);
        let mut conds = Vec::with_capacity(2 * n);
        let mut thens = Vec::with_capacity(2 * n);
        let mut elses = Vec::with_capacity(2 * n);
        for i in 0..n {
            conds.push(signs[i]);
            thens.push(hi);
            elses.push(x[i]);
        }
        let clamped_hi = self.select_vec(&conds, &thens, &elses);
        conds.clear();
        thens.clear();
        elses.clear();
        for (i, item) in clamped_hi.iter().enumerate() {
            conds.push(signs[n + i]);
            thens.push(lo);
            elses.push(*item);
        }
        let clamped = self.select_vec(&conds, &thens, &elses);

        // base = 1 + x/256, then square 8 times.
        let t = 8u32;
        let shifted = self.trunc_vec(&clamped, t);
        let one = self.cfg.encode(1.0);
        let mut acc: Vec<Share> = shifted.iter().map(|&v| v.add_public(party, one)).collect();
        for _ in 0..t {
            acc = self.fixmul_vec(&acc, &acc);
        }
        acc
    }

    /// Secure natural log of `y ∈ (0, 1]` via the Mercator series
    /// `ln(1−z) = −Σ z^i/i` (degree 31, Horner). Accuracy degrades as
    /// `y → 0` (`z → 1`); used by the DP Laplace sampler where the tail
    /// shape, not exactness, matters (§9.2).
    pub fn ln_unit_vec(&mut self, y: &[Share]) -> Vec<Share> {
        const TERMS: usize = 31;
        let n = y.len();
        if n == 0 {
            return Vec::new();
        }
        let party = self.party();
        let one = self.cfg.encode(1.0);
        let z: Vec<Share> = y
            .iter()
            .map(|&v| Share::from_public(party, one) - v)
            .collect();
        // Horner: ln(1−z) = −z·(1 + z·(1/2 + z·(1/3 + …))).
        let mut acc: Vec<Share> = (0..n)
            .map(|_| self.constant_f64(1.0 / TERMS as f64))
            .collect();
        for i in (1..TERMS).rev() {
            let zi = self.fixmul_vec(&acc, &z);
            let coeff = self.cfg.encode(1.0 / i as f64);
            acc = zi.into_iter().map(|v| v.add_public(party, coeff)).collect();
        }
        let total = self.fixmul_vec(&acc, &z);
        total.into_iter().map(|v| -v).collect()
    }

    /// Secure softmax over a batch of `rows × classes` logits (row-major):
    /// the standard max-shift, exponential, and normalization — all secret
    /// shared (§7.2's "secure softmax").
    pub fn softmax_rows(&mut self, logits: &[Share], classes: usize) -> Vec<Share> {
        self.softmax_rows_impl(logits, classes, None)
    }

    /// [`Self::softmax_rows`] with a caller-proven logit bound
    /// `|logit| ≤ bound` (real value): the row-max tournament compares at
    /// the width a `2·bound` difference justifies, and the max-shifted
    /// exponentials clamp through [`Self::exp_vec_clamped`]. Identical
    /// probabilities, narrower comparisons.
    pub fn softmax_rows_clamped(
        &mut self,
        logits: &[Share],
        classes: usize,
        bound: f64,
    ) -> Vec<Share> {
        self.softmax_rows_impl(logits, classes, Some(bound.abs()))
    }

    fn softmax_rows_impl(
        &mut self,
        logits: &[Share],
        classes: usize,
        bound: Option<f64>,
    ) -> Vec<Share> {
        assert!(classes >= 1 && logits.len() % classes == 0);
        let rows = logits.len() / classes;
        if rows == 0 {
            return Vec::new();
        }
        // Row-wise max via tournament over columns (batched across rows).
        let mut cur: Vec<Vec<Share>> = (0..rows)
            .map(|r| logits[r * classes..(r + 1) * classes].to_vec())
            .collect();
        while cur[0].len() > 1 {
            let half = cur[0].len() / 2;
            let odd = cur[0].len() % 2 == 1;
            let mut a = Vec::with_capacity(rows * half);
            let mut b = Vec::with_capacity(rows * half);
            for row in &cur {
                for i in 0..half {
                    a.push(row[2 * i]);
                    b.push(row[2 * i + 1]);
                }
            }
            let sel = match bound {
                // Tournament operands are logits: |a − b| ≤ 2·bound.
                Some(bd) => {
                    let k = self.clamp_width(2.0 * bd);
                    self.lt_vec_bounded(&b, &a, k)
                }
                None => self.lt_vec(&b, &a),
            };
            let picked = self.select_vec(&sel, &a, &b);
            for (r, row) in cur.iter_mut().enumerate() {
                let mut next: Vec<Share> = picked[r * half..(r + 1) * half].to_vec();
                if odd {
                    next.push(*row.last().expect("odd element"));
                }
                *row = next;
            }
        }
        let maxes: Vec<Share> = cur.iter().map(|row| row[0]).collect();

        // Shift, exponentiate, normalize.
        let shifted: Vec<Share> = (0..rows)
            .flat_map(|r| {
                let m = maxes[r];
                logits[r * classes..(r + 1) * classes]
                    .iter()
                    .map(move |&v| v - m)
                    .collect::<Vec<_>>()
            })
            .collect();
        let exps = match bound {
            // After the max shift the inputs lie in [−2·bound, 0].
            Some(bd) => self.exp_vec_clamped(&shifted, 2.0 * bd),
            None => self.exp_vec(&shifted),
        };
        let sums: Vec<Share> = (0..rows)
            .map(|r| {
                exps[r * classes..(r + 1) * classes]
                    .iter()
                    .fold(Share::ZERO, |acc, &x| acc + x)
            })
            .collect();
        // Row sums lie in [≈1, classes] (the max contributes e^0 = 1).
        let recips = self.recip_vec(&sums, classes as f64 + 1.0);
        let mut out = Vec::with_capacity(rows * classes);
        let mut lhs = Vec::with_capacity(rows * classes);
        let mut rhs = Vec::with_capacity(rows * classes);
        for r in 0..rows {
            for c in 0..classes {
                lhs.push(exps[r * classes + c]);
                rhs.push(recips[r]);
            }
        }
        let scaled = self.fixmul_vec(&lhs, &rhs);
        out.extend(scaled);
        out
    }
}
