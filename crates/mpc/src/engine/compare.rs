//! Comparison protocols: exact `mod 2^t`, sign extraction (LTZ), selection,
//! equality against public constants, and secure argmax — the machinery
//! behind the paper's "secure comparison" (`Cc`) operations.
//!
//! The construction is Catrina–de Hoogh style: open a statistically masked
//! value, compare the public low bits against dealer-supplied shared bits
//! (`BitLT`), and correct the wrap. Everything is vectorized: one `ltz_vec`
//! call performs the whole batch in `O(t)` rounds regardless of batch size.

use super::MpcEngine;
use crate::field::Fp;
use crate::share::Share;

impl MpcEngine<'_> {
    /// Exact `y mod 2^t` for shared `y` guaranteed in `[0, 2^int_bits)`.
    pub fn mod2m_vec(&mut self, y: &[Share], t: u32) -> Vec<Share> {
        let n = y.len();
        if n == 0 {
            return Vec::new();
        }
        let party = self.party();
        let cfg = self.cfg;
        let masks: Vec<_> = (0..n)
            .map(|_| self.dealer_mut().masked_bits(t, &cfg))
            .collect();
        let masked: Vec<Share> = y.iter().zip(&masks).map(|(&x, m)| x + Share(m.r)).collect();
        let opened = self.open_vec(&masked);

        // Public low parts and the BitLT against the shared bits of r_low.
        let low_mask = (1u64 << t) - 1;
        let c_lows: Vec<u64> = opened.iter().map(|c| c.value() & low_mask).collect();
        let bit_rows: Vec<&[Fp]> = masks.iter().map(|m| m.bits.as_slice()).collect();
        let wraps = self.bitlt_pub(&c_lows, &bit_rows, t);

        c_lows
            .iter()
            .zip(&masks)
            .zip(wraps)
            .map(|((&c_low, m), wrap)| {
                // r_low as a share: Σ bits_i · 2^i (local).
                let mut r_low = Share::ZERO;
                for (i, &b) in m.bits.iter().enumerate() {
                    r_low = r_low + Share(b).scale(Fp::pow2(i as u32));
                }
                // y mod 2^t = c_low − r_low + wrap·2^t.
                (Share::from_public(party, Fp::new(c_low)) - r_low) + wrap.scale(Fp::pow2(t))
            })
            .collect()
    }

    /// Batched `BitLT`: for each row, the shared bit `1[a < b]` where `a` is
    /// public (`t` bits) and `b` is given by shared bits (LSB first).
    ///
    /// `O(t)` rounds for the entire batch.
    fn bitlt_pub(&mut self, pub_vals: &[u64], shared_bits: &[&[Fp]], t: u32) -> Vec<Share> {
        let n = pub_vals.len();
        let t = t as usize;
        // d_i = a_i XOR b_i, linear because a_i is public.
        // Row-major layout: d[row][bit].
        let mut d = vec![vec![Share::ZERO; t]; n];
        for (row, (&a, bits)) in pub_vals.iter().zip(shared_bits).enumerate() {
            assert_eq!(bits.len(), t);
            for i in 0..t {
                let b = Share(bits[i]);
                d[row][i] = if (a >> i) & 1 == 1 {
                    // 1 ⊕ b = 1 − b
                    Share::from_public(self.party(), Fp::ONE) - b
                } else {
                    b
                };
            }
        }
        // Prefix OR from the MSB down: p_i = p_{i+1} ∨ d_i.
        // p[row][i] = OR of d[row][i..t); computed in t−1 batched rounds.
        let mut p = vec![vec![Share::ZERO; t]; n];
        for row in 0..n {
            p[row][t - 1] = d[row][t - 1];
        }
        for i in (0..t - 1).rev() {
            // x ∨ y = x + y − x·y, batched across rows.
            let xs: Vec<Share> = (0..n).map(|r| p[r][i + 1]).collect();
            let ys: Vec<Share> = (0..n).map(|r| d[r][i]).collect();
            let prods = self.mul_vec(&xs, &ys);
            for row in 0..n {
                p[row][i] = xs[row] + ys[row] - prods[row];
            }
        }
        // g_i = p_i − p_{i+1} marks the most significant differing bit;
        // result = Σ g_i·b_i (at that bit a≠b, so b_i = 1 ⟺ a < b).
        let mut gs = Vec::with_capacity(n * t);
        let mut bs = Vec::with_capacity(n * t);
        for (row, bits) in shared_bits.iter().enumerate() {
            for i in 0..t {
                let g = if i == t - 1 {
                    p[row][i]
                } else {
                    p[row][i] - p[row][i + 1]
                };
                gs.push(g);
                bs.push(Share(bits[i]));
            }
        }
        let prods = self.mul_vec(&gs, &bs);
        (0..n)
            .map(|row| {
                prods[row * t..(row + 1) * t]
                    .iter()
                    .fold(Share::ZERO, |acc, &x| acc + x)
            })
            .collect()
    }

    /// Exact sign test: `1[x < 0]` for signed `x` with `|x| < 2^(k−1)`.
    /// `O(int_bits)` rounds for the whole batch.
    pub fn ltz_vec(&mut self, x: &[Share]) -> Vec<Share> {
        let n = x.len();
        if n == 0 {
            return Vec::new();
        }
        self.bump_comparisons(n as u64);
        let k = self.cfg.int_bits;
        let party = self.party();
        // y = x + 2^(k−1) ∈ [0, 2^k); sign(x) = 1 − bit_{k−1}(y).
        let y: Vec<Share> = x
            .iter()
            .map(|&v| v.add_public(party, Fp::pow2(k - 1)))
            .collect();
        let low = self.mod2m_vec(&y, k - 1);
        let inv = Fp::inv_pow2(k - 1);
        y.iter()
            .zip(low)
            .map(|(&yv, l)| {
                let high_bit = (yv - l).scale(inv); // exact division by 2^(k−1)
                Share::from_public(party, Fp::ONE) - high_bit
            })
            .collect()
    }

    /// `1[a < b]` element-wise.
    pub fn lt_vec(&mut self, a: &[Share], b: &[Share]) -> Vec<Share> {
        let diff: Vec<Share> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
        self.ltz_vec(&diff)
    }

    /// Oblivious select: `cond·a + (1−cond)·b` element-wise (`cond ∈ {0,1}`).
    /// One multiplication round.
    pub fn select_vec(&mut self, cond: &[Share], a: &[Share], b: &[Share]) -> Vec<Share> {
        assert_eq!(cond.len(), a.len());
        assert_eq!(a.len(), b.len());
        let diff: Vec<Share> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
        let gated = self.mul_vec(cond, &diff);
        gated.into_iter().zip(b).map(|(g, &y)| y + g).collect()
    }

    /// One-hot expansion of a shared index over `0..domain`:
    /// `eq_j = 1 − 1[idx < j] − 1[j < idx]` (linear after one batched LTZ).
    pub fn onehot_vec(&mut self, idx: Share, domain: usize) -> Vec<Share> {
        let party = self.party();
        // Concatenate idx−j and j−idx into one LTZ batch.
        let mut batch = Vec::with_capacity(2 * domain);
        for j in 0..domain {
            batch.push(idx.sub_public(party, Fp::new(j as u64)));
        }
        for j in 0..domain {
            batch.push(Share::from_public(party, Fp::new(j as u64)) - idx);
        }
        let signs = self.ltz_vec(&batch);
        (0..domain)
            .map(|j| Share::from_public(party, Fp::ONE) - signs[j] - signs[domain + j])
            .collect()
    }

    /// Secure argmax by pairwise tournament: returns `(⟨index⟩, ⟨max⟩)`.
    /// `O(log n)` comparison batches.
    pub fn argmax(&mut self, vals: &[Share]) -> (Share, Share) {
        assert!(!vals.is_empty(), "argmax of empty vector");
        let party = self.party();
        let mut idx: Vec<Share> = (0..vals.len())
            .map(|j| Share::from_public(party, Fp::new(j as u64)))
            .collect();
        let mut cur: Vec<Share> = vals.to_vec();
        while cur.len() > 1 {
            let pairs = cur.len() / 2;
            let a_vals: Vec<Share> = (0..pairs).map(|i| cur[2 * i]).collect();
            let b_vals: Vec<Share> = (0..pairs).map(|i| cur[2 * i + 1]).collect();
            // sel = 1[a < b] → winner is b; ties keep the earlier element
            // `a`, matching the plaintext argmax and the sequential scan.
            let sel = self.lt_vec(&a_vals, &b_vals);
            // Batch value- and index-selection into one multiplication round.
            let mut conds = Vec::with_capacity(2 * pairs);
            let mut xs = Vec::with_capacity(2 * pairs);
            let mut ys = Vec::with_capacity(2 * pairs);
            for i in 0..pairs {
                conds.push(sel[i]);
                xs.push(b_vals[i]);
                ys.push(a_vals[i]);
            }
            for i in 0..pairs {
                conds.push(sel[i]);
                xs.push(idx[2 * i + 1]);
                ys.push(idx[2 * i]);
            }
            let chosen = self.select_vec(&conds, &xs, &ys);
            let mut next_vals: Vec<Share> = chosen[..pairs].to_vec();
            let mut next_idx: Vec<Share> = chosen[pairs..].to_vec();
            if cur.len() % 2 == 1 {
                next_vals.push(*cur.last().expect("odd leftover"));
                next_idx.push(*idx.last().expect("odd leftover"));
            }
            cur = next_vals;
            idx = next_idx;
        }
        (idx[0], cur[0])
    }

    /// Paper-faithful sequential secure maximum (§4.1): scans splits one by
    /// one, updating `⟨gain_max⟩` and the identifier with secure selects.
    /// `O(n)` comparison rounds — kept for the ablation benchmarks.
    pub fn argmax_sequential(&mut self, vals: &[Share]) -> (Share, Share) {
        assert!(!vals.is_empty(), "argmax of empty vector");
        let party = self.party();
        // Initialize with ⟨−1⟩ like Algorithm 3's description.
        let mut best_val = Share::from_public(party, Fp::from_i64(-1));
        let mut best_idx = Share::from_public(party, Fp::from_i64(-1));
        for (j, &v) in vals.iter().enumerate() {
            let sign = self.lt_vec(&[best_val], &[v])[0]; // 1 if v is better
            let j_share = Share::from_public(party, Fp::new(j as u64));
            let chosen = self.select_vec(&[sign, sign], &[v, j_share], &[best_val, best_idx]);
            best_val = chosen[0];
            best_idx = chosen[1];
        }
        (best_idx, best_val)
    }

    /// Secure maximum value only.
    pub fn max_vec(&mut self, vals: &[Share]) -> Share {
        self.argmax(vals).1
    }
}
