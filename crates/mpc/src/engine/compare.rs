//! Comparison protocols: exact `mod 2^t`, sign extraction (LTZ), selection,
//! equality against public constants, and secure argmax — the machinery
//! behind the paper's "secure comparison" (`Cc`) operations.
//!
//! The construction is Catrina–de Hoogh style: open a statistically masked
//! value, compare the public low bits against dealer-supplied shared bits
//! (`BitLT`), and correct the wrap. Everything is vectorized: one `ltz_vec`
//! call performs the whole batch in a bounded number of rounds regardless
//! of batch size.
//!
//! **Range-aware widths.** Every protocol has a `_bounded` variant taking
//! the caller's *proven* value range `k` (signed values of magnitude below
//! `2^(k−1)`), so a comparison pays `O(k)` masked bits and Beaver openings
//! instead of the global `O(int_bits)`. The policy knob
//! ([`super::CompareBits`]) resolves requested widths: `Full` pins every
//! width to `int_bits` *and* keeps the legacy linear BitLT, reproducing
//! the PR-3/PR-4 transcript bit for bit; `Auto`/`Floor` run the bounded
//! widths through the log-depth BitLT ladder below.
//!
//! **Log-depth BitLT.** The bounded path replaces the linear MSB-down
//! prefix-OR (`t − 1` rounds) with a Brent–Kung style ladder:
//! `2⌈log₂ t⌉ − 1` multiplication rounds and ≈`2t` OR gates. The final
//! "select the shared bit at the most significant differing position" sum
//! is free on this path: at that position `b_i = ¬a_i` with `a` public, so
//! `1[a < b] = Σ_{i : a_i = 0} g_i` is a local linear combination.

use super::MpcEngine;
use crate::field::Fp;
use crate::share::Share;

/// Tournament→all-pairs switchover for [`MpcEngine::argmax_many_bounded`]:
/// rows at or below this many candidates finish via the all-pairs product.
/// The lane count grows as `L(L−1)/2`, so the threshold keeps the batch
/// width modest while replacing ~`log₂ L` full comparison units (each
/// costing a masked opening plus a prefix-OR ladder) with one batch and a
/// short multiplication tree.
const ALL_PAIRS_TAIL: usize = 24;

impl MpcEngine<'_> {
    /// Exact `y mod 2^t` for shared `y` guaranteed in `[0, 2^int_bits)`.
    pub fn mod2m_vec(&mut self, y: &[Share], t: u32) -> Vec<Share> {
        self.mod2m_vec_bounded(y, t, self.cfg.int_bits)
    }

    /// Exact `y mod 2^t` for shared `y` guaranteed in `[0, 2^k)`: masks
    /// (and their `k + κ − t` statistical headroom) are sized to the
    /// proven range instead of the global `int_bits`.
    pub fn mod2m_vec_bounded(&mut self, y: &[Share], t: u32, k: u32) -> Vec<Share> {
        let n = y.len();
        if n == 0 {
            return Vec::new();
        }
        let k = self.effective_bits(k.max(t));
        let was = self.enter_comparison();
        let party = self.party();
        let cfg = self.cfg;
        let masks = self.dealer_mut().masked_rows(t, k, n, &cfg);
        self.bump_cmp_masked(n as u64, t);
        let masked: Vec<Share> = y.iter().zip(&masks).map(|(&x, m)| x + Share(m.r)).collect();
        let opened = self.open_vec(&masked);

        // Public low parts and the BitLT against the shared bits of r_low.
        let low_mask = (1u64 << t) - 1;
        let c_lows: Vec<u64> = opened.iter().map(|c| c.value() & low_mask).collect();
        let bit_rows: Vec<&[Fp]> = masks.iter().map(|m| m.bits.as_slice()).collect();
        let wraps = if self.legacy_comparisons() {
            self.bitlt_pub(&c_lows, &bit_rows, t)
        } else {
            self.bitlt_pub_log(&c_lows, &bit_rows, t)
        };

        let out = c_lows
            .iter()
            .zip(&masks)
            .zip(wraps)
            .map(|((&c_low, m), wrap)| {
                // r_low as a share: Σ bits_i · 2^i (local).
                let mut r_low = Share::ZERO;
                for (i, &b) in m.bits.iter().enumerate() {
                    r_low = r_low + Share(b).scale(Fp::pow2(i as u32));
                }
                // y mod 2^t = c_low − r_low + wrap·2^t.
                (Share::from_public(party, Fp::new(c_low)) - r_low) + wrap.scale(Fp::pow2(t))
            })
            .collect();
        self.exit_comparison(was);
        out
    }

    /// Batched `BitLT`: for each row, the shared bit `1[a < b]` where `a` is
    /// public (`t` bits) and `b` is given by shared bits (LSB first).
    ///
    /// Legacy linear ladder: `O(t)` rounds for the entire batch. Kept
    /// verbatim for `CompareBits::Full` transcript parity.
    fn bitlt_pub(&mut self, pub_vals: &[u64], shared_bits: &[&[Fp]], t: u32) -> Vec<Share> {
        let n = pub_vals.len();
        let t = t as usize;
        // d_i = a_i XOR b_i, linear because a_i is public.
        // Row-major layout: d[row][bit].
        let mut d = vec![vec![Share::ZERO; t]; n];
        for (row, (&a, bits)) in pub_vals.iter().zip(shared_bits).enumerate() {
            assert_eq!(bits.len(), t);
            for i in 0..t {
                let b = Share(bits[i]);
                d[row][i] = if (a >> i) & 1 == 1 {
                    // 1 ⊕ b = 1 − b
                    Share::from_public(self.party(), Fp::ONE) - b
                } else {
                    b
                };
            }
        }
        // Prefix OR from the MSB down: p_i = p_{i+1} ∨ d_i.
        // p[row][i] = OR of d[row][i..t); computed in t−1 batched rounds.
        let mut p = vec![vec![Share::ZERO; t]; n];
        for row in 0..n {
            p[row][t - 1] = d[row][t - 1];
        }
        for i in (0..t - 1).rev() {
            // x ∨ y = x + y − x·y, batched across rows.
            let xs: Vec<Share> = (0..n).map(|r| p[r][i + 1]).collect();
            let ys: Vec<Share> = (0..n).map(|r| d[r][i]).collect();
            let prods = self.mul_vec(&xs, &ys);
            for row in 0..n {
                p[row][i] = xs[row] + ys[row] - prods[row];
            }
        }
        // g_i = p_i − p_{i+1} marks the most significant differing bit;
        // result = Σ g_i·b_i (at that bit a≠b, so b_i = 1 ⟺ a < b).
        let mut gs = Vec::with_capacity(n * t);
        let mut bs = Vec::with_capacity(n * t);
        for (row, bits) in shared_bits.iter().enumerate() {
            for i in 0..t {
                let g = if i == t - 1 {
                    p[row][i]
                } else {
                    p[row][i] - p[row][i + 1]
                };
                gs.push(g);
                bs.push(Share(bits[i]));
            }
        }
        let prods = self.mul_vec(&gs, &bs);
        (0..n)
            .map(|row| {
                prods[row * t..(row + 1) * t]
                    .iter()
                    .fold(Share::ZERO, |acc, &x| acc + x)
            })
            .collect()
    }

    /// Log-depth `BitLT`: same contract as [`Self::bitlt_pub`], but the
    /// suffix ORs come from a Brent–Kung ladder (`2⌈log₂ t⌉ − 1` rounds,
    /// ≈`2t` gates) and the final bit-select is a local sum over the
    /// public zero positions of `a` — no closing multiplication round.
    fn bitlt_pub_log(&mut self, pub_vals: &[u64], shared_bits: &[&[Fp]], t: u32) -> Vec<Share> {
        let n = pub_vals.len();
        let t = t as usize;
        let party = self.party();
        if t == 0 {
            return vec![Share::ZERO; n];
        }
        // d_i = a_i XOR b_i, reversed so a prefix scan yields suffix ORs.
        let rows: Vec<Vec<Share>> = pub_vals
            .iter()
            .zip(shared_bits)
            .map(|(&a, bits)| {
                assert_eq!(bits.len(), t);
                (0..t)
                    .rev()
                    .map(|i| {
                        let b = Share(bits[i]);
                        if (a >> i) & 1 == 1 {
                            Share::from_public(party, Fp::ONE) - b
                        } else {
                            b
                        }
                    })
                    .collect()
            })
            .collect();
        let pref = self.prefix_or_rows(rows);
        // p_i = OR of d[i..t) = pref[t−1−i]; g_i = p_i − p_{i+1} (p_t = 0)
        // marks the most significant differing bit. There b_i = ¬a_i, so
        // 1[a < b] = Σ_{i : a_i = 0} g_i — linear, a is public.
        pub_vals
            .iter()
            .zip(&pref)
            .map(|(&a, row)| {
                let mut acc = Share::ZERO;
                for i in 0..t {
                    if (a >> i) & 1 == 0 {
                        let p_i = row[t - 1 - i];
                        let p_next = if i == t - 1 {
                            Share::ZERO
                        } else {
                            row[t - 2 - i]
                        };
                        acc = acc + (p_i - p_next);
                    }
                }
                acc
            })
            .collect()
    }

    /// Batched inclusive prefix-OR over equal-length bit-share rows:
    /// Brent–Kung recursion, one `mul_vec` for the pair compression and
    /// one for the expansion per level (`2⌈log₂ w⌉ − 1` rounds total).
    fn prefix_or_rows(&mut self, rows: Vec<Vec<Share>>) -> Vec<Vec<Share>> {
        let width = rows.first().map_or(0, Vec::len);
        if width <= 1 {
            return rows;
        }
        let n = rows.len();
        let half = width / 2;
        let odd = width % 2 == 1;
        // Compress neighbouring pairs: b_i = a_{2i} ∨ a_{2i+1}.
        let mut xs = Vec::with_capacity(n * half);
        let mut ys = Vec::with_capacity(n * half);
        for row in &rows {
            for i in 0..half {
                xs.push(row[2 * i]);
                ys.push(row[2 * i + 1]);
            }
        }
        let ors = self.or_pairs(&xs, &ys);
        let compressed: Vec<Vec<Share>> = (0..n)
            .map(|r| {
                let mut row: Vec<Share> = ors[r * half..(r + 1) * half].to_vec();
                if odd {
                    row.push(rows[r][width - 1]);
                }
                row
            })
            .collect();
        let scanned = self.prefix_or_rows(compressed);
        // Expand: out[2i+1] = scan[i]; out[0] = a[0];
        // out[2i] (i ≥ 1) = scan[i−1] ∨ a[2i].
        let evens: Vec<usize> = (1..).map(|i| 2 * i).take_while(|&j| j < width).collect();
        let fixed = if evens.is_empty() {
            Vec::new()
        } else {
            let mut xs = Vec::with_capacity(n * evens.len());
            let mut ys = Vec::with_capacity(n * evens.len());
            for (r, row) in rows.iter().enumerate() {
                for &j in &evens {
                    xs.push(scanned[r][j / 2 - 1]);
                    ys.push(row[j]);
                }
            }
            self.or_pairs(&xs, &ys)
        };
        (0..n)
            .map(|r| {
                let mut out = vec![Share::ZERO; width];
                out[0] = rows[r][0];
                for i in 0..width / 2 {
                    if 2 * i + 1 < width {
                        out[2 * i + 1] = scanned[r][i];
                    }
                }
                for (slot, &j) in evens.iter().enumerate() {
                    out[j] = fixed[r * evens.len() + slot];
                }
                out
            })
            .collect()
    }

    /// Element-wise OR of bit shares: `x ∨ y = x + y − x·y` (one round).
    fn or_pairs(&mut self, x: &[Share], y: &[Share]) -> Vec<Share> {
        let prods = self.mul_vec(x, y);
        x.iter()
            .zip(y)
            .zip(prods)
            .map(|((&a, &b), p)| a + b - p)
            .collect()
    }

    /// Exact sign test: `1[x < 0]` for signed `x` with `|x| < 2^(int_bits−1)`.
    pub fn ltz_vec(&mut self, x: &[Share]) -> Vec<Share> {
        self.ltz_vec_bounded(x, self.cfg.int_bits)
    }

    /// Exact sign test with a proven range: `1[x < 0]` for signed `x` with
    /// `|x| < 2^(k−1)`. Pays `O(k)` bits instead of `O(int_bits)` under
    /// the bounded width policies; `O(log k)` rounds for the whole batch.
    pub fn ltz_vec_bounded(&mut self, x: &[Share], k: u32) -> Vec<Share> {
        let n = x.len();
        if n == 0 {
            return Vec::new();
        }
        self.bump_comparisons(n as u64);
        let k = self.effective_bits(k);
        self.bump_cmp_width(k, n as u64);
        let party = self.party();
        // y = x + 2^(k−1) ∈ [0, 2^k); sign(x) = 1 − bit_{k−1}(y).
        let y: Vec<Share> = x
            .iter()
            .map(|&v| v.add_public(party, Fp::pow2(k - 1)))
            .collect();
        let low = self.mod2m_vec_bounded(&y, k - 1, k);
        let inv = Fp::inv_pow2(k - 1);
        y.iter()
            .zip(low)
            .map(|(&yv, l)| {
                let high_bit = (yv - l).scale(inv); // exact division by 2^(k−1)
                Share::from_public(party, Fp::ONE) - high_bit
            })
            .collect()
    }

    /// Two-sided sign test: `(1[u < 0], 1[−u < 0])` element-wise for
    /// `|u| < 2^(k−1)`, sharing one masked opening and one masked-bit row
    /// per element between the two sides.
    ///
    /// With `y = u + 2^(k−1)` and `y' = 2^k − y = −u + 2^(k−1)`, the same
    /// opened `c = y + r` serves both: `y' = (2^k − c) + r`, so side B's
    /// low part is an *addition* of public and masked low bits whose carry
    /// is one more BitLT row over the *same* shared bits. This halves the
    /// masked-bit and opening cost of every symmetric comparison pair
    /// (one-hot expansion, interval tests).
    pub fn ltz_pair_vec(&mut self, u: &[Share], k: u32) -> (Vec<Share>, Vec<Share>) {
        let n = u.len();
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        if self.legacy_comparisons() {
            // Transcript-parity path: one concatenated 2n LTZ batch,
            // exactly the shape the call sites used pre-bounding.
            let mut batch = u.to_vec();
            batch.extend(u.iter().map(|&v| -v));
            let mut signs = self.ltz_vec(&batch);
            let pos = signs.split_off(n);
            return (signs, pos);
        }
        self.bump_comparisons(2 * n as u64);
        let k = self.effective_bits(k);
        self.bump_cmp_width(k, 2 * n as u64);
        let was = self.enter_comparison();
        let party = self.party();
        let cfg = self.cfg;
        let t = k - 1;
        let y: Vec<Share> = u
            .iter()
            .map(|&v| v.add_public(party, Fp::pow2(t)))
            .collect();
        let masks = self.dealer_mut().masked_rows(t, k, n, &cfg);
        self.bump_cmp_masked(n as u64, t);
        let masked: Vec<Share> = y.iter().zip(&masks).map(|(&x, m)| x + Share(m.r)).collect();
        let opened = self.open_vec(&masked);

        let low_mask = (1u64 << t) - 1;
        let big_k = 1u64 << k;
        // 2n BitLT rows over n shared bit rows: side A's wrap then side
        // B's carry (carry = 1[c'_low + r_low ≥ 2^t] = BitLT(2^t − 1 −
        // c'_low, r_low), with c' = 2^k − c mod 2^t).
        let c_lows: Vec<u64> = opened.iter().map(|c| c.value() & low_mask).collect();
        let cc_lows: Vec<u64> = opened
            .iter()
            .map(|c| big_k.wrapping_sub(c.value()) & low_mask)
            .collect();
        let mut pub_vals = c_lows.clone();
        pub_vals.extend(cc_lows.iter().map(|&c| low_mask - c));
        let mut bit_rows: Vec<&[Fp]> = masks.iter().map(|m| m.bits.as_slice()).collect();
        bit_rows.extend(masks.iter().map(|m| m.bits.as_slice()));
        let wraps = self.bitlt_pub_log(&pub_vals, &bit_rows, t);

        let inv = Fp::inv_pow2(t);
        let one = Share::from_public(party, Fp::ONE);
        let mut neg = Vec::with_capacity(n);
        let mut pos = Vec::with_capacity(n);
        for i in 0..n {
            let mut r_low = Share::ZERO;
            for (b, &bit) in masks[i].bits.iter().enumerate() {
                r_low = r_low + Share(bit).scale(Fp::pow2(b as u32));
            }
            // Side A: y mod 2^t = c_low − r_low + wrap·2^t.
            let low_a = (Share::from_public(party, Fp::new(c_lows[i])) - r_low)
                + wraps[i].scale(Fp::pow2(t));
            let high_a = (y[i] - low_a).scale(inv);
            neg.push(one - high_a);
            // Side B: y' mod 2^t = c'_low + r_low − carry·2^t.
            let low_b = (Share::from_public(party, Fp::new(cc_lows[i])) + r_low)
                - wraps[n + i].scale(Fp::pow2(t));
            let y_b = Share::from_public(party, Fp::pow2(k)) - y[i];
            let high_b = (y_b - low_b).scale(inv);
            pos.push(one - high_b);
        }
        self.exit_comparison(was);
        (neg, pos)
    }

    /// `1[a < b]` element-wise.
    pub fn lt_vec(&mut self, a: &[Share], b: &[Share]) -> Vec<Share> {
        self.lt_vec_bounded(a, b, self.cfg.int_bits)
    }

    /// `1[a < b]` element-wise with `|a − b| < 2^(k−1)` proven.
    pub fn lt_vec_bounded(&mut self, a: &[Share], b: &[Share], k: u32) -> Vec<Share> {
        let diff: Vec<Share> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
        self.ltz_vec_bounded(&diff, k)
    }

    /// Oblivious select: `cond·a + (1−cond)·b` element-wise (`cond ∈ {0,1}`).
    /// One multiplication round.
    pub fn select_vec(&mut self, cond: &[Share], a: &[Share], b: &[Share]) -> Vec<Share> {
        assert_eq!(cond.len(), a.len());
        assert_eq!(a.len(), b.len());
        let diff: Vec<Share> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
        let gated = self.mul_vec(cond, &diff);
        gated.into_iter().zip(b).map(|(g, &y)| y + g).collect()
    }

    /// One-hot expansion of a shared index over `0..domain`:
    /// `eq_j = 1 − 1[idx < j] − 1[j < idx]` (linear after one batched
    /// two-sided LTZ). The comparisons only need `⌈log₂ domain⌉ + 1` bits,
    /// and both sides of each `idx − j` share one masked opening.
    pub fn onehot_vec(&mut self, idx: Share, domain: usize) -> Vec<Share> {
        let party = self.party();
        let u: Vec<Share> = (0..domain)
            .map(|j| idx.sub_public(party, Fp::new(j as u64)))
            .collect();
        let k = super::width_for_magnitude(domain.saturating_sub(1) as u64);
        let (lt, gt) = self.ltz_pair_vec(&u, k);
        (0..domain)
            .map(|j| Share::from_public(party, Fp::ONE) - lt[j] - gt[j])
            .collect()
    }

    /// Batched [`Self::onehot_vec`]: every row's equality tests share one
    /// paired-comparison batch, at the widest row's bound (a wider `k`
    /// still covers every row, so each row matches its scalar expansion).
    pub fn onehot_many(&mut self, items: &[(Share, usize)]) -> Vec<Vec<Share>> {
        if items.is_empty() {
            return Vec::new();
        }
        let party = self.party();
        let mut u = Vec::new();
        let mut k = 2;
        for &(idx, domain) in items {
            u.extend((0..domain).map(|j| idx.sub_public(party, Fp::new(j as u64))));
            k = k.max(super::width_for_magnitude(domain.saturating_sub(1) as u64));
        }
        let (lt, gt) = self.ltz_pair_vec(&u, k);
        let mut out = Vec::with_capacity(items.len());
        let mut at = 0;
        for &(_, domain) in items {
            out.push(
                (0..domain)
                    .map(|j| Share::from_public(party, Fp::ONE) - lt[at + j] - gt[at + j])
                    .collect(),
            );
            at += domain;
        }
        out
    }

    /// Secure argmax by pairwise tournament: returns `(⟨index⟩, ⟨max⟩)`.
    /// `O(log n)` comparison batches.
    pub fn argmax(&mut self, vals: &[Share]) -> (Share, Share) {
        self.argmax_bounded(vals, self.cfg.int_bits)
    }

    /// Secure argmax with a proven range: `k` must cover the pairwise
    /// *differences* (`|a − b| < 2^(k−1)` for any two values).
    pub fn argmax_bounded(&mut self, vals: &[Share], k: u32) -> (Share, Share) {
        assert!(!vals.is_empty(), "argmax of empty vector");
        let party = self.party();
        let mut idx: Vec<Share> = (0..vals.len())
            .map(|j| Share::from_public(party, Fp::new(j as u64)))
            .collect();
        let mut cur: Vec<Share> = vals.to_vec();
        while cur.len() > 1 {
            let pairs = cur.len() / 2;
            let a_vals: Vec<Share> = (0..pairs).map(|i| cur[2 * i]).collect();
            let b_vals: Vec<Share> = (0..pairs).map(|i| cur[2 * i + 1]).collect();
            // sel = 1[a < b] → winner is b; ties keep the earlier element
            // `a`, matching the plaintext argmax and the sequential scan.
            let sel = self.lt_vec_bounded(&a_vals, &b_vals, k);
            // Batch value- and index-selection into one multiplication round.
            let mut conds = Vec::with_capacity(2 * pairs);
            let mut xs = Vec::with_capacity(2 * pairs);
            let mut ys = Vec::with_capacity(2 * pairs);
            for i in 0..pairs {
                conds.push(sel[i]);
                xs.push(b_vals[i]);
                ys.push(a_vals[i]);
            }
            for i in 0..pairs {
                conds.push(sel[i]);
                xs.push(idx[2 * i + 1]);
                ys.push(idx[2 * i]);
            }
            let chosen = self.select_vec(&conds, &xs, &ys);
            let mut next_vals: Vec<Share> = chosen[..pairs].to_vec();
            let mut next_idx: Vec<Share> = chosen[pairs..].to_vec();
            if cur.len() % 2 == 1 {
                next_vals.push(*cur.last().expect("odd leftover"));
                next_idx.push(*idx.last().expect("odd leftover"));
            }
            cur = next_vals;
            idx = next_idx;
        }
        (idx[0], cur[0])
    }

    /// Lockstep multi-instance argmax: runs one tournament per row but
    /// shares every comparison/selection round across all rows, so `r`
    /// independent argmax ladders cost the rounds of one. Once a row is
    /// down to [`ALL_PAIRS_TAIL`] candidates the tournament switches to an
    /// all-pairs finish: every unordered candidate pair is compared in a
    /// single batch, the first-maximum indicator is the product
    /// `w_i = ∏_{j<i} 1[v_j < v_i] · ∏_{j>i} (1 − 1[v_i < v_j])`
    /// (⌈log₂(L−1)⌉ multiplication rounds instead of ~⌈log₂ L⌉ full
    /// comparison units), and `(⟨index⟩, ⟨max⟩)` are weighted sums.
    ///
    /// Results are identical to per-row [`Self::argmax_bounded`]: both
    /// resolve ties to the *first* maximum (the tournament keeps the
    /// earlier element on ties; `w_i` demands all earlier values strictly
    /// smaller). `k` must cover the pairwise differences of every row.
    pub fn argmax_many_bounded(&mut self, rows: &[Vec<Share>], k: u32) -> Vec<(Share, Share)> {
        let party = self.party();
        let mut idxs: Vec<Vec<Share>> = rows
            .iter()
            .map(|row| {
                (0..row.len())
                    .map(|j| Share::from_public(party, Fp::new(j as u64)))
                    .collect()
            })
            .collect();
        let mut vals: Vec<Vec<Share>> = rows.to_vec();
        for row in &vals {
            assert!(!row.is_empty(), "argmax of empty row");
        }

        // Tournament rounds, batched across every row still above the
        // all-pairs threshold.
        while vals.iter().any(|row| row.len() > ALL_PAIRS_TAIL) {
            let active: Vec<usize> = (0..vals.len())
                .filter(|&r| vals[r].len() > ALL_PAIRS_TAIL)
                .collect();
            let mut a_vals = Vec::new();
            let mut b_vals = Vec::new();
            for &r in &active {
                let pairs = vals[r].len() / 2;
                for i in 0..pairs {
                    a_vals.push(vals[r][2 * i]);
                    b_vals.push(vals[r][2 * i + 1]);
                }
            }
            // sel = 1[a < b] → winner b; ties keep the earlier element.
            let sel = self.lt_vec_bounded(&a_vals, &b_vals, k);
            let mut conds = Vec::with_capacity(2 * sel.len());
            let mut xs = Vec::with_capacity(2 * sel.len());
            let mut ys = Vec::with_capacity(2 * sel.len());
            let mut lane = 0;
            for &r in &active {
                let pairs = vals[r].len() / 2;
                for i in 0..pairs {
                    conds.push(sel[lane + i]);
                    xs.push(vals[r][2 * i + 1]);
                    ys.push(vals[r][2 * i]);
                }
                for i in 0..pairs {
                    conds.push(sel[lane + i]);
                    xs.push(idxs[r][2 * i + 1]);
                    ys.push(idxs[r][2 * i]);
                }
                lane += pairs;
            }
            let chosen = self.select_vec(&conds, &xs, &ys);
            let mut at = 0;
            for &r in &active {
                let pairs = vals[r].len() / 2;
                let odd = vals[r].len() % 2 == 1;
                let mut next_vals: Vec<Share> = chosen[at..at + pairs].to_vec();
                let mut next_idx: Vec<Share> = chosen[at + pairs..at + 2 * pairs].to_vec();
                if odd {
                    next_vals.push(*vals[r].last().expect("odd leftover"));
                    next_idx.push(*idxs[r].last().expect("odd leftover"));
                }
                at += 2 * pairs;
                vals[r] = next_vals;
                idxs[r] = next_idx;
            }
        }

        // All-pairs tail: one comparison batch over every unordered pair
        // of every remaining multi-candidate row.
        let mut diffs = Vec::new();
        for row in &vals {
            let len = row.len();
            for i in 0..len {
                for j in i + 1..len {
                    diffs.push(row[i] - row[j]);
                }
            }
        }
        let lt = self.ltz_vec_bounded(&diffs, k);
        // Factor lists per candidate: earlier strictly smaller, later not
        // greater. `lt[(i,j)]` (i < j) serves both sides.
        let mut factors: Vec<Vec<Share>> = Vec::new();
        let one = Share::from_public(party, Fp::ONE);
        let mut lane = 0;
        for row in &vals {
            let len = row.len();
            let pair = |a: usize, b: usize| {
                // Lane of unordered pair (a,b), a < b, within this row.
                a * len - a * (a + 1) / 2 + (b - a - 1)
            };
            for i in 0..len {
                let mut f = Vec::with_capacity(len.saturating_sub(1));
                for j in 0..len {
                    match j.cmp(&i) {
                        std::cmp::Ordering::Less => f.push(lt[lane + pair(j, i)]),
                        std::cmp::Ordering::Greater => f.push(one - lt[lane + pair(i, j)]),
                        std::cmp::Ordering::Equal => {}
                    }
                }
                factors.push(f);
            }
            lane += len * (len - 1) / 2;
        }
        // Product trees, batched across every candidate of every row.
        while factors.iter().any(|f| f.len() > 1) {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for f in &factors {
                for pair in f.chunks(2) {
                    if pair.len() == 2 {
                        xs.push(pair[0]);
                        ys.push(pair[1]);
                    }
                }
            }
            let prods = self.mul_vec(&xs, &ys);
            let mut at = 0;
            for f in factors.iter_mut() {
                let mut next = Vec::with_capacity(f.len().div_ceil(2));
                for pair in f.chunks(2) {
                    if pair.len() == 2 {
                        next.push(prods[at]);
                        at += 1;
                    } else {
                        next.push(pair[0]);
                    }
                }
                *f = next;
            }
        }
        // (⟨index⟩, ⟨max⟩) = (Σ w_i·idx_i, Σ w_i·v_i) in one batch.
        let mut ws = Vec::new();
        let mut targets = Vec::new();
        for (r, row) in vals.iter().enumerate() {
            if row.len() == 1 {
                continue;
            }
            let base = vals[..r].iter().map(Vec::len).sum::<usize>();
            for (i, _) in row.iter().enumerate() {
                ws.push(factors[base + i][0]);
                targets.push(idxs[r][i]);
            }
            for (i, &v) in row.iter().enumerate() {
                ws.push(factors[base + i][0]);
                targets.push(v);
            }
        }
        let weighted = self.mul_vec(&ws, &targets);
        let mut out = Vec::with_capacity(vals.len());
        let mut at = 0;
        for (r, row) in vals.iter().enumerate() {
            if row.len() == 1 {
                out.push((idxs[r][0], row[0]));
                continue;
            }
            let len = row.len();
            let idx = weighted[at..at + len]
                .iter()
                .fold(Share::ZERO, |acc, &x| acc + x);
            let val = weighted[at + len..at + 2 * len]
                .iter()
                .fold(Share::ZERO, |acc, &x| acc + x);
            at += 2 * len;
            out.push((idx, val));
        }
        out
    }

    /// Paper-faithful sequential secure maximum (§4.1): scans splits one by
    /// one, updating `⟨gain_max⟩` and the identifier with secure selects.
    /// `O(n)` comparison rounds — kept for the ablation benchmarks.
    pub fn argmax_sequential(&mut self, vals: &[Share]) -> (Share, Share) {
        assert!(!vals.is_empty(), "argmax of empty vector");
        let party = self.party();
        // Initialize with ⟨−1⟩ like Algorithm 3's description.
        let mut best_val = Share::from_public(party, Fp::from_i64(-1));
        let mut best_idx = Share::from_public(party, Fp::from_i64(-1));
        for (j, &v) in vals.iter().enumerate() {
            let sign = self.lt_vec(&[best_val], &[v])[0]; // 1 if v is better
            let j_share = Share::from_public(party, Fp::new(j as u64));
            let chosen = self.select_vec(&[sign, sign], &[v, j_share], &[best_val, best_idx]);
            best_val = chosen[0];
            best_idx = chosen[1];
        }
        (best_idx, best_val)
    }

    /// Secure maximum value only.
    pub fn max_vec(&mut self, vals: &[Share]) -> Share {
        self.argmax(vals).1
    }

    /// Secure maximum value with a proven difference range.
    pub fn max_vec_bounded(&mut self, vals: &[Share], k: u32) -> Share {
        self.argmax_bounded(vals, k).1
    }
}
