//! The online MPC engine: one instance per party, driving SPMD protocols
//! over a [`pivot_transport::Endpoint`].
//!
//! Every collective method must be called by **all** parties in the same
//! order with equal vector lengths — exactly the programming model of the
//! SPDZ virtual machine the paper runs on. The endpoint is
//! backend-agnostic (in-process channels or TCP links): the engine never
//! sees which, so the same protocol code runs threaded or one process
//! per party.

mod arith;
mod compare;

use crate::dealer::{DealerClient, DealerPoolStats};
use crate::field::Fp;
use crate::fixed::FixedConfig;
use crate::share::Share;
use pivot_transport::Endpoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Comparison width policy: how many bits a secure comparison pays for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CompareBits {
    /// Every comparison uses the global `int_bits` width and the legacy
    /// linear BitLT — bit-for-bit the PR-3/PR-4 transcript.
    #[default]
    Full,
    /// Comparisons use the caller's proven value range (clamped to
    /// `int_bits`) and the log-depth BitLT ladder.
    Auto,
    /// Like `Auto`, but derived widths never drop below the floor — a
    /// conservative dial between `Auto` and `Full` (the floor only ever
    /// *raises* a width, so correctness is unaffected).
    Floor(u32),
}

/// The smallest signed comparison width `k` with `bound < 2^(k−1)` —
/// how call sites turn a proven magnitude bound into a width request.
pub fn width_for_magnitude(bound: u64) -> u32 {
    (64 - bound.leading_zeros() + 1).max(2)
}

/// Operation counters backing the paper's Table 2 cost model
/// (`Cs` = secure ops, `Cc` = secure comparisons).
#[derive(Debug)]
pub struct OpCounters {
    /// Communication rounds executed.
    pub rounds: AtomicU64,
    /// Beaver multiplications (vector elements, not rounds).
    pub multiplications: AtomicU64,
    /// Secure comparisons (vector elements).
    pub comparisons: AtomicU64,
    /// Values opened.
    pub openings: AtomicU64,
    /// Rounds spent inside comparison protocols (mod2m/LTZ/BitLT).
    cmp_rounds: AtomicU64,
    /// Field elements opened inside comparison protocols.
    cmp_opened: AtomicU64,
    /// Beaver triples consumed inside comparison protocols.
    cmp_triples: AtomicU64,
    /// Masked-bit rows consumed (one per mod2m element).
    cmp_masked_rows: AtomicU64,
    /// Low-bit count (`t`) totals of the consumed masked rows.
    cmp_masked_bits: AtomicU64,
    /// Comparison counts per effective width `k` (index = width).
    cmp_widths: [AtomicU64; 62],
}

impl Default for OpCounters {
    fn default() -> Self {
        OpCounters {
            rounds: AtomicU64::new(0),
            multiplications: AtomicU64::new(0),
            comparisons: AtomicU64::new(0),
            openings: AtomicU64::new(0),
            cmp_rounds: AtomicU64::new(0),
            cmp_opened: AtomicU64::new(0),
            cmp_triples: AtomicU64::new(0),
            cmp_masked_rows: AtomicU64::new(0),
            cmp_masked_bits: AtomicU64::new(0),
            cmp_widths: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl OpCounters {
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.rounds.load(Ordering::Relaxed),
            self.multiplications.load(Ordering::Relaxed),
            self.comparisons.load(Ordering::Relaxed),
            self.openings.load(Ordering::Relaxed),
        )
    }
}

/// Snapshot of the comparison-pipeline telemetry: what the secure
/// comparisons of one run actually paid in rounds, opened field elements,
/// and preprocessing material, with a per-width histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComparisonCounters {
    /// Secure comparisons performed (vector elements — same count as the
    /// legacy `comparisons` counter).
    pub count: u64,
    /// Communication rounds spent inside comparison protocols.
    pub online_rounds: u64,
    /// Field elements opened inside comparison protocols (the dominant
    /// share of comparison `bytes_sent`: one field element per party per
    /// opened value).
    pub opened_elements: u64,
    /// Beaver triples consumed by comparison multiplications.
    pub beaver_triples: u64,
    /// Masked-bit rows consumed (one per mod2m element).
    pub masked_bit_rows: u64,
    /// Total bit-decomposed low bits across the consumed rows.
    pub masked_bits: u64,
    /// `(width, comparisons)` histogram over effective widths, ascending.
    pub widths: Vec<(u32, u64)>,
}

impl ComparisonCounters {
    /// Field-wise accumulation. Every scalar adds independently and the
    /// width histograms merge by width key, so a side that is
    /// default-initialized (e.g. a mixed-version report missing the
    /// newer counter group) contributes zeros instead of dropping the
    /// other side's groups.
    pub fn merge(&mut self, other: &ComparisonCounters) {
        self.count += other.count;
        self.online_rounds += other.online_rounds;
        self.opened_elements += other.opened_elements;
        self.beaver_triples += other.beaver_triples;
        self.masked_bit_rows += other.masked_bit_rows;
        self.masked_bits += other.masked_bits;
        for &(k, n) in &other.widths {
            match self.widths.iter_mut().find(|(w, _)| *w == k) {
                Some((_, slot)) => *slot += n,
                None => self.widths.push((k, n)),
            }
        }
        self.widths.sort_by_key(|&(k, _)| k);
    }
}

/// Per-party online engine.
pub struct MpcEngine<'a> {
    ep: &'a Endpoint,
    dealer: DealerClient,
    /// Fixed-point layout shared by all parties.
    pub cfg: FixedConfig,
    counters: OpCounters,
    /// Private randomness (per party, for input sharing).
    rng: StdRng,
    /// Comparison width policy (must match across parties).
    cmp_bits: CompareBits,
    /// Set while a comparison protocol is on the stack, so the generic
    /// open/multiply layers can attribute their costs to comparisons.
    in_comparison: bool,
    /// Openings queued by [`MpcEngine::open_deferred`], settled together
    /// by the next [`MpcEngine::resolve`].
    deferred_shares: Vec<Share>,
    /// Per-ticket lengths of the queued openings.
    deferred_spans: Vec<usize>,
}

impl<'a> MpcEngine<'a> {
    /// Create the engine. `dealer_seed` must match across parties (it keys
    /// the simulated offline phase); private randomness is derived from the
    /// party id and entropy.
    pub fn new(ep: &'a Endpoint, dealer_seed: u64, cfg: FixedConfig) -> Self {
        cfg.assert_valid();
        let dealer = DealerClient::new(dealer_seed, ep.id(), ep.parties());
        let rng = StdRng::seed_from_u64(
            dealer_seed ^ (0x9e37_79b9_7f4a_7c15u64).wrapping_mul(ep.id() as u64 + 1),
        );
        MpcEngine {
            ep,
            dealer,
            cfg,
            counters: OpCounters::default(),
            rng,
            cmp_bits: CompareBits::Full,
            in_comparison: false,
            deferred_shares: Vec::new(),
            deferred_spans: Vec::new(),
        }
    }

    /// Set the comparison width policy and, for bounded modes, switch the
    /// dealer onto split preprocessing streams with `dealer_pool` rows of
    /// background precompute per stream (0 = inline generation).
    ///
    /// Must be called before the first collective operation and with
    /// identical arguments on every party. `Full` keeps the legacy
    /// single-stream dealer and the PR-3/PR-4 transcript bit for bit.
    pub fn configure_comparisons(&mut self, mode: CompareBits, dealer_pool: usize) {
        if let CompareBits::Floor(n) = mode {
            assert!(
                (2..=self.cfg.int_bits).contains(&n),
                "comparison width floor {n} outside 2..={}",
                self.cfg.int_bits
            );
        }
        self.cmp_bits = mode;
        if mode != CompareBits::Full {
            self.dealer.enable_split_streams(dealer_pool);
        }
    }

    /// The active comparison width policy.
    pub fn compare_bits(&self) -> CompareBits {
        self.cmp_bits
    }

    /// Whether comparisons run on the legacy full-width path.
    pub(crate) fn legacy_comparisons(&self) -> bool {
        self.cmp_bits == CompareBits::Full
    }

    /// Resolve a requested comparison width under the active policy.
    pub(crate) fn effective_bits(&self, requested: u32) -> u32 {
        let k = match self.cmp_bits {
            CompareBits::Full => self.cfg.int_bits,
            CompareBits::Auto => requested,
            CompareBits::Floor(n) => requested.max(n),
        };
        k.clamp(2, self.cfg.int_bits)
    }

    /// Kick a background refill of the dealer's offline pool (no-op under
    /// the legacy stream or a zero pool target). Call from protocol idle
    /// phases, mirroring `NoncePool::refill`.
    pub fn dealer_refill(&self) {
        if let Some(pool) = self.dealer.pool() {
            pool.refill();
        }
    }

    /// Blocking dealer-pool top-up sized to the observed level burst,
    /// scaled by `next_nodes / level_nodes` frontier growth — for the
    /// pipelined scheduler's level barriers, where the whole next
    /// level's preprocessing demand lands at once.
    pub fn dealer_refill_blocking(&self, next_nodes: usize, level_nodes: usize) {
        if let Some(pool) = self.dealer.pool() {
            pool.refill_blocking(next_nodes, level_nodes);
        }
    }

    /// Offline dealer-pool behavior (zeros under the legacy stream).
    pub fn dealer_pool_stats(&self) -> DealerPoolStats {
        self.dealer.pool_stats()
    }

    /// Snapshot the comparison-pipeline telemetry.
    pub fn comparison_snapshot(&self) -> ComparisonCounters {
        let c = &self.counters;
        let widths: Vec<(u32, u64)> = c
            .cmp_widths
            .iter()
            .enumerate()
            .filter_map(|(k, v)| {
                let n = v.load(Ordering::Relaxed);
                (n > 0).then_some((k as u32, n))
            })
            .collect();
        ComparisonCounters {
            count: c.comparisons.load(Ordering::Relaxed),
            online_rounds: c.cmp_rounds.load(Ordering::Relaxed),
            opened_elements: c.cmp_opened.load(Ordering::Relaxed),
            beaver_triples: c.cmp_triples.load(Ordering::Relaxed),
            masked_bit_rows: c.cmp_masked_rows.load(Ordering::Relaxed),
            masked_bits: c.cmp_masked_bits.load(Ordering::Relaxed),
            widths,
        }
    }

    /// Enter a comparison scope; returns the previous flag for nesting.
    pub(crate) fn enter_comparison(&mut self) -> bool {
        std::mem::replace(&mut self.in_comparison, true)
    }

    pub(crate) fn exit_comparison(&mut self, prev: bool) {
        self.in_comparison = prev;
    }

    pub(crate) fn bump_cmp_masked(&self, rows: u64, t: u32) {
        OpCounters::bump(&self.counters.cmp_masked_rows, rows);
        OpCounters::bump(&self.counters.cmp_masked_bits, rows * t as u64);
    }

    pub(crate) fn bump_cmp_width(&self, k: u32, n: u64) {
        if let Some(slot) = self.counters.cmp_widths.get(k as usize) {
            OpCounters::bump(slot, n);
        }
    }

    /// This party's id.
    pub fn party(&self) -> usize {
        self.ep.id()
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.ep.parties()
    }

    /// The transport endpoint (for protocol layers that mix MPC with other
    /// messaging, e.g. the TPHE↔MPC conversions of Algorithm 2).
    pub fn endpoint(&self) -> &Endpoint {
        self.ep
    }

    /// The offline-phase client.
    pub fn dealer_mut(&mut self) -> &mut DealerClient {
        &mut self.dealer
    }

    /// Operation counters.
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Share of a public constant (no communication).
    pub fn constant(&self, v: Fp) -> Share {
        Share::from_public(self.party(), v)
    }

    /// Encode a public real as a constant share.
    pub fn constant_f64(&self, x: f64) -> Share {
        self.constant(self.cfg.encode(x))
    }

    // ------------------------------------------------------------------
    // Input sharing and opening
    // ------------------------------------------------------------------

    /// Secret-share private inputs held by `owner`. The owner passes
    /// `Some(values)`, everyone else `None`; all parties receive their share
    /// vector. One round.
    pub fn share_input(&mut self, owner: usize, values: Option<&[Fp]>) -> Vec<Share> {
        let _span = pivot_trace::span("share_input");
        let my_shares: Vec<Fp> = if self.party() == owner {
            let values = values.expect("owner must supply inputs");
            let m = self.parties();
            // Build per-party share vectors.
            let mut per_party: Vec<Vec<Fp>> = vec![Vec::with_capacity(values.len()); m];
            for &v in values {
                let mut acc = Fp::ZERO;
                for party_shares in per_party.iter_mut().take(m - 1) {
                    let r = Fp::new(self.rng.gen_range(0..crate::field::MODULUS));
                    party_shares.push(r);
                    acc += r;
                }
                per_party[m - 1].push(v - acc);
            }
            for (to, shares) in per_party.iter().enumerate() {
                if to != owner {
                    self.ep.send(to, shares);
                }
            }
            per_party.swap_remove(owner)
        } else {
            assert!(values.is_none(), "non-owner must not supply inputs");
            self.ep.recv(owner)
        };
        OpCounters::bump(&self.counters.rounds, 1);
        pivot_trace::add_rounds(1);
        self.ep.note_round();
        my_shares.into_iter().map(Share).collect()
    }

    /// Open a vector of shares to all parties. One round.
    pub fn open_vec(&mut self, shares: &[Share]) -> Vec<Fp> {
        let _span = pivot_trace::span("open");
        let mine: Vec<Fp> = shares.iter().map(|s| s.0).collect();
        let all = self.ep.exchange_all(&mine);
        OpCounters::bump(&self.counters.rounds, 1);
        pivot_trace::add_rounds(1);
        self.ep.note_round();
        OpCounters::bump(&self.counters.openings, shares.len() as u64);
        if self.in_comparison {
            OpCounters::bump(&self.counters.cmp_rounds, 1);
            OpCounters::bump(&self.counters.cmp_opened, shares.len() as u64);
        }
        let mut out = vec![Fp::ZERO; shares.len()];
        for party_vec in &all {
            assert_eq!(party_vec.len(), shares.len(), "open length mismatch");
            for (acc, &v) in out.iter_mut().zip(party_vec) {
                *acc += v;
            }
        }
        out
    }

    /// Open a single share.
    pub fn open(&mut self, share: Share) -> Fp {
        self.open_vec(&[share])[0]
    }

    /// Queue a vector of shares for a deferred opening and return its
    /// ticket — the index of its result in the next [`MpcEngine::resolve`].
    ///
    /// Independent openings a protocol step produces (prune bits, winner
    /// indices, leaf labels, …) queue here instead of each paying an
    /// `open_vec` round; `resolve` settles the whole queue in one round.
    /// Like every collective, all parties must queue the same vectors in
    /// the same order.
    pub fn open_deferred(&mut self, shares: &[Share]) -> usize {
        self.deferred_shares.extend_from_slice(shares);
        self.deferred_spans.push(shares.len());
        self.deferred_spans.len() - 1
    }

    /// Number of deferred openings currently queued.
    pub fn deferred_pending(&self) -> usize {
        self.deferred_spans.len()
    }

    /// Settle every queued deferred opening in a single round. Returns
    /// one result vector per ticket, in queue order, and clears the
    /// queue. No-op (and no round) when nothing is queued.
    pub fn resolve(&mut self) -> Vec<Vec<Fp>> {
        if self.deferred_spans.is_empty() {
            return Vec::new();
        }
        let shares = std::mem::take(&mut self.deferred_shares);
        let spans = std::mem::take(&mut self.deferred_spans);
        let flat = self.open_vec(&shares);
        let mut at = 0;
        spans
            .into_iter()
            .map(|len| {
                let chunk = flat[at..at + len].to_vec();
                at += len;
                chunk
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Multiplication (Beaver) and truncation
    // ------------------------------------------------------------------

    /// Element-wise secure multiplication. One round.
    pub fn mul_vec(&mut self, a: &[Share], b: &[Share]) -> Vec<Share> {
        assert_eq!(a.len(), b.len(), "mul_vec length mismatch");
        let n = a.len();
        if n == 0 {
            return Vec::new();
        }
        let triples = self.dealer.triples(n);
        if self.in_comparison {
            OpCounters::bump(&self.counters.cmp_triples, n as u64);
        }
        // e = a - ta, f = b - tb, opened together in one round.
        let mut masked = Vec::with_capacity(2 * n);
        for i in 0..n {
            masked.push(a[i] - Share(triples[i].a));
        }
        for i in 0..n {
            masked.push(b[i] - Share(triples[i].b));
        }
        let opened = self.open_vec(&masked);
        OpCounters::bump(&self.counters.multiplications, n as u64);
        let party = self.party();
        (0..n)
            .map(|i| {
                let e = opened[i];
                let f = opened[n + i];
                // z = c + e·⟨b⟩ + f·⟨a⟩ + e·f (public part at party 0).
                let z = Share(triples[i].c)
                    + Share(triples[i].b).scale(e)
                    + Share(triples[i].a).scale(f);
                z.add_public(party, e * f)
            })
            .collect()
    }

    /// Secure multiplication of two scalars.
    pub fn mul(&mut self, a: Share, b: Share) -> Share {
        self.mul_vec(&[a], &[b])[0]
    }

    /// Probabilistic truncation by `t` bits (±1 ulp error, 1 round).
    ///
    /// Inputs must be signed values of magnitude below `2^(int_bits - 1)`.
    pub fn trunc_vec(&mut self, v: &[Share], t: u32) -> Vec<Share> {
        let n = v.len();
        if n == 0 {
            return Vec::new();
        }
        let k = self.cfg.int_bits;
        assert!(t < k, "truncation by {t} exceeds {k}-bit layout");
        let offset = Fp::pow2(k - 1);
        let party = self.party();
        let pairs: Vec<(Fp, Fp)> = (0..n)
            .map(|_| self.dealer.trunc_pair(t, &self.cfg))
            .collect();
        let masked: Vec<Share> = v
            .iter()
            .zip(&pairs)
            .map(|(&x, &(r, _))| (x + Share(r)).add_public(party, offset))
            .collect();
        let opened = self.open_vec(&masked);
        opened
            .iter()
            .zip(&pairs)
            .map(|(&c, &(_, r_high))| {
                // c = (v + 2^(k-1)) + r exactly over the integers (no wrap),
                // so c >> t = r_high + (v + 2^(k-1)) >> t + {0,1}.
                let c_shift = Fp::new(c.value() >> t);
                (Share::from_public(party, c_shift) - Share(r_high))
                    .sub_public(party, Fp::pow2(k - 1 - t))
            })
            .collect()
    }

    /// Fixed-point multiplication: multiply then truncate the extra scale.
    /// Two rounds.
    pub fn fixmul_vec(&mut self, a: &[Share], b: &[Share]) -> Vec<Share> {
        let prod = self.mul_vec(a, b);
        self.trunc_vec(&prod, self.cfg.frac_bits)
    }

    /// Fixed-point scalar multiplication by a public real (local scale, then
    /// one truncation round).
    pub fn fixscale_vec(&mut self, a: &[Share], c: f64) -> Vec<Share> {
        let enc = self.cfg.encode(c);
        let scaled: Vec<Share> = a.iter().map(|&x| x.scale(enc)).collect();
        self.trunc_vec(&scaled, self.cfg.frac_bits)
    }

    pub(crate) fn bump_comparisons(&self, n: u64) {
        OpCounters::bump(&self.counters.comparisons, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ComparisonCounters {
        ComparisonCounters {
            count: 10,
            online_rounds: 4,
            opened_elements: 30,
            beaver_triples: 12,
            masked_bit_rows: 8,
            masked_bits: 64,
            widths: vec![(5, 3), (61, 7)],
        }
    }

    #[test]
    fn merge_is_field_wise_with_default_side_in_both_orders() {
        // A default-initialized side (mixed-version reports missing the
        // newer counter group) must contribute zeros, not wipe groups.
        let mut a = sample();
        a.merge(&ComparisonCounters::default());
        assert_eq!(a, sample());

        let mut b = ComparisonCounters::default();
        b.merge(&sample());
        assert_eq!(b, sample());
    }

    #[test]
    fn merge_adds_scalars_and_unions_width_histograms() {
        let mut a = sample();
        let other = ComparisonCounters {
            count: 1,
            online_rounds: 2,
            opened_elements: 3,
            beaver_triples: 4,
            masked_bit_rows: 5,
            masked_bits: 6,
            widths: vec![(4, 1), (5, 2)],
        };
        a.merge(&other);
        assert_eq!(a.count, 11);
        assert_eq!(a.online_rounds, 6);
        assert_eq!(a.opened_elements, 33);
        assert_eq!(a.beaver_triples, 16);
        assert_eq!(a.masked_bit_rows, 13);
        assert_eq!(a.masked_bits, 70);
        // Histogram merged by width key, sorted ascending.
        assert_eq!(a.widths, vec![(4, 1), (5, 5), (61, 7)]);
    }
}
