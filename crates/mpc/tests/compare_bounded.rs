//! Bounded-width comparison tests: boundary values, full-vs-bounded
//! parity, the two-sided shared-mask LTZ, and the round/byte accounting
//! that backs the PR-5 perf claims.

use pivot_mpc::{dp, CompareBits, ComparisonCounters, FixedConfig, Fp, MpcEngine, Share};
use pivot_transport::run_parties;
use proptest::prelude::*;

const SEED: u64 = 0xB0DED;

/// SPMD closure over `m` parties with a chosen comparison policy.
fn mpc_mode<T: Send>(
    m: usize,
    mode: CompareBits,
    f: impl Fn(&mut MpcEngine<'_>) -> T + Send + Sync,
) -> Vec<T> {
    run_parties(m, |ep| {
        let mut engine = MpcEngine::new(&ep, SEED, FixedConfig::default());
        engine.configure_comparisons(mode, 0);
        f(&mut engine)
    })
}

/// The values the satellite task pins: 0, ±1, ±(2^(k−1) − 1).
fn boundary_values(k: u32) -> Vec<i64> {
    let edge = (1i64 << (k - 1)) - 1;
    vec![0, 1, -1, edge, -edge]
}

#[test]
fn bounded_ltz_at_boundary_values() {
    for mode in [CompareBits::Auto, CompareBits::Floor(8), CompareBits::Full] {
        for k in [2u32, 3, 5, 8, 13, 21, 45] {
            let vals = boundary_values(k);
            let want: Vec<u64> = vals.iter().map(|&v| u64::from(v < 0)).collect();
            let got = mpc_mode(3, mode, |e| {
                let shares: Vec<Share> =
                    vals.iter().map(|&v| e.constant(Fp::from_i64(v))).collect();
                let signs = e.ltz_vec_bounded(&shares, k);
                e.open_vec(&signs)
                    .iter()
                    .map(|v| v.value())
                    .collect::<Vec<_>>()
            });
            for r in got {
                assert_eq!(r, want, "mode {mode:?}, width {k}");
            }
        }
    }
}

#[test]
fn bounded_mod2m_matches_plaintext() {
    // y ∈ [0, 2^k) at several widths, including boundary patterns.
    for k in [4u32, 9, 16, 30] {
        let t = k - 1;
        let top = (1u64 << k) - 1;
        let vals = [0u64, 1, (1 << t) - 1, 1 << t, top, 0b1011 % (top + 1)];
        let got = mpc_mode(2, CompareBits::Auto, |e| {
            let shares: Vec<Share> = vals.iter().map(|&v| e.constant(Fp::new(v))).collect();
            let low = e.mod2m_vec_bounded(&shares, t, k);
            e.open_vec(&low)
                .iter()
                .map(|v| v.value())
                .collect::<Vec<_>>()
        });
        let want: Vec<u64> = vals.iter().map(|&v| v & ((1 << t) - 1)).collect();
        for r in got {
            assert_eq!(r, want, "width {k}");
        }
    }
}

#[test]
fn full_and_bounded_policies_agree() {
    let vals: Vec<i64> = vec![-200, -3, -1, 0, 1, 2, 57, 199, -128, 127];
    let run = |mode| {
        mpc_mode(3, mode, |e| {
            let shares: Vec<Share> = vals.iter().map(|&v| e.constant(Fp::from_i64(v))).collect();
            let signs = e.ltz_vec_bounded(&shares, 10);
            e.open_vec(&signs)
                .iter()
                .map(|v| v.value())
                .collect::<Vec<_>>()
        })
    };
    let full = run(CompareBits::Full);
    let auto = run(CompareBits::Auto);
    let floor = run(CompareBits::Floor(16));
    assert_eq!(full[0], auto[0]);
    assert_eq!(full[0], floor[0]);
    assert_eq!(
        full[0],
        vals.iter().map(|&v| u64::from(v < 0)).collect::<Vec<_>>()
    );
}

#[test]
fn ltz_pair_shares_one_mask_per_element() {
    let vals: Vec<i64> = vec![-7, -1, 0, 1, 6, 3, -4];
    let results = mpc_mode(2, CompareBits::Auto, |e| {
        let shares: Vec<Share> = vals.iter().map(|&v| e.constant(Fp::from_i64(v))).collect();
        let (neg, pos) = e.ltz_pair_vec(&shares, 5);
        let opened_neg = e.open_vec(&neg);
        let opened_pos = e.open_vec(&pos);
        let snap = e.comparison_snapshot();
        (
            opened_neg.iter().map(|v| v.value()).collect::<Vec<_>>(),
            opened_pos.iter().map(|v| v.value()).collect::<Vec<_>>(),
            snap,
        )
    });
    for (neg, pos, snap) in results {
        assert_eq!(
            neg,
            vals.iter().map(|&v| u64::from(v < 0)).collect::<Vec<_>>()
        );
        assert_eq!(
            pos,
            vals.iter().map(|&v| u64::from(v > 0)).collect::<Vec<_>>()
        );
        // 2n comparison results, but only n masked rows were consumed.
        assert_eq!(snap.count, 2 * vals.len() as u64);
        assert_eq!(snap.masked_bit_rows, vals.len() as u64);
    }
}

#[test]
fn onehot_matches_legacy_and_halves_masked_rows() {
    let domain = 9usize;
    let run = |mode| {
        mpc_mode(2, mode, |e| {
            let idx = e.constant(Fp::new(4));
            let hot = e.onehot_vec(idx, domain);
            let opened: Vec<u64> = e.open_vec(&hot).iter().map(|v| v.value()).collect();
            (opened, e.comparison_snapshot())
        })
    };
    let full = run(CompareBits::Full);
    let auto = run(CompareBits::Auto);
    let mut want = vec![0u64; domain];
    want[4] = 1;
    assert_eq!(full[0].0, want);
    assert_eq!(auto[0].0, want);
    // Same comparison count (2·domain) either way, half the masked rows.
    assert_eq!(full[0].1.count, auto[0].1.count);
    assert_eq!(full[0].1.masked_bit_rows, 2 * domain as u64);
    assert_eq!(auto[0].1.masked_bit_rows, domain as u64);
}

#[test]
fn bounded_argmax_matches_full() {
    let vals = [3.0f64, -1.0, 7.5, 7.25, 0.0, 2.0];
    let run = |mode| {
        mpc_mode(3, mode, |e| {
            let shares: Vec<Share> = vals.iter().map(|&v| e.constant_f64(v)).collect();
            // Differences bounded by 16 at scale 2^f.
            let k = e.cfg.frac_bits + 6;
            let (idx, max) = e.argmax_bounded(&shares, k);
            let opened = e.open_vec(&[idx, max]);
            (opened[0].value(), e.cfg.decode(opened[1]))
        })
    };
    for (idx, max) in run(CompareBits::Full)
        .into_iter()
        .chain(run(CompareBits::Auto))
    {
        assert_eq!(idx, 2);
        assert!((max - 7.5).abs() < 1e-4);
    }
}

/// The lockstep multi-row argmax (tournament + all-pairs tail) must
/// return exactly what per-row `argmax_bounded` returns — including
/// first-maximum tie resolution — in every width policy.
#[test]
fn argmax_many_matches_per_row_argmax() {
    // Row shapes: long (exercises tournament rounds + tail), tie-heavy
    // (first maximum must win), tiny, and singleton.
    let rows: Vec<Vec<i64>> = vec![
        (0..60).map(|i| (i * 37) % 53 - 26).collect(),
        vec![5, 3, 5, 5, -2],
        vec![-4, -4],
        vec![7],
        (0..30).map(|i| 29 - i).collect(),
    ];
    for mode in [CompareBits::Full, CompareBits::Auto] {
        let got = mpc_mode(3, mode, |e| {
            let shares: Vec<Vec<Share>> = rows
                .iter()
                .map(|row| row.iter().map(|&v| e.constant(Fp::from_i64(v))).collect())
                .collect();
            let many = e.argmax_many_bounded(&shares, 8);
            let single: Vec<(Share, Share)> =
                shares.iter().map(|row| e.argmax_bounded(row, 8)).collect();
            let flat: Vec<Share> = many
                .iter()
                .chain(&single)
                .flat_map(|&(i, v)| [i, v])
                .collect();
            e.open_vec(&flat)
                .iter()
                .map(|v| v.value())
                .collect::<Vec<_>>()
        });
        for opened in got {
            let (m, s) = opened.split_at(2 * rows.len());
            assert_eq!(m, s, "lockstep vs per-row mismatch in {mode:?}");
            for (r, row) in rows.iter().enumerate() {
                let best = row.iter().max().unwrap();
                let want_idx = row.iter().position(|v| v == best).unwrap() as u64;
                assert_eq!(m[2 * r], want_idx, "row {r} idx in {mode:?}");
            }
        }
    }
}

/// Sharing rounds across rows is the point: r lockstep ladders must cost
/// far fewer rounds than r sequential ones.
#[test]
fn argmax_many_shares_rounds_across_rows() {
    let rows: Vec<Vec<i64>> = (0..6)
        .map(|r| {
            (0..48)
                .map(|i| ((i * 31 + r * 7) % 97) as i64 - 48)
                .collect()
        })
        .collect();
    let run = |lockstep: bool| {
        mpc_mode(2, CompareBits::Auto, |e| {
            let shares: Vec<Vec<Share>> = rows
                .iter()
                .map(|row| row.iter().map(|&v| e.constant(Fp::from_i64(v))).collect())
                .collect();
            let before = e.counters().snapshot().0;
            if lockstep {
                let _ = e.argmax_many_bounded(&shares, 9);
            } else {
                for row in &shares {
                    let _ = e.argmax_bounded(row, 9);
                }
            }
            e.counters().snapshot().0 - before
        })
        .remove(0)
    };
    let lockstep = run(true);
    let sequential = run(false);
    assert!(
        2 * lockstep <= sequential,
        "lockstep {lockstep} rounds vs sequential {sequential}"
    );
}

/// Deferred openings settle in one round regardless of ticket count.
#[test]
fn deferred_opens_settle_in_one_round() {
    let results = mpc_mode(2, CompareBits::Auto, |e| {
        let a = [e.constant(Fp::from_i64(-3)), e.constant(Fp::new(11))];
        let b = [e.constant(Fp::new(42))];
        let before = e.counters().snapshot().0;
        let t_a = e.open_deferred(&a);
        let t_b = e.open_deferred(&b);
        assert_eq!(e.deferred_pending(), 2);
        let opened = e.resolve();
        let rounds = e.counters().snapshot().0 - before;
        assert_eq!(e.deferred_pending(), 0);
        assert!(e.resolve().is_empty(), "second resolve is a no-op");
        (
            opened[t_a].iter().map(|v| v.value()).collect::<Vec<_>>(),
            opened[t_b][0].value(),
            rounds,
        )
    });
    for (a, b, rounds) in results {
        assert_eq!(a, vec![Fp::from_i64(-3).value(), 11]);
        assert_eq!(b, 42);
        assert_eq!(rounds, 1);
    }
}

#[test]
fn recip_vec_int_matches_fixed_point_path() {
    let denoms = [1u64, 2, 3, 10, 24, 100];
    let run = |mode| {
        mpc_mode(2, mode, |e| {
            let d: Vec<Share> = denoms.iter().map(|&v| e.constant(Fp::new(v))).collect();
            let r = e.recip_vec_int(&d, 128.0);
            let opened = e.open_vec(&r);
            opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>()
        })
    };
    for r in run(CompareBits::Full)
        .into_iter()
        .chain(run(CompareBits::Auto))
    {
        for (got, want) in r.iter().zip(denoms.iter().map(|&d| 1.0 / d as f64)) {
            assert!(
                (got - want).abs() < 1e-3 + want * 1e-3,
                "reciprocal got {got}, want {want}"
            );
        }
    }
}

/// The PR-5 acceptance shape at the engine level: a narrow batch must cut
/// opened elements ≥2× and comparison rounds ≥3× against the full path.
#[test]
fn bounded_widths_cut_opened_elements_and_rounds() {
    let vals: Vec<i64> = (0..64).map(|i| (i % 13) - 6).collect();
    let measure = |mode| -> ComparisonCounters {
        mpc_mode(2, mode, |e| {
            let shares: Vec<Share> = vals.iter().map(|&v| e.constant(Fp::from_i64(v))).collect();
            let _ = e.ltz_vec_bounded(&shares, 6);
            e.comparison_snapshot()
        })
        .remove(0)
    };
    let full = measure(CompareBits::Full);
    let auto = measure(CompareBits::Auto);
    assert_eq!(full.count, auto.count);
    assert!(
        full.opened_elements >= 2 * auto.opened_elements,
        "opened: full {} vs auto {}",
        full.opened_elements,
        auto.opened_elements
    );
    assert!(
        full.online_rounds >= 3 * auto.online_rounds,
        "rounds: full {} vs auto {}",
        full.online_rounds,
        auto.online_rounds
    );
    assert!(
        full.masked_bits >= 4 * auto.masked_bits,
        "masked bits: full {} vs auto {}",
        full.masked_bits,
        auto.masked_bits
    );
    // The width histogram records the effective widths.
    assert_eq!(full.widths, vec![(45, vals.len() as u64)]);
    assert_eq!(auto.widths, vec![(6, vals.len() as u64)]);
}

#[test]
fn floor_policy_raises_narrow_widths_only() {
    let results = mpc_mode(2, CompareBits::Floor(12), |e| {
        let a = e.constant(Fp::from_i64(-2));
        let b = e.constant(Fp::from_i64(900));
        let _ = e.ltz_vec_bounded(&[a], 4); // floored up to 12
        let _ = e.ltz_vec_bounded(&[b], 20); // stays 20
        e.comparison_snapshot().widths
    });
    assert_eq!(results[0], vec![(12, 1), (20, 1)]);
}

#[test]
fn dp_samplers_agree_across_policies() {
    // The DP mechanisms draw their uniform randomness from the legacy
    // stream in both modes, so the samples agree up to the ±1-ulp
    // probabilistic-truncation realignment (trunc masks sit at different
    // legacy-stream positions once comparisons stop consuming it).
    let run = |mode| {
        mpc_mode(2, mode, |e| {
            let samples = dp::laplace_sample_vec(e, 0.0, 1.0, 16);
            let opened = e.open_vec(&samples);
            let scores = [
                e.constant_f64(0.1),
                e.constant_f64(6.0),
                e.constant_f64(0.2),
            ];
            let idx = dp::exponential_mechanism(e, &scores, 4.0, 1.0);
            let idx = e.open(idx).value();
            (
                opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>(),
                idx,
            )
        })
    };
    let full = run(CompareBits::Full).remove(0);
    let auto = run(CompareBits::Auto).remove(0);
    assert_eq!(full.1, auto.1);
    let ulp = 1.0 / (1u64 << FixedConfig::default().frac_bits) as f64;
    for (a, b) in full.0.iter().zip(&auto.0) {
        assert!(
            (a - b).abs() <= 8.0 * ulp,
            "laplace draw diverged beyond rounding: {a} vs {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random signed values inside random widths: the bounded sign test
    /// agrees with plaintext for every policy.
    #[test]
    fn bounded_ltz_parity(k in 2u32..24, raw in proptest::collection::vec(any::<i64>(), 1..6)) {
        let edge = (1i64 << (k - 1)) - 1;
        let vals: Vec<i64> = raw.iter().map(|v| v.rem_euclid(2 * edge + 1) - edge).collect();
        let want: Vec<u64> = vals.iter().map(|&v| u64::from(v < 0)).collect();
        for mode in [CompareBits::Auto, CompareBits::Full] {
            let got = mpc_mode(2, mode, |e| {
                let shares: Vec<Share> =
                    vals.iter().map(|&v| e.constant(Fp::from_i64(v))).collect();
                let signs = e.ltz_vec_bounded(&shares, k);
                e.open_vec(&signs).iter().map(|v| v.value()).collect::<Vec<_>>()
            });
            prop_assert_eq!(&got[0], &want);
        }
    }

    /// Two-sided LTZ agrees with two one-sided tests on random inputs.
    #[test]
    fn ltz_pair_parity(k in 3u32..20, raw in proptest::collection::vec(any::<i64>(), 1..6)) {
        let edge = (1i64 << (k - 1)) - 1;
        let vals: Vec<i64> = raw.iter().map(|v| v.rem_euclid(2 * edge + 1) - edge).collect();
        let got = mpc_mode(2, CompareBits::Auto, |e| {
            let shares: Vec<Share> = vals.iter().map(|&v| e.constant(Fp::from_i64(v))).collect();
            let (neg, pos) = e.ltz_pair_vec(&shares, k);
            let n = e.open_vec(&neg).iter().map(|v| v.value()).collect::<Vec<_>>();
            let p = e.open_vec(&pos).iter().map(|v| v.value()).collect::<Vec<_>>();
            (n, p)
        });
        let want_neg: Vec<u64> = vals.iter().map(|&v| u64::from(v < 0)).collect();
        let want_pos: Vec<u64> = vals.iter().map(|&v| u64::from(v > 0)).collect();
        prop_assert_eq!(&got[0].0, &want_neg);
        prop_assert_eq!(&got[0].1, &want_pos);
    }

    /// Bounded mod2m agrees with plaintext on random inputs.
    #[test]
    fn bounded_mod2m_parity(k in 3u32..30, raw in proptest::collection::vec(any::<u64>(), 1..6)) {
        let t = k - 1;
        let vals: Vec<u64> = raw.iter().map(|v| v % (1u64 << k)).collect();
        let want: Vec<u64> = vals.iter().map(|&v| v & ((1 << t) - 1)).collect();
        let got = mpc_mode(2, CompareBits::Auto, |e| {
            let shares: Vec<Share> = vals.iter().map(|&v| e.constant(Fp::new(v))).collect();
            let low = e.mod2m_vec_bounded(&shares, t, k);
            e.open_vec(&low).iter().map(|v| v.value()).collect::<Vec<_>>()
        });
        prop_assert_eq!(&got[0], &want);
    }
}
