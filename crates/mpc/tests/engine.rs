//! Multi-party integration tests for the MPC engine: every protocol is run
//! with real threads and message passing, and checked against plaintext
//! reference computations.

use pivot_mpc::{dp, FixedConfig, Fp, MpcEngine, Share};
use pivot_transport::run_parties;

const SEED: u64 = 0xD15EA5E;

/// Run an SPMD closure over `m` parties and return the per-party results.
fn mpc<T: Send>(m: usize, f: impl Fn(&mut MpcEngine<'_>) -> T + Send + Sync) -> Vec<T> {
    run_parties(m, |ep| {
        let mut engine = MpcEngine::new(&ep, SEED, FixedConfig::default());
        f(&mut engine)
    })
}

fn cfg() -> FixedConfig {
    FixedConfig::default()
}

#[test]
fn share_and_open_inputs() {
    let results = mpc(3, |e| {
        let secrets = [Fp::new(10), Fp::new(20), Fp::from_i64(-5)];
        let shares = e.share_input(1, if e.party() == 1 { Some(&secrets) } else { None });
        e.open_vec(&shares)
    });
    for r in results {
        assert_eq!(r[0], Fp::new(10));
        assert_eq!(r[1], Fp::new(20));
        assert_eq!(r[2], Fp::from_i64(-5));
    }
}

#[test]
fn beaver_multiplication() {
    let results = mpc(3, |e| {
        let a = e.constant(Fp::from_i64(-7));
        let b = e.constant(Fp::new(6));
        let c = e.mul(a, b);
        e.open(c).to_i64()
    });
    assert!(results.iter().all(|&r| r == -42));
}

#[test]
fn vectorized_multiplication() {
    let results = mpc(2, |e| {
        let a: Vec<Share> = (0..50).map(|i| e.constant(Fp::new(i))).collect();
        let b: Vec<Share> = (0..50).map(|i| e.constant(Fp::new(i + 1))).collect();
        let c = e.mul_vec(&a, &b);
        e.open_vec(&c)
    });
    for r in results {
        for i in 0..50u64 {
            assert_eq!(r[i as usize].value(), i * (i + 1));
        }
    }
}

#[test]
fn fixed_point_multiplication() {
    let results = mpc(3, |e| {
        let a = e.constant_f64(2.5);
        let b = e.constant_f64(-4.25);
        let c = e.fixmul_vec(&[a], &[b]);
        let v = e.open(c[0]);
        e.cfg.decode(v)
    });
    for r in results {
        assert!((r - -10.625).abs() < 1e-4, "got {r}");
    }
}

#[test]
fn truncation_shifts_values() {
    let results = mpc(2, |e| {
        let x = e.constant(Fp::new(1000 << 8));
        let t = e.trunc_vec(&[x], 8);
        e.open(t[0]).to_i64()
    });
    // ±1 probabilistic error allowed.
    for r in results {
        assert!((r - 1000).abs() <= 1, "got {r}");
    }
}

#[test]
fn truncation_handles_negatives() {
    let results = mpc(2, |e| {
        let x = e.constant(Fp::from_i64(-(1000 << 8)));
        let t = e.trunc_vec(&[x], 8);
        e.open(t[0]).to_i64()
    });
    for r in results {
        assert!((r + 1000).abs() <= 1, "got {r}");
    }
}

#[test]
fn ltz_detects_signs() {
    let results = mpc(3, |e| {
        let xs = [
            e.constant(Fp::from_i64(-1)),
            e.constant(Fp::ZERO),
            e.constant(Fp::new(1)),
            e.constant(Fp::from_i64(-123456)),
            e.constant(Fp::new(99999)),
            e.constant_f64(-0.001),
        ];
        let signs = e.ltz_vec(&xs);
        let opened = e.open_vec(&signs);
        opened.iter().map(|v| v.value()).collect::<Vec<_>>()
    });
    for r in results {
        assert_eq!(r, vec![1, 0, 0, 1, 0, 1]);
    }
}

#[test]
fn comparison_lt() {
    let results = mpc(2, |e| {
        let a = [e.constant_f64(1.5), e.constant_f64(3.0)];
        let b = [e.constant_f64(2.0), e.constant_f64(-3.0)];
        let lt = e.lt_vec(&a, &b);
        e.open_vec(&lt)
            .iter()
            .map(|v| v.value())
            .collect::<Vec<_>>()
    });
    for r in results {
        assert_eq!(r, vec![1, 0]);
    }
}

#[test]
fn oblivious_select() {
    let results = mpc(2, |e| {
        let cond = [e.constant(Fp::ONE), e.constant(Fp::ZERO)];
        let a = [e.constant(Fp::new(111)), e.constant(Fp::new(222))];
        let b = [e.constant(Fp::new(333)), e.constant(Fp::new(444))];
        let sel = e.select_vec(&cond, &a, &b);
        e.open_vec(&sel)
            .iter()
            .map(|v| v.value())
            .collect::<Vec<_>>()
    });
    for r in results {
        assert_eq!(r, vec![111, 444]);
    }
}

#[test]
fn mod2m_extracts_low_bits() {
    let results = mpc(2, |e| {
        let x = e.constant(Fp::new(0b1011_0110));
        let low = e.mod2m_vec(&[x], 4);
        e.open(low[0]).value()
    });
    for r in results {
        assert_eq!(r, 0b0110);
    }
}

#[test]
fn argmax_tournament_and_sequential_agree() {
    let vals = [3.0f64, -1.0, 7.5, 7.25, 0.0, 2.0];
    let results = mpc(3, |e| {
        let shares: Vec<Share> = vals.iter().map(|&v| e.constant_f64(v)).collect();
        let (idx_t, max_t) = e.argmax(&shares);
        let (idx_s, max_s) = e.argmax_sequential(&shares);
        let opened = e.open_vec(&[idx_t, max_t, idx_s, max_s]);
        (
            opened[0].value(),
            e.cfg.decode(opened[1]),
            opened[2].value(),
            e.cfg.decode(opened[3]),
        )
    });
    for (it, mt, is, ms) in results {
        assert_eq!(it, 2);
        assert_eq!(is, 2);
        assert!((mt - 7.5).abs() < 1e-4);
        assert!((ms - 7.5).abs() < 1e-4);
    }
}

#[test]
fn onehot_encodes_index() {
    let results = mpc(2, |e| {
        let idx = e.constant(Fp::new(3));
        let hot = e.onehot_vec(idx, 6);
        e.open_vec(&hot)
            .iter()
            .map(|v| v.value())
            .collect::<Vec<_>>()
    });
    for r in results {
        assert_eq!(r, vec![0, 0, 0, 1, 0, 0]);
    }
}

#[test]
fn reciprocal_accuracy() {
    let denoms = [1.0f64, 2.0, 3.0, 10.0, 100.0, 777.0, 1000.0];
    let results = mpc(2, |e| {
        let d: Vec<Share> = denoms.iter().map(|&v| e.constant_f64(v)).collect();
        let r = e.recip_vec(&d, 1024.0);
        let opened = e.open_vec(&r);
        opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>()
    });
    for r in results {
        for (got, want) in r.iter().zip(denoms.iter().map(|d| 1.0 / d)) {
            assert!(
                (got - want).abs() < 1e-3 + want * 1e-3,
                "reciprocal got {got}, want {want}"
            );
        }
    }
}

#[test]
fn division() {
    let results = mpc(3, |e| {
        let a = [e.constant_f64(10.0), e.constant_f64(-9.0)];
        let b = [e.constant_f64(4.0), e.constant_f64(3.0)];
        let q = e.div_vec(&a, &b, 16.0);
        let opened = e.open_vec(&q);
        opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>()
    });
    for r in results {
        assert!((r[0] - 2.5).abs() < 1e-3, "10/4 got {}", r[0]);
        assert!((r[1] + 3.0).abs() < 1e-2, "-9/3 got {}", r[1]);
    }
}

#[test]
fn exponential_approximation() {
    let xs = [0.0f64, 1.0, -1.0, 2.0, -3.0];
    let results = mpc(2, |e| {
        let shares: Vec<Share> = xs.iter().map(|&v| e.constant_f64(v)).collect();
        let ex = e.exp_vec(&shares);
        let opened = e.open_vec(&ex);
        opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>()
    });
    for r in results {
        for (got, x) in r.iter().zip(xs) {
            let want = x.exp();
            let rel = (got - want).abs() / want;
            assert!(rel < 0.02, "exp({x}) got {got}, want {want}");
        }
    }
}

#[test]
fn natural_log_on_unit_interval() {
    let ys = [1.0f64, 0.9, 0.5, 0.25];
    let results = mpc(2, |e| {
        let shares: Vec<Share> = ys.iter().map(|&v| e.constant_f64(v)).collect();
        let ln = e.ln_unit_vec(&shares);
        let opened = e.open_vec(&ln);
        opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>()
    });
    for r in results {
        for (got, y) in r.iter().zip(ys) {
            let want = y.ln();
            assert!((got - want).abs() < 0.05, "ln({y}) got {got}, want {want}");
        }
    }
}

#[test]
fn softmax_sums_to_one() {
    let logits = [1.0f64, 2.0, 0.5, -1.0];
    let results = mpc(2, |e| {
        let shares: Vec<Share> = logits.iter().map(|&v| e.constant_f64(v)).collect();
        let sm = e.softmax_rows(&shares, 4);
        let opened = e.open_vec(&sm);
        opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>()
    });
    for r in results {
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 0.02, "softmax sums to {total}");
        // Order preserved: logit 1 (2.0) largest, logit 3 (-1.0) smallest.
        assert!(r[1] > r[0] && r[0] > r[2] && r[2] > r[3], "{r:?}");
        // Cross-check against plaintext softmax.
        let max = 2.0f64;
        let exps: Vec<f64> = logits.iter().map(|x| (x - max).exp()).collect();
        let z: f64 = exps.iter().sum();
        for (got, want) in r.iter().zip(exps.iter().map(|e| e / z)) {
            assert!((got - want).abs() < 0.02, "got {got}, want {want}");
        }
    }
}

#[test]
fn clamped_softmax_matches_full_width_and_narrows_comparisons() {
    let logits = [1.0f64, 2.0, 0.5, -1.0, -0.25, 1.5, 0.0, 0.75];
    // |logit| ≤ 2: the clamp runs at the width that bound justifies. The
    // narrowing only engages under a bounded-width policy — the Full
    // policy pins every comparison to `int_bits`.
    let results = mpc(2, |e| {
        e.configure_comparisons(pivot_mpc::CompareBits::Auto, 64);
        let shares: Vec<Share> = logits.iter().map(|&v| e.constant_f64(v)).collect();
        let bits = |e: &pivot_mpc::MpcEngine<'_>| -> u64 {
            e.comparison_snapshot()
                .widths
                .iter()
                .map(|&(k, n)| k as u64 * n)
                .sum()
        };
        let full = e.softmax_rows(&shares, 4);
        let width_before = bits(e);
        let clamped = e.softmax_rows_clamped(&shares, 4, 2.0);
        let width_clamped = bits(e) - width_before;
        let opened_full = e.open_vec(&full);
        let opened_clamped = e.open_vec(&clamped);
        let full: Vec<f64> = opened_full.iter().map(|&v| e.cfg.decode(v)).collect();
        let clamped: Vec<f64> = opened_clamped.iter().map(|&v| e.cfg.decode(v)).collect();
        (full, clamped, width_before, width_clamped)
    });
    for (full, clamped, width_full, width_clamped) in results {
        for (a, b) in full.iter().zip(&clamped) {
            assert!((a - b).abs() < 5e-4, "clamped {b} vs full {a}");
        }
        let total: f64 = clamped.iter().take(4).sum();
        assert!((total - 1.0).abs() < 0.02, "row sums to {total}");
        assert!(
            width_clamped < width_full,
            "bounded clamp must compare fewer bits ({width_clamped} vs {width_full})"
        );
    }
}

#[test]
fn clamped_exp_matches_full_width() {
    let xs = [-3.0f64, -1.0, 0.0, 0.5, 2.0];
    let results = mpc(2, |e| {
        let shares: Vec<Share> = xs.iter().map(|&v| e.constant_f64(v)).collect();
        let full = e.exp_vec(&shares);
        let clamped = e.exp_vec_clamped(&shares, 3.0);
        let a = e.open_vec(&full);
        let b = e.open_vec(&clamped);
        (
            a.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>(),
            b.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>(),
        )
    });
    for (full, clamped) in results {
        for (a, b) in full.iter().zip(&clamped) {
            assert!((a - b).abs() < 5e-4, "clamped {b} vs full {a}");
        }
    }
}

#[test]
fn laplace_sampler_statistics() {
    // Draw a batch of Laplace(0, 1) samples and sanity-check moments.
    let results = mpc(2, |e| {
        let samples = dp::laplace_sample_vec(e, 0.0, 1.0, 64);
        let opened = e.open_vec(&samples);
        opened.iter().map(|&v| e.cfg.decode(v)).collect::<Vec<_>>()
    });
    let samples = &results[0];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    // Laplace(0,1) has mean 0 and std sqrt(2); 64 samples → loose bounds.
    assert!(mean.abs() < 0.8, "sample mean {mean} too far from 0");
    let has_pos = samples.iter().any(|&s| s > 0.01);
    let has_neg = samples.iter().any(|&s| s < -0.01);
    assert!(has_pos && has_neg, "both signs should occur");
}

#[test]
fn exponential_mechanism_prefers_high_scores() {
    // One candidate has a much higher score; with ε=4, Δ=1 it should win
    // almost always.
    let results = mpc(2, |e| {
        let scores = [
            e.constant_f64(0.1),
            e.constant_f64(6.0),
            e.constant_f64(0.2),
        ];
        let idx = dp::exponential_mechanism(e, &scores, 4.0, 1.0);
        e.open(idx).value()
    });
    // All parties agree on the opened index; it is overwhelmingly 1.
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], 1);
}

#[test]
fn counters_track_operations() {
    let results = mpc(2, |e| {
        let a = e.constant(Fp::new(3));
        let b = e.constant(Fp::new(4));
        let _ = e.mul(a, b);
        let _ = e.ltz_vec(&[a]);
        let (rounds, mults, cmps, opens) = e.counters().snapshot();
        (rounds, mults, cmps, opens)
    });
    for (rounds, mults, cmps, opens) in results {
        assert!(rounds > 0);
        assert!(mults >= 1);
        assert_eq!(cmps, 1);
        assert!(opens > 0);
    }
}

#[test]
fn works_with_many_parties() {
    let results = mpc(6, |e| {
        let x = e.constant_f64(5.0);
        let y = e.constant_f64(-2.5);
        let p = e.fixmul_vec(&[x], &[y]);
        let v = e.open(p[0]);
        e.cfg.decode(v)
    });
    for r in results {
        assert!((r + 12.5).abs() < 1e-3);
    }
}

#[test]
fn fixed_config_is_honoured() {
    let narrow = FixedConfig {
        frac_bits: 10,
        int_bits: 30,
        kappa: 14,
    };
    let results = run_parties(2, |ep| {
        let mut e = MpcEngine::new(&ep, SEED, narrow);
        let a = e.constant(narrow.encode(1.5));
        let b = e.constant(narrow.encode(2.0));
        let c = e.fixmul_vec(&[a], &[b]);
        narrow.decode(e.open(c[0]))
    });
    for r in results {
        assert!((r - 3.0).abs() < 1e-2);
    }
}

#[test]
fn cfg_default_matches() {
    assert_eq!(cfg().frac_bits, 20);
}
