//! Modular arithmetic: gcd, extended gcd, modular inverse, and modular
//! exponentiation (dispatching to Montgomery for odd moduli).

use crate::{BigInt, BigUint, Montgomery};

/// Greatest common divisor (binary GCD).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let mut a = a.clone();
    let mut b = b.clone();
    let az = a.trailing_zeros().expect("nonzero");
    let bz = b.trailing_zeros().expect("nonzero");
    let common = az.min(bz);
    a = a.shr_bits(az);
    b = b.shr_bits(bz);
    loop {
        // Both odd here.
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b.sub_assign_ref(&a);
        if b.is_zero() {
            return a.shl_bits(common);
        }
        b = b.shr_bits(b.trailing_zeros().expect("nonzero"));
    }
}

/// Least common multiple.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn egcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let mut r0 = BigInt::from(a.clone());
    let mut r1 = BigInt::from(b.clone());
    let (mut x0, mut x1) = (BigInt::one(), BigInt::zero());
    let (mut y0, mut y1) = (BigInt::zero(), BigInt::one());
    while !r1.is_zero() {
        let q = BigInt::from(r0.magnitude().div_rem(r1.magnitude()).0);
        // r0, r1 stay non-negative throughout so quotient from magnitudes is fine.
        let r2 = &r0 - &(&q * &r1);
        let x2 = &x0 - &(&q * &x1);
        let y2 = &y0 - &(&q * &y1);
        r0 = r1;
        r1 = r2;
        x0 = x1;
        x1 = x2;
        y0 = y1;
        y1 = y2;
    }
    let g = r0.to_biguint().expect("gcd is non-negative");
    (g, x0, y0)
}

/// Modular inverse of `a` modulo `m`, if `gcd(a, m) == 1`.
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    let a = a.rem_of(m);
    if a.is_zero() {
        return None;
    }
    let (g, x, _) = egcd(&a, m);
    if !g.is_one() {
        return None;
    }
    Some(x.rem_euclid(m))
}

/// `base^exp mod modulus`.
///
/// Odd moduli go through Montgomery exponentiation; even moduli (never the
/// case in Paillier, but supported for completeness) use square-and-multiply
/// with explicit reduction.
pub fn mod_pow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    assert!(!modulus.is_zero(), "mod_pow with zero modulus");
    if modulus.is_one() {
        return BigUint::zero();
    }
    if modulus.is_odd() {
        return Montgomery::new(modulus).pow(base, exp);
    }
    // Fallback: plain binary exponentiation for even moduli.
    let mut result = BigUint::one();
    let mut acc = base.rem_of(modulus);
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = (&result * &acc).rem_of(modulus);
        }
        acc = (&acc * &acc).rem_of(modulus);
    }
    result
}

/// `(a * b) mod m` without constructing a Montgomery context.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    (a * b).rem_of(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn gcd_small() {
        assert_eq!(gcd(&big(12), &big(18)), big(6));
        assert_eq!(gcd(&big(17), &big(5)), big(1));
        assert_eq!(gcd(&big(0), &big(5)), big(5));
        assert_eq!(gcd(&big(5), &big(0)), big(5));
        assert_eq!(gcd(&big(48), &big(180)), big(12));
    }

    #[test]
    fn lcm_small() {
        assert_eq!(lcm(&big(4), &big(6)), big(12));
        assert_eq!(lcm(&big(0), &big(6)), BigUint::zero());
    }

    #[test]
    fn egcd_bezout_identity() {
        let a = big(240);
        let b = big(46);
        let (g, x, y) = egcd(&a, &b);
        assert_eq!(g, big(2));
        let lhs = &(&BigInt::from(a) * &x) + &(&BigInt::from(b) * &y);
        assert_eq!(lhs, BigInt::from(g));
    }

    #[test]
    fn inverse_round_trip() {
        let m = big(1_000_000_007);
        for a in [2u128, 3, 999_999_999, 123_456_789] {
            let inv = mod_inverse(&big(a), &m).expect("coprime");
            assert_eq!((&big(a) * &inv).rem_of(&m), BigUint::one(), "a = {a}");
        }
    }

    #[test]
    fn inverse_fails_when_not_coprime() {
        assert_eq!(mod_inverse(&big(6), &big(9)), None);
        assert_eq!(mod_inverse(&big(0), &big(9)), None);
        assert_eq!(mod_inverse(&big(3), &BigUint::one()), None);
    }

    #[test]
    fn mod_pow_matches_u128_reference() {
        // Reference computed with u128 arithmetic on small values.
        fn ref_pow(mut b: u128, mut e: u128, m: u128) -> u128 {
            let mut r = 1u128;
            b %= m;
            while e > 0 {
                if e & 1 == 1 {
                    r = r * b % m;
                }
                b = b * b % m;
                e >>= 1;
            }
            r
        }
        let cases = [
            (3u128, 1000u128, 1_000_000_007u128), // odd modulus → Montgomery
            (2, 127, 1_000_000_007),
            (5, 117, 1 << 32), // even modulus → fallback
            (7, 0, 13),
            (0, 5, 13),
        ];
        for (b, e, m) in cases {
            assert_eq!(
                mod_pow(&big(b), &big(e), &big(m)),
                big(ref_pow(b, e, m)),
                "{b}^{e} mod {m}"
            );
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // p prime → a^(p-1) ≡ 1 (mod p)
        let p = big(2_147_483_647); // Mersenne prime 2^31 - 1
        for a in [2u128, 3, 65_537] {
            assert_eq!(
                mod_pow(&big(a), &(&p - &BigUint::one()), &p),
                BigUint::one()
            );
        }
    }
}
