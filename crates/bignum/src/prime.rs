//! Primality testing and prime generation.
//!
//! Miller–Rabin with a small-prime sieve front end, plus safe-prime
//! generation (`p = 2p' + 1`) needed by threshold Paillier key dealing.

use crate::{mod_pow, rng, BigUint, Montgomery};
use rand::Rng;

/// Primes below 1000, used both for trial division and sieving candidates.
const SMALL_PRIMES: &[u64] = &[
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Miller–Rabin rounds for a 2^-80 error bound on random candidates.
const MR_ROUNDS: u32 = 40;

/// Probabilistic primality test (small-prime sieve + Miller–Rabin).
pub fn is_prime<R: Rng + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if let Some(small) = n.to_u64() {
        if small < 2 {
            return false;
        }
        if SMALL_PRIMES.contains(&small) {
            return true;
        }
    }
    if n.is_even() {
        return false;
    }
    for &p in SMALL_PRIMES {
        let (_, r) = n.div_rem_limb(p);
        if r == 0 {
            return n.to_u64() == Some(p);
        }
    }
    miller_rabin(n, MR_ROUNDS, rng)
}

/// Miller–Rabin with `rounds` random bases. `n` must be odd and > 3.
pub fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: u32, rng: &mut R) -> bool {
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let s = n_minus_1.trailing_zeros().expect("n > 1 is odd so n-1 > 0");
    let d = n_minus_1.shr_bits(s);
    let mont = Montgomery::new(n);

    'witness: for _ in 0..rounds {
        let two = BigUint::from_u64(2);
        let a = rng::gen_range(rng, &two, &n_minus_1);
        let mut x = mont.pow(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = mont.mul(&x, &x.clone());
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random prime with exactly `bits` bits.
pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = rng::gen_exact_bits(rng, bits);
        if candidate.is_even() {
            candidate.add_assign_ref(&BigUint::one());
        }
        if candidate.bits() != bits {
            continue; // the +1 overflowed the width
        }
        if is_prime(&candidate, rng) {
            return candidate;
        }
    }
}

/// Generate a *safe prime* `p = 2q + 1` (both prime) with exactly `bits` bits.
///
/// Sieves `q` and `p` simultaneously against the small-prime table before
/// running Miller–Rabin on either, which makes ~512-bit safe primes practical.
pub fn gen_safe_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
    assert!(bits >= 4, "safe primes need at least 4 bits");
    loop {
        // q with bits-1 bits, odd, and q ≡ 1 (mod 2) forced below.
        let mut q = rng::gen_exact_bits(rng, bits - 1);
        if q.is_even() {
            q.add_assign_ref(&BigUint::one());
        }
        if q.bits() != bits - 1 {
            continue;
        }
        // p = 2q + 1
        let p = {
            let mut p = q.shl_bits(1);
            p.add_assign_ref(&BigUint::one());
            p
        };
        // Joint small-prime sieve: p and q must both avoid all small factors.
        let mut sieved_out = false;
        for &sp in SMALL_PRIMES.iter().skip(1) {
            let (_, rq) = q.div_rem_limb(sp);
            let (_, rp) = p.div_rem_limb(sp);
            if (rq == 0 && q.to_u64() != Some(sp)) || (rp == 0 && p.to_u64() != Some(sp)) {
                sieved_out = true;
                break;
            }
        }
        if sieved_out {
            continue;
        }
        // Cheap Fermat filter on q before the expensive full tests.
        if mod_pow(&BigUint::from_u64(2), &(&q - &BigUint::one()), &q) != BigUint::one() {
            continue;
        }
        if is_prime(&q, rng) && is_prime(&p, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn classifies_small_numbers() {
        let mut r = rng();
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 541, 7919, 104729];
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 561, 1105, 104730]; // incl. Carmichael 561, 1105
        for p in primes {
            assert!(is_prime(&BigUint::from_u64(p), &mut r), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(&BigUint::from_u64(c), &mut r), "{c} is composite");
        }
    }

    #[test]
    fn recognises_known_large_prime() {
        // 2^127 - 1 is a Mersenne prime.
        let p = BigUint::pow2(127) - BigUint::one();
        assert!(is_prime(&p, &mut rng()));
        // 2^128 - 1 is famously composite.
        let c = BigUint::pow2(128) - BigUint::one();
        assert!(!is_prime(&c, &mut rng()));
    }

    #[test]
    fn generated_primes_have_requested_width() {
        let mut r = rng();
        for bits in [16u32, 32, 64, 128] {
            let p = gen_prime(&mut r, bits);
            assert_eq!(p.bits(), bits);
            assert!(is_prime(&p, &mut r));
        }
    }

    #[test]
    fn safe_prime_structure() {
        let mut r = rng();
        let p = gen_safe_prime(&mut r, 64);
        assert_eq!(p.bits(), 64);
        assert!(is_prime(&p, &mut r));
        let q = (&p - &BigUint::one()).shr_bits(1);
        assert!(is_prime(&q, &mut r), "q = (p-1)/2 must be prime");
    }

    #[test]
    fn rejects_even() {
        assert!(!is_prime(&BigUint::from_u64(1 << 20), &mut rng()));
    }
}
