//! Property-based tests for the big-integer substrate: ring laws, division
//! invariants, and agreement between the fast paths (Karatsuba, Montgomery)
//! and naive reference computations.

use crate::{egcd, gcd, mod_inverse, mod_pow, BigInt, BigUint, Montgomery};
use proptest::prelude::*;

/// Arbitrary BigUint of up to ~320 bits built from raw limbs.
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..5).prop_map(BigUint::from_limbs)
}

fn arb_nonzero() -> impl Strategy<Value = BigUint> {
    arb_biguint().prop_filter("nonzero", |v| !v.is_zero())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn sub_inverts_add(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_reconstructs(a in arb_biguint(), b in arb_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_round_trip(a in arb_biguint(), s in 0u32..200) {
        prop_assert_eq!(a.shl_bits(s).shr_bits(s), a);
    }

    #[test]
    fn bytes_round_trip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn decimal_round_trip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn gcd_divides_both(a in arb_nonzero(), b in arb_nonzero()) {
        let g = gcd(&a, &b);
        prop_assert!(a.rem_of(&g).is_zero());
        prop_assert!(b.rem_of(&g).is_zero());
    }

    #[test]
    fn egcd_bezout(a in arb_nonzero(), b in arb_nonzero()) {
        let (g, x, y) = egcd(&a, &b);
        let lhs = &(&BigInt::from(a) * &x) + &(&BigInt::from(b) * &y);
        prop_assert_eq!(lhs, BigInt::from(g));
    }

    #[test]
    fn montgomery_matches_naive_mul(a in arb_biguint(), b in arb_biguint(), m in arb_nonzero()) {
        // Force odd modulus > 1.
        let mut m = m;
        if m.is_even() { m.add_assign_ref(&BigUint::one()); }
        if m.is_one() { m = BigUint::from_u64(3); }
        let ctx = Montgomery::new(&m);
        let expect = (&a.rem_of(&m) * &b.rem_of(&m)).rem_of(&m);
        prop_assert_eq!(ctx.mul(&a.rem_of(&m), &b.rem_of(&m)), expect);
    }

    #[test]
    fn mod_pow_matches_iterated_mul(a in arb_biguint(), e in 0u32..40, m in arb_nonzero()) {
        let mut m = m;
        if m.is_one() { m = BigUint::from_u64(2); }
        let mut expect = BigUint::one().rem_of(&m);
        let base = a.rem_of(&m);
        for _ in 0..e {
            expect = (&expect * &base).rem_of(&m);
        }
        prop_assert_eq!(mod_pow(&a, &BigUint::from_u64(e as u64), &m), expect);
    }

    #[test]
    fn sliding_window_pow_matches_mod_pow(a in arb_biguint(), e in arb_biguint(), m in arb_nonzero()) {
        // Montgomery::pow uses 4-bit sliding windows; check it against a
        // naive square-and-multiply reference AND the generic mod_pow
        // entry point, over multi-limb exponents (so window boundaries,
        // zero runs, and the trailing partial window all get exercised).
        let mut m = m;
        if m.is_even() { m.add_assign_ref(&BigUint::one()); }
        if m.is_one() { m = BigUint::from_u64(3); }
        let ctx = Montgomery::new(&m);
        let base = a.rem_of(&m);
        let mut expect = BigUint::one().rem_of(&m);
        let mut acc = base.clone();
        for i in 0..e.bits() {
            if e.bit(i) {
                expect = (&expect * &acc).rem_of(&m);
            }
            acc = (&acc * &acc).rem_of(&m);
        }
        prop_assert_eq!(ctx.pow(&a, &e), expect.clone());
        prop_assert_eq!(mod_pow(&a, &e, &m), expect);
    }

    #[test]
    fn multi_pow_matches_naive_product(
        bases in proptest::collection::vec(arb_biguint(), 0..5),
        exps in proptest::collection::vec(arb_biguint(), 0..5),
        m in arb_nonzero(),
    ) {
        // Interleaved-window multi-exponentiation must agree with the
        // naive Π mod_pow(baseᵢ, expᵢ) product for every base count and
        // every window width the adaptive rule can pick (exponents here
        // span 0..~320 bits, covering w = 1..=3; the 384+-bit w = 4 arm
        // is exercised by the dedicated unit test below).
        let mut m = m;
        if m.is_even() { m.add_assign_ref(&BigUint::one()); }
        if m.is_one() { m = BigUint::from_u64(3); }
        let ctx = Montgomery::new(&m);
        let k = bases.len().min(exps.len());
        let pairs: Vec<(&BigUint, &BigUint)> =
            bases[..k].iter().zip(&exps[..k]).collect();
        let mut expect = BigUint::one().rem_of(&m);
        for (b, e) in &pairs {
            expect = (&expect * &mod_pow(b, e, &m)).rem_of(&m);
        }
        prop_assert_eq!(ctx.multi_pow(&pairs), expect);
    }

    #[test]
    fn scheduled_pow_matches_pow_mont(base in arb_biguint(), exp in arb_biguint(), m in arb_nonzero()) {
        // The shared-recoding path (fixed exponent replayed across a batch
        // of bases) must be bit-identical to the per-call sliding-window
        // scan of Montgomery::pow — the partial-decryption parity contract.
        let mut m = m;
        if m.is_even() { m.add_assign_ref(&BigUint::one()); }
        if m.is_one() { m = BigUint::from_u64(3); }
        let ctx = Montgomery::new(&m);
        let sched = crate::ExponentSchedule::recode(&exp);
        prop_assert_eq!(ctx.pow_scheduled(&base, &sched), ctx.pow(&base, &exp));
    }

    #[test]
    fn mod_inverse_is_inverse(a in arb_nonzero(), m in arb_nonzero()) {
        let mut m = m;
        if m.is_one() { m = BigUint::from_u64(5); }
        if let Some(inv) = mod_inverse(&a, &m) {
            prop_assert_eq!((&a * &inv).rem_of(&m), BigUint::one());
        } else {
            // No inverse must mean gcd != 1 (or a ≡ 0).
            let g = gcd(&a.rem_of(&m), &m);
            prop_assert!(!g.is_one() || a.rem_of(&m).is_zero());
        }
    }

    #[test]
    fn signed_arithmetic_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        let (ba, bb) = (BigInt::from_i128(a), BigInt::from_i128(b));
        prop_assert_eq!(&ba + &bb, BigInt::from_i128(a + b));
        prop_assert_eq!(&ba - &bb, BigInt::from_i128(a - b));
        prop_assert_eq!(&ba * &bb, BigInt::from_i128(a * b));
        prop_assert_eq!(ba.cmp(&bb), a.cmp(&b));
    }
}
