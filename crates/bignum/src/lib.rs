//! Arbitrary-precision integer arithmetic for the Pivot reproduction.
//!
//! The original Pivot implementation (Wu et al., VLDB 2020) uses GMP for
//! big-integer computation. This crate is a from-scratch replacement that
//! provides everything the threshold Paillier cryptosystem and the MPC layer
//! need:
//!
//! * [`BigUint`] — unsigned magnitudes (little-endian `u64` limbs) with
//!   schoolbook + Karatsuba multiplication and Knuth Algorithm D division.
//! * [`BigInt`] — signed integers for extended-gcd style computations.
//! * [`Montgomery`] — CIOS Montgomery multiplication and windowed modular
//!   exponentiation for odd moduli (the hot path of Paillier).
//! * [`prime`] — Miller–Rabin testing plus (safe-)prime generation.
//! * [`rng`] — uniform random sampling of big integers.
//!
//! Everything is written for clarity-first correctness, then the hot paths
//! (Montgomery multiplication, exponentiation) are kept allocation-light per
//! the Rust performance guidance this project follows.

mod int;
mod modular;
mod montgomery;
pub mod prime;
pub mod rng;
mod uint;

pub use int::{BigInt, Sign};
pub use modular::{egcd, gcd, lcm, mod_inverse, mod_mul, mod_pow};
pub use montgomery::{ExponentSchedule, Montgomery};
pub use uint::{BigUint, Limb, LIMB_BITS};

#[cfg(test)]
mod proptests;
