//! Signed arbitrary-precision integers (sign + magnitude), used mainly by the
//! extended Euclidean algorithm and the signed fixed-point encodings of the
//! protocol layers.

use crate::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero always has [`Sign::Zero`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

/// Signed arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value 0.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Construct from a sign and magnitude (canonicalizing zero).
    pub fn from_parts(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude needs a nonzero sign");
            BigInt { sign, mag }
        }
    }

    /// Construct from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_parts(Sign::Positive, BigUint::from_u64(v as u64)),
            Ordering::Less => {
                BigInt::from_parts(Sign::Negative, BigUint::from_u64(v.unsigned_abs()))
            }
        }
    }

    /// Construct from an `i128`.
    pub fn from_i128(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_parts(Sign::Positive, BigUint::from_u128(v as u128)),
            Ordering::Less => {
                BigInt::from_parts(Sign::Negative, BigUint::from_u128(v.unsigned_abs()))
            }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// The non-negative value as a `BigUint`, or `None` if negative.
    pub fn to_biguint(&self) -> Option<BigUint> {
        match self.sign {
            Sign::Negative => None,
            _ => Some(self.mag.clone()),
        }
    }

    /// Euclidean remainder in `[0, modulus)`.
    pub fn rem_euclid(&self, modulus: &BigUint) -> BigUint {
        let r = self.mag.rem_of(modulus);
        match self.sign {
            Sign::Negative if !r.is_zero() => modulus - &r,
            _ => r,
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag,
            }
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt {
            sign,
            mag: self.mag,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_parts(a, &self.mag + &rhs.mag),
            (a, _) => {
                // Opposite signs: subtract the smaller magnitude.
                match self.mag.cmp(&rhs.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt::from_parts(a, &self.mag - &rhs.mag),
                    Ordering::Less => BigInt::from_parts(
                        if a == Sign::Positive {
                            Sign::Negative
                        } else {
                            Sign::Positive
                        },
                        &rhs.mag - &self.mag,
                    ),
                }
            }
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_parts(sign, &self.mag * &rhs.mag)
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Negative => other.mag.cmp(&self.mag),
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.mag.cmp(&other.mag),
            },
            ord => ord,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i128) -> BigInt {
        BigInt::from_i128(v)
    }

    #[test]
    fn add_sign_combinations() {
        for a in [-7i128, -1, 0, 3, 12] {
            for b in [-9i128, -3, 0, 1, 15] {
                assert_eq!(&int(a) + &int(b), int(a + b), "{a} + {b}");
                assert_eq!(&int(a) - &int(b), int(a - b), "{a} - {b}");
                assert_eq!(&int(a) * &int(b), int(a * b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-5) < int(-1));
        assert!(int(-1) < int(0));
        assert!(int(0) < int(1));
        assert!(int(3) < int(10));
    }

    #[test]
    fn rem_euclid_wraps_negatives() {
        let m = BigUint::from_u64(7);
        assert_eq!(int(10).rem_euclid(&m), BigUint::from_u64(3));
        assert_eq!(int(-10).rem_euclid(&m), BigUint::from_u64(4));
        assert_eq!(int(-7).rem_euclid(&m), BigUint::zero());
        assert_eq!(int(0).rem_euclid(&m), BigUint::zero());
    }

    #[test]
    fn neg_round_trip() {
        assert_eq!(-(-int(5)), int(5));
        assert_eq!(-int(0), int(0));
    }

    #[test]
    fn display() {
        assert_eq!(int(-42).to_string(), "-42");
        assert_eq!(int(0).to_string(), "0");
    }
}
