//! Uniform random sampling of big integers.

use crate::{BigUint, Limb, LIMB_BITS};
use rand::Rng;

/// Uniform random value in `[0, bound)`. Panics if `bound` is zero.
pub fn gen_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "empty sampling range");
    let bits = bound.bits();
    // Rejection sampling from [0, 2^bits): accepts with probability > 1/2.
    loop {
        let candidate = gen_bits(rng, bits);
        if candidate < *bound {
            return candidate;
        }
    }
}

/// Uniform random value in `[low, high)`.
pub fn gen_range<R: Rng + ?Sized>(rng: &mut R, low: &BigUint, high: &BigUint) -> BigUint {
    assert!(low < high, "empty sampling range");
    let width = high - low;
    low + &gen_below(rng, &width)
}

/// Uniform random value with at most `bits` bits.
pub fn gen_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(LIMB_BITS) as usize;
    let mut v: Vec<Limb> = (0..limbs).map(|_| rng.gen()).collect();
    let top_bits = bits % LIMB_BITS;
    if top_bits != 0 {
        v[limbs - 1] &= (1 << top_bits) - 1;
    }
    BigUint::from_limbs(v)
}

/// Random value with *exactly* `bits` bits (top bit forced to 1).
pub fn gen_exact_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
    assert!(bits > 0, "cannot sample a 0-bit value");
    let mut v = gen_bits(rng, bits);
    v.set_bit(bits - 1);
    v
}

/// Random unit of `Z_n^*`: uniform `r` in `[1, n)` with `gcd(r, n) = 1`.
pub fn gen_coprime<R: Rng + ?Sized>(rng: &mut R, n: &BigUint) -> BigUint {
    loop {
        let r = gen_below(rng, n);
        if !r.is_zero() && crate::gcd(&r, n).is_one() {
            return r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn below_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigUint::from_u64(1000);
        for _ in 0..200 {
            assert!(gen_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn exact_bits_has_exact_width() {
        let mut rng = StdRng::seed_from_u64(8);
        for bits in [1u32, 5, 64, 65, 200] {
            assert_eq!(gen_exact_bits(&mut rng, bits).bits(), bits);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let low = BigUint::from_u64(500);
        let high = BigUint::from_u64(600);
        for _ in 0..100 {
            let v = gen_range(&mut rng, &low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    fn coprime_is_coprime() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = BigUint::from_u64(2 * 3 * 5 * 7 * 11);
        for _ in 0..50 {
            let r = gen_coprime(&mut rng, &n);
            assert!(crate::gcd(&r, &n).is_one());
        }
    }

    #[test]
    fn distribution_covers_small_range() {
        // All residues of [0, 8) should appear within a few hundred draws.
        let mut rng = StdRng::seed_from_u64(11);
        let bound = BigUint::from_u64(8);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[gen_below(&mut rng, &bound).to_u64().unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
