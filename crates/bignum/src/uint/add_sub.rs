//! Addition and subtraction for [`BigUint`].

use super::{BigUint, Limb};
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// `a + b + carry`, returning the low limb and the new carry.
#[inline(always)]
pub(crate) fn adc(a: Limb, b: Limb, carry: &mut Limb) -> Limb {
    let sum = a as u128 + b as u128 + *carry as u128;
    *carry = (sum >> 64) as Limb;
    sum as Limb
}

/// `a - b - borrow`, returning the low limb and the new borrow (0 or 1).
#[inline(always)]
pub(crate) fn sbb(a: Limb, b: Limb, borrow: &mut Limb) -> Limb {
    let diff = (a as i128) - (b as i128) - (*borrow as i128);
    *borrow = u64::from(diff < 0);
    diff as Limb
}

impl BigUint {
    /// In-place `self += other`.
    pub fn add_assign_ref(&mut self, other: &BigUint) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            *limb = adc(*limb, b, &mut carry);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// In-place `self -= other`. Panics if `other > self` (debug and release).
    pub fn sub_assign_ref(&mut self, other: &BigUint) {
        assert!(
            *self >= *other,
            "BigUint subtraction underflow: minuend smaller than subtrahend"
        );
        let mut borrow = 0;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            *limb = sbb(*limb, b, &mut borrow);
        }
        debug_assert_eq!(borrow, 0);
        self.normalize();
    }

    /// Checked subtraction: `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            None
        } else {
            let mut out = self.clone();
            out.sub_assign_ref(other);
            Some(out)
        }
    }

    /// `|self - other|` — absolute difference, never panics.
    pub fn abs_diff(&self, other: &BigUint) -> BigUint {
        if self >= other {
            let mut out = self.clone();
            out.sub_assign_ref(other);
            out
        } else {
            let mut out = other.clone();
            out.sub_assign_ref(self);
            out
        }
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(mut self, rhs: BigUint) -> BigUint {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = big(u64::MAX as u128);
        let b = big(1);
        assert_eq!(&a + &b, big(1u128 << 64));
    }

    #[test]
    fn add_different_lengths() {
        let a = big(u128::MAX - 1);
        let b = big(1);
        assert_eq!(&a + &b, big(u128::MAX));
        assert_eq!(&b + &a, big(u128::MAX));
    }

    #[test]
    fn add_overflow_grows() {
        let a = big(u128::MAX);
        let sum = &a + &a;
        assert_eq!(sum.bits(), 129);
    }

    #[test]
    fn sub_basic() {
        assert_eq!(&big(100) - &big(58), big(42));
        assert_eq!(&big(1u128 << 64) - &big(1), big(u64::MAX as u128));
        assert_eq!(&big(5) - &big(5), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &big(1) - &big(2);
    }

    #[test]
    fn checked_sub_and_abs_diff() {
        assert_eq!(big(3).checked_sub(&big(5)), None);
        assert_eq!(big(5).checked_sub(&big(3)), Some(big(2)));
        assert_eq!(big(3).abs_diff(&big(5)), big(2));
        assert_eq!(big(5).abs_diff(&big(3)), big(2));
    }

    #[test]
    fn add_zero_identity() {
        let a = big(12345);
        assert_eq!(&a + &BigUint::zero(), a);
        assert_eq!(&BigUint::zero() + &a, a);
    }
}
