//! Formatting and parsing for [`BigUint`] (hex and decimal).

use super::BigUint;
use std::fmt;
use std::str::FromStr;

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    offending: char,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid digit {:?} in big integer literal",
            self.offending
        )
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// Lower-case hex string without prefix ("0" for zero).
    pub fn to_hex(&self) -> String {
        match self.limbs.last() {
            None => "0".to_string(),
            Some(top) => {
                let mut s = format!("{top:x}");
                for limb in self.limbs.iter().rev().skip(1) {
                    s.push_str(&format!("{limb:016x}"));
                }
                s
            }
        }
    }

    /// Parse a hex string (optionally prefixed with `0x`).
    pub fn from_hex(s: &str) -> Result<BigUint, ParseBigUintError> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        let mut out = BigUint::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let digit = c.to_digit(16).ok_or(ParseBigUintError { offending: c })? as u64;
            out = out.shl_bits(4);
            out.add_assign_ref(&BigUint::from_u64(digit));
        }
        Ok(out)
    }

    /// Decimal string.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Peel off 19 decimal digits at a time (10^19 < 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut v = self.clone();
        let mut parts = Vec::new();
        while !v.is_zero() {
            let (q, r) = v.div_rem_limb(CHUNK);
            parts.push(r);
            v = q;
        }
        let mut s = parts.pop().map(|p| p.to_string()).unwrap_or_default();
        for p in parts.iter().rev() {
            s.push_str(&format!("{p:019}"));
        }
        s
    }

    /// Parse a decimal string.
    pub fn from_decimal(s: &str) -> Result<BigUint, ParseBigUintError> {
        let mut out = BigUint::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let digit = c.to_digit(10).ok_or(ParseBigUintError { offending: c })? as u64;
            out.mul_limb(10);
            out.add_assign_ref(&BigUint::from_u64(digit));
        }
        Ok(out)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            BigUint::from_hex(hex)
        } else {
            BigUint::from_decimal(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let v = BigUint::from_u128(0xdead_beef_0123_4567_89ab_cdef_dead_beef);
        assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
        assert_eq!(BigUint::zero().to_hex(), "0");
        assert_eq!(BigUint::from_hex("0x10").unwrap(), BigUint::from_u64(16));
    }

    #[test]
    fn decimal_round_trip() {
        let v = BigUint::from_u128(340_282_366_920_938_463_463_374_607_431_768_211_455);
        assert_eq!(v.to_decimal(), "340282366920938463463374607431768211455");
        assert_eq!(BigUint::from_decimal(&v.to_decimal()).unwrap(), v);
        assert_eq!(BigUint::zero().to_decimal(), "0");
    }

    #[test]
    fn display_and_fromstr() {
        let v: BigUint = "123456789012345678901234567890".parse().unwrap();
        assert_eq!(v.to_string(), "123456789012345678901234567890");
        let h: BigUint = "0xff".parse().unwrap();
        assert_eq!(h, BigUint::from_u64(255));
    }

    #[test]
    fn bad_digit_rejected() {
        assert!(BigUint::from_decimal("12x").is_err());
        assert!(BigUint::from_hex("zz").is_err());
    }

    #[test]
    fn underscores_ignored() {
        assert_eq!(
            BigUint::from_decimal("1_000_000").unwrap(),
            BigUint::from_u64(1_000_000)
        );
    }
}
