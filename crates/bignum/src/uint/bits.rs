//! Bit-level operations for [`BigUint`]: shifts and bit access.

use super::{BigUint, Limb, LIMB_BITS};
use std::ops::{Shl, Shr};

impl BigUint {
    /// `self << bits` for arbitrary bit counts.
    pub fn shl_bits(&self, bits: u32) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS) as usize;
        let bit_shift = bits % LIMB_BITS;
        let mut limbs = vec![0 as Limb; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry: Limb = 0;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// `self >> bits` for arbitrary bit counts (floor).
    pub fn shr_bits(&self, bits: u32) -> BigUint {
        let limb_shift = (bits / LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut limbs = Vec::with_capacity(src.len());
        for (i, &l) in src.iter().enumerate() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            limbs.push((l >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
        }
        BigUint::from_limbs(limbs)
    }

    /// Test bit `i` (little-endian bit numbering; out-of-range bits are 0).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / LIMB_BITS) as usize;
        match self.limbs.get(limb) {
            Some(&l) => (l >> (i % LIMB_BITS)) & 1 == 1,
            None => false,
        }
    }

    /// Set bit `i` to 1, growing the representation as needed.
    pub fn set_bit(&mut self, i: u32) {
        let limb = (i / LIMB_BITS) as usize;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % LIMB_BITS);
    }

    /// Number of trailing zero bits (`None` for zero).
    pub fn trailing_zeros(&self) -> Option<u32> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u32 * LIMB_BITS + l.trailing_zeros());
            }
        }
        None
    }

    /// 2^k as a `BigUint`.
    pub fn pow2(k: u32) -> BigUint {
        let mut out = BigUint::zero();
        out.set_bit(k);
        out
    }
}

impl Shl<u32> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u32) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<u32> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u32) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn shifts_match_u128() {
        let v = 0x1234_5678_9abc_def0u128; // 61 bits, so s ≤ 67 stays in u128
        for s in [0u32, 1, 7, 63, 64, 65, 67] {
            assert_eq!(big(v).shl_bits(s), big(v << s), "left shift by {s}");
        }
        // Beyond u128 range: verify via the shr inverse instead.
        assert_eq!(big(v).shl_bits(100).shr_bits(100), big(v));
        let w = 0xffff_0000_ffff_0000_1111_2222_3333_4444u128;
        for s in [0u32, 1, 17, 64, 100, 127] {
            assert_eq!(big(w).shr_bits(s), big(w >> s), "right shift by {s}");
        }
    }

    #[test]
    fn shift_out_everything() {
        assert_eq!(big(0xff).shr_bits(8), BigUint::zero());
        assert_eq!(big(0xff).shr_bits(1000), BigUint::zero());
    }

    #[test]
    fn bit_access() {
        let v = big(0b1010);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert!(!v.bit(500));
    }

    #[test]
    fn set_bit_grows() {
        let mut v = BigUint::zero();
        v.set_bit(130);
        assert_eq!(v.bits(), 131);
        assert!(v.bit(130));
        assert_eq!(v, BigUint::pow2(130));
    }

    #[test]
    fn trailing_zeros_counts() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(big(1).trailing_zeros(), Some(0));
        assert_eq!(big(8).trailing_zeros(), Some(3));
        assert_eq!(BigUint::pow2(100).trailing_zeros(), Some(100));
    }
}
