//! Multiplication for [`BigUint`]: schoolbook for small operands, Karatsuba
//! above [`KARATSUBA_THRESHOLD`] limbs.

use super::{BigUint, Limb};
use std::ops::{Mul, MulAssign};

/// Operand size (in limbs) above which Karatsuba splitting pays off.
/// 32 limbs = 2048 bits, i.e. around the Paillier `N²` size for 1024-bit keys.
const KARATSUBA_THRESHOLD: usize = 32;

/// `out += a * b` (schoolbook), where `out` must have length ≥ `a.len() + b.len()`.
fn mac_schoolbook(out: &mut [Limb], a: &[Limb], b: &[Limb]) {
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let sum = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = sum as Limb;
            carry = sum >> 64;
        }
        // Propagate the final carry (cannot overflow `out` given its length).
        let mut k = i + b.len();
        while carry != 0 {
            let sum = out[k] as u128 + carry;
            out[k] = sum as Limb;
            carry = sum >> 64;
            k += 1;
        }
    }
}

/// Karatsuba: split both operands at `half` limbs and recurse.
fn mul_karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let half = a.len().min(b.len()) / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);

    let a0 = BigUint::from_limbs(a0.to_vec());
    let a1 = BigUint::from_limbs(a1.to_vec());
    let b0 = BigUint::from_limbs(b0.to_vec());
    let b1 = BigUint::from_limbs(b1.to_vec());

    let z0 = &a0 * &b0; // low product
    let z2 = &a1 * &b1; // high product
                        // z1 = (a0+a1)(b0+b1) - z0 - z2 = a0*b1 + a1*b0
    let mut z1 = &(&a0 + &a1) * &(&b0 + &b1);
    z1.sub_assign_ref(&z0);
    z1.sub_assign_ref(&z2);

    // result = z0 + z1 << (64*half) + z2 << (64*2*half)
    let mut out = z0;
    out.add_shifted(&z1, half);
    out.add_shifted(&z2, 2 * half);
    out.limbs
}

impl BigUint {
    /// `self += other << (64 * limb_shift)` without materialising the shift.
    pub(crate) fn add_shifted(&mut self, other: &BigUint, limb_shift: usize) {
        if other.is_zero() {
            return;
        }
        let needed = other.limbs.len() + limb_shift;
        if self.limbs.len() < needed {
            self.limbs.resize(needed, 0);
        }
        let mut carry = 0u64;
        for (i, &o) in other.limbs.iter().enumerate() {
            let sum = self.limbs[i + limb_shift] as u128 + o as u128 + carry as u128;
            self.limbs[i + limb_shift] = sum as Limb;
            carry = (sum >> 64) as u64;
        }
        let mut k = needed;
        while carry != 0 {
            if k == self.limbs.len() {
                self.limbs.push(carry);
                break;
            }
            let sum = self.limbs[k] as u128 + carry as u128;
            self.limbs[k] = sum as Limb;
            carry = (sum >> 64) as u64;
            k += 1;
        }
    }

    /// Multiply by a single limb in place.
    pub fn mul_limb(&mut self, v: Limb) {
        if v == 0 {
            self.limbs.clear();
            return;
        }
        if v == 1 || self.is_zero() {
            return;
        }
        let mut carry: u128 = 0;
        for limb in self.limbs.iter_mut() {
            let prod = *limb as u128 * v as u128 + carry;
            *limb = prod as Limb;
            carry = prod >> 64;
        }
        if carry != 0 {
            self.limbs.push(carry as Limb);
        }
    }

    /// `self * self` — convenience squaring (uses the generic multiply).
    pub fn square(&self) -> BigUint {
        self * self
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let small = self.limbs.len().min(rhs.limbs.len());
        if small >= KARATSUBA_THRESHOLD {
            return BigUint::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs));
        }
        let mut out = vec![0 as Limb; self.limbs.len() + rhs.limbs.len()];
        mac_schoolbook(&mut out, &self.limbs, &rhs.limbs);
        BigUint::from_limbs(out)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn small_products() {
        assert_eq!(&big(6) * &big(7), big(42));
        assert_eq!(&big(0) * &big(7), BigUint::zero());
        assert_eq!(&big(1) * &big(7), big(7));
    }

    #[test]
    fn cross_limb_product() {
        let a = big(u64::MAX as u128);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expect = (u64::MAX as u128) * (u64::MAX as u128);
        assert_eq!(&a * &a, big(expect));
    }

    #[test]
    fn mul_limb_matches_full_mul() {
        let mut a = big(0x1234_5678_9abc_def0_1122);
        let b = a.clone();
        a.mul_limb(1_000_003);
        assert_eq!(a, &b * &big(1_000_003));
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to trigger Karatsuba (> 32 limbs each).
        let mut a = BigUint::one();
        let mut b = BigUint::one();
        for i in 0..40u64 {
            a.limbs.push(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1));
            b.limbs.push(0xc2b2_ae3d_27d4_eb4fu64.wrapping_mul(i + 3));
        }
        a.normalize();
        b.normalize();
        let fast = &a * &b;
        // Schoolbook reference.
        let mut slow = vec![0 as Limb; a.limbs.len() + b.limbs.len()];
        mac_schoolbook(&mut slow, &a.limbs, &b.limbs);
        assert_eq!(fast, BigUint::from_limbs(slow));
    }

    #[test]
    fn distributive_law_spot_check() {
        let a = big(0xdead_beef_cafe);
        let b = big(0x1234_5678);
        let c = big(0x9999_1111_2222);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn square_matches_mul() {
        let a = big(0xffff_ffff_ffff_fff1);
        assert_eq!(a.square(), &a * &a);
    }
}
