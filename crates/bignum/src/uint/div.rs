//! Division and remainder for [`BigUint`] — Knuth TAOCP vol. 2 Algorithm D,
//! with a single-limb fast path.

use super::{BigUint, Limb};
use std::ops::{Div, Rem};

impl BigUint {
    /// Quotient and remainder of `self / divisor`.
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        div_rem_knuth(self, divisor)
    }

    /// Quotient and remainder by a single limb.
    pub fn div_rem_limb(&self, divisor: Limb) -> (BigUint, Limb) {
        assert!(divisor != 0, "BigUint division by zero");
        let mut quotient = vec![0 as Limb; self.limbs.len()];
        let mut rem: u128 = 0;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | limb as u128;
            quotient[i] = (cur / divisor as u128) as Limb;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(quotient), rem as Limb)
    }

    /// `self mod modulus` (convenience wrapper over [`BigUint::div_rem`]).
    pub fn rem_of(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }
}

/// Knuth Algorithm D. Preconditions: `divisor.limbs.len() >= 2`,
/// `dividend >= divisor`.
fn div_rem_knuth(dividend: &BigUint, divisor: &BigUint) -> (BigUint, BigUint) {
    let n = divisor.limbs.len();
    let m = dividend.limbs.len() - n;

    // D1: normalize so the top limb of v has its high bit set.
    let shift = divisor.limbs[n - 1].leading_zeros();
    let v = divisor.shl_bits(shift);
    let mut u = dividend.shl_bits(shift).limbs;
    u.resize(dividend.limbs.len() + 1, 0); // extra high limb u[m+n]

    let v = &v.limbs;
    let vn1 = v[n - 1] as u128;
    let vn2 = v[n - 2] as u128;
    let mut q = vec![0 as Limb; m + 1];

    // D2–D7: main loop.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two limbs of u and the top limb of v.
        let num = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = num / vn1;
        let mut rhat = num % vn1;
        loop {
            if qhat >> 64 != 0 || qhat * vn2 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += vn1;
                if rhat >> 64 != 0 {
                    break;
                }
            } else {
                break;
            }
        }

        // D4: multiply and subtract u[j..j+n+1] -= qhat * v.
        let borrow = sub_mul(&mut u[j..=j + n], v, qhat as Limb);

        // D5/D6: if we subtracted too much (probability ~2/2^64), add back.
        if borrow {
            qhat -= 1;
            add_back(&mut u[j..=j + n], v);
        }
        q[j] = qhat as Limb;
    }

    // D8: denormalize the remainder.
    let r = BigUint::from_limbs(u[..n].to_vec()).shr_bits(shift);
    (BigUint::from_limbs(q), r)
}

/// `u -= qhat * v` over `u[0..=v.len()]`; returns true if it underflowed.
fn sub_mul(u: &mut [Limb], v: &[Limb], qhat: Limb) -> bool {
    let mut mul_carry: Limb = 0;
    let mut borrow = false;
    for i in 0..v.len() {
        let prod = qhat as u128 * v[i] as u128 + mul_carry as u128;
        mul_carry = (prod >> 64) as Limb;
        let (d, b1) = u[i].overflowing_sub(prod as Limb);
        let (d, b2) = d.overflowing_sub(borrow as Limb);
        u[i] = d;
        borrow = b1 || b2;
    }
    let (d, b1) = u[v.len()].overflowing_sub(mul_carry);
    let (d, b2) = d.overflowing_sub(borrow as Limb);
    u[v.len()] = d;
    b1 || b2
}

/// `u += v` over `u[0..=v.len()]`, discarding the final carry (it cancels the
/// earlier borrow in Algorithm D step D6).
fn add_back(u: &mut [Limb], v: &[Limb]) {
    let mut carry = false;
    for i in 0..v.len() {
        let (s, c1) = u[i].overflowing_add(v[i]);
        let (s, c2) = s.overflowing_add(carry as Limb);
        u[i] = s;
        carry = c1 || c2;
    }
    u[v.len()] = u[v.len()].wrapping_add(carry as Limb);
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn single_limb_division() {
        let (q, r) = big(1000).div_rem(&big(7));
        assert_eq!((q, r), (big(142), big(6)));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = big(5).div_rem(&big(100));
        assert_eq!((q, r), (BigUint::zero(), big(5)));
    }

    #[test]
    fn exact_division() {
        let a = big(1 << 77);
        let b = big(1 << 13);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, big(1 << 64));
        assert!(r.is_zero());
    }

    #[test]
    fn u128_cross_check() {
        let pairs = [
            (u128::MAX, 3u128),
            (u128::MAX - 7, u64::MAX as u128),
            (0xdead_beef_cafe_babe_1234_5678_9abc_def0, 0x1_0000_0001),
            (1 << 127, (1 << 65) - 1),
        ];
        for (a, b) in pairs {
            let (q, r) = big(a).div_rem(&big(b));
            assert_eq!(q, big(a / b), "quotient for {a} / {b}");
            assert_eq!(r, big(a % b), "remainder for {a} % {b}");
        }
    }

    #[test]
    fn multi_limb_reconstruction() {
        // a = q*b + r must hold for operands wider than 128 bits.
        let a = BigUint::from_limbs(vec![0x1111, 0x2222, 0x3333, 0x4444, 0x5555]);
        let b = BigUint::from_limbs(vec![0xabcdef, 0x123456, 0x789a]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn knuth_add_back_branch() {
        // Crafted case from Hacker's Delight that exercises the rare D6 path:
        // dividend 0x7fff_800000000001_00000000_00000000, divisor 0x8000_000000000001_00000000.
        let a = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0001, 0x7fff]);
        let b = BigUint::from_limbs(vec![0, 0x8000_0000_0000_0001, 0x8000]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divide_by_zero_panics() {
        let _ = big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn operators() {
        assert_eq!(&big(100) / &big(7), big(14));
        assert_eq!(&big(100) % &big(7), big(2));
    }
}
