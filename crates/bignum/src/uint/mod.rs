//! Unsigned arbitrary-precision integers.
//!
//! Representation: little-endian vector of 64-bit limbs with no trailing
//! zero limbs (`normalize` enforces this). Zero is the empty limb vector.

mod add_sub;
mod bits;
mod div;
mod fmt;
mod mul;

use std::cmp::Ordering;

/// A single machine word of a [`BigUint`].
pub type Limb = u64;
/// Bits per limb.
pub const LIMB_BITS: u32 = 64;

/// Unsigned arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs, normalized (no trailing zeros).
    pub(crate) limbs: Vec<Limb>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut out = BigUint {
            limbs: vec![lo, hi],
        };
        out.normalize();
        out
    }

    /// Construct from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<Limb>) -> Self {
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Borrow the little-endian limbs (normalized; empty means zero).
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().map_or(false, |l| l & 1 == 1)
    }

    /// True iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u32 - 1) * LIMB_BITS + (LIMB_BITS - top.leading_zeros())
            }
        }
    }

    /// Bytes in big-endian order, no leading zeros (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Construct from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = [0u8; 8];
            limb[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(limb));
        }
        Self::from_limbs(limbs)
    }

    /// Strip trailing zero limbs to keep the canonical representation.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_u128(v)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn from_to_u64_u128() {
        assert_eq!(BigUint::from_u64(42).to_u64(), Some(42));
        let v = 0x1234_5678_9abc_def0_1111_2222_3333_4444u128;
        assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
        assert_eq!(
            BigUint::from_u128(u64::MAX as u128).to_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn normalization_strips_zero_limbs() {
        let v = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(v.limbs().len(), 1);
        assert_eq!(v, BigUint::from_u64(5));
    }

    #[test]
    fn byte_round_trip() {
        let v = BigUint::from_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
        let bytes = v.to_bytes_be();
        assert_eq!(bytes[0], 0x01);
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert!(BigUint::zero().to_bytes_be().is_empty());
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
        // Leading zero bytes are accepted and ignored.
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]), BigUint::from_u64(7));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u128(1 << 70);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigUint::from_u64(1).bits(), 1);
        assert_eq!(BigUint::from_u64(0xFF).bits(), 8);
        assert_eq!(BigUint::from_u128(1 << 64).bits(), 65);
    }
}
