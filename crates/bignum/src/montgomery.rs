//! Montgomery modular arithmetic (CIOS) — the hot path of every Paillier
//! operation. A [`Montgomery`] context precomputes everything needed for an
//! odd modulus and then performs multiplication/exponentiation without any
//! divisions.

use crate::{BigUint, Limb};

/// Precomputed Montgomery context for an odd modulus `n`.
///
/// Values in *Montgomery form* are stored as plain limb vectors of exactly
/// `limbs` words, representing `x·R mod n` with `R = 2^(64·limbs)`.
pub struct Montgomery {
    n: Vec<Limb>,
    /// `-n^{-1} mod 2^64`
    n0_inv: Limb,
    /// `R^2 mod n` (used to convert into Montgomery form).
    r2: Vec<Limb>,
    /// `R mod n` — the Montgomery form of 1.
    r1: Vec<Limb>,
    limbs: usize,
}

impl Montgomery {
    /// Build a context for an odd modulus. Panics if `n` is even or < 2.
    pub fn new(n: &BigUint) -> Montgomery {
        assert!(n.is_odd(), "Montgomery requires an odd modulus");
        assert!(!n.is_one(), "modulus must be > 1");
        let limbs = n.limbs().len();

        // n0_inv = -n^{-1} mod 2^64 via Newton–Hensel iteration.
        let n0 = n.limbs()[0];
        let mut inv: Limb = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R mod n and R² mod n by explicit division (one-time cost).
        let r = BigUint::pow2(64 * limbs as u32);
        let r1 = r.rem_of(n);
        let r2 = (&r1 * &r1).rem_of(n);

        Montgomery {
            n: n.limbs().to_vec(),
            n0_inv,
            r2: Self::pad(&r2, limbs),
            r1: Self::pad(&r1, limbs),
            limbs,
        }
    }

    /// The modulus.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    fn pad(v: &BigUint, limbs: usize) -> Vec<Limb> {
        let mut out = v.limbs().to_vec();
        out.resize(limbs, 0);
        out
    }

    /// Convert into Montgomery form (`x → x·R mod n`).
    pub fn to_mont(&self, x: &BigUint) -> Vec<Limb> {
        let reduced = if x.bits() as usize > 64 * self.limbs {
            x.rem_of(&self.modulus())
        } else {
            x.clone()
        };
        let x_pad = Self::pad(&reduced, self.limbs);
        self.mont_mul(&x_pad, &self.r2)
    }

    /// Convert out of Montgomery form (`x·R → x mod n`).
    pub fn from_mont(&self, x: &[Limb]) -> BigUint {
        let one = {
            let mut v = vec![0 as Limb; self.limbs];
            v[0] = 1;
            v
        };
        BigUint::from_limbs(self.mont_mul(x, &one))
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod n`.
    ///
    /// Inputs must be `limbs` words long and reduced modulo `n`.
    pub fn mont_mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let s = self.limbs;
        debug_assert_eq!(a.len(), s);
        debug_assert_eq!(b.len(), s);
        let n = &self.n;
        // t holds s+2 limbs of running state.
        let mut t = vec![0 as Limb; s + 2];
        for &ai in a.iter() {
            // t += ai * b
            let mut carry: Limb = 0;
            for j in 0..s {
                let sum = t[j] as u128 + ai as u128 * b[j] as u128 + carry as u128;
                t[j] = sum as Limb;
                carry = (sum >> 64) as Limb;
            }
            let sum = t[s] as u128 + carry as u128;
            t[s] = sum as Limb;
            t[s + 1] = (sum >> 64) as Limb;

            // m chosen so (t + m·n) ≡ 0 mod 2^64; then shift one limb.
            let m = t[0].wrapping_mul(self.n0_inv);
            let first = t[0] as u128 + m as u128 * n[0] as u128;
            let mut carry = (first >> 64) as Limb;
            debug_assert_eq!(first as Limb, 0);
            for j in 1..s {
                let sum = t[j] as u128 + m as u128 * n[j] as u128 + carry as u128;
                t[j - 1] = sum as Limb;
                carry = (sum >> 64) as Limb;
            }
            let sum = t[s] as u128 + carry as u128;
            t[s - 1] = sum as Limb;
            t[s] = t[s + 1].wrapping_add((sum >> 64) as Limb);
            t[s + 1] = 0;
        }
        // Conditional final subtraction to bring the result below n.
        let needs_sub = t[s] != 0 || ge(&t[..s], n);
        let mut out = t;
        out.truncate(s + 1);
        if needs_sub {
            sub_in_place(&mut out, n);
        }
        out.truncate(s);
        out
    }

    /// Montgomery squaring (alias of `mont_mul(a, a)`).
    pub fn mont_sqr(&self, a: &[Limb]) -> Vec<Limb> {
        self.mont_mul(a, a)
    }

    /// `base^exp mod n` using 4-bit sliding windows over Montgomery form.
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem_of(&self.modulus());
        }
        let base_m = self.to_mont(base);
        let result_m = self.pow_mont(&base_m, exp);
        self.from_mont(&result_m)
    }

    /// Exponentiation where the base is already in Montgomery form; result
    /// is in Montgomery form too.
    ///
    /// 4-bit *sliding* windows: only the 8 odd powers `base^1, base^3, …,
    /// base^15` are tabulated (half the precomputation of a fixed-window
    /// table), runs of zero exponent bits cost one squaring each with no
    /// multiplication, and every window is anchored on a set low bit so
    /// the table multiply count matches the number of windows actually
    /// containing ones. On Paillier-sized random exponents this saves
    /// ~7 table-building multiplications and turns the expected
    /// 15/16-per-window multiply rate of the fixed scheme into one per
    /// *occupied* window — the hot path under every encrypt/`mul_plain`.
    pub fn pow_mont(&self, base_m: &[Limb], exp: &BigUint) -> Vec<Limb> {
        if exp.is_zero() {
            return self.r1.clone();
        }
        // Odd powers base^(2k+1), k = 0..8, in Montgomery form.
        let base_sq = self.mont_sqr(base_m);
        let mut odd_pow = Vec::with_capacity(8);
        odd_pow.push(base_m.to_vec());
        for i in 1..8 {
            odd_pow.push(self.mont_mul(&odd_pow[i - 1], &base_sq));
        }

        let bits = exp.bits();
        let mut acc: Option<Vec<Limb>> = None;
        let mut i = bits as i64 - 1;
        while i >= 0 {
            if !exp.bit(i as u32) {
                // Zero bit outside a window: a single squaring. (acc is
                // always Some here — the scan starts at the set MSB.)
                let a = acc.as_mut().expect("leading bit of exp is set");
                *a = self.mont_sqr(a);
                i -= 1;
                continue;
            }
            // Window of up to 4 bits, anchored on a set low bit j so the
            // digit is odd and lives in the table.
            let mut j = (i - 3).max(0);
            while !exp.bit(j as u32) {
                j += 1;
            }
            let width = (i - j + 1) as u32;
            let mut digit = 0usize;
            for b in (j..=i).rev() {
                digit = (digit << 1) | usize::from(exp.bit(b as u32));
            }
            debug_assert!(digit % 2 == 1 && digit < 16);
            acc = Some(match acc {
                None => odd_pow[digit >> 1].clone(),
                Some(mut a) => {
                    for _ in 0..width {
                        a = self.mont_sqr(&a);
                    }
                    self.mont_mul(&a, &odd_pow[digit >> 1])
                }
            });
            i = j - 1;
        }
        acc.expect("exp is nonzero")
    }

    /// Exponentiation by a *pre-recoded* exponent (see
    /// [`ExponentSchedule::recode`]): the window scan of [`Montgomery::pow_mont`]
    /// is done once and replayed here, so a fixed exponent shared by a whole
    /// batch — threshold decryption's `2Δsᵢ` — pays the bit-scan once and
    /// only tabulates the odd powers its digits actually reference. The
    /// operation sequence is identical to `pow_mont`'s, so the result is
    /// bit-for-bit the same.
    pub fn pow_mont_scheduled(&self, base_m: &[Limb], sched: &ExponentSchedule) -> Vec<Limb> {
        if sched.zero {
            return self.r1.clone();
        }
        // Odd powers base^(2k+1) up to the largest digit the schedule uses.
        let mut odd_pow = Vec::with_capacity(sched.max_index + 1);
        odd_pow.push(base_m.to_vec());
        if sched.max_index > 0 {
            let base_sq = self.mont_sqr(base_m);
            for i in 1..=sched.max_index {
                let next = self.mont_mul(&odd_pow[i - 1], &base_sq);
                odd_pow.push(next);
            }
        }
        let mut acc = odd_pow[sched.first].clone();
        for &(squarings, index) in &sched.steps {
            for _ in 0..squarings {
                acc = self.mont_sqr(&acc);
            }
            acc = self.mont_mul(&acc, &odd_pow[index]);
        }
        for _ in 0..sched.tail {
            acc = self.mont_sqr(&acc);
        }
        acc
    }

    /// `base^exp mod n` through a precomputed [`ExponentSchedule`].
    pub fn pow_scheduled(&self, base: &BigUint, sched: &ExponentSchedule) -> BigUint {
        if sched.zero {
            return BigUint::one().rem_of(&self.modulus());
        }
        let base_m = self.to_mont(base);
        self.from_mont(&self.pow_mont_scheduled(&base_m, sched))
    }

    /// Modular multiplication convenience: `a·b mod n` on plain values.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Simultaneous multi-exponentiation: `Π baseᵢ^expᵢ mod n` via
    /// interleaved k-ary windows (generalized Shamir's trick).
    ///
    /// One shared squaring chain serves every base — the per-bit squaring
    /// cost of `k` separate [`Montgomery::pow`] calls collapses to a single
    /// chain, with one table multiplication per non-zero window digit. The
    /// window width adapts to the largest exponent so short exponents (the
    /// Lagrange-coefficient case of threshold combination) skip table
    /// construction entirely. This is the hot path of
    /// `Combiner::combine`'s `Π cᵢ^{2λᵢ}` and of encrypted dot products
    /// with plaintext weights.
    pub fn multi_pow(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        // Drop exp = 0 terms (base^0 = 1 contributes nothing).
        let active: Vec<(Vec<Limb>, &BigUint)> = pairs
            .iter()
            .filter(|(_, e)| !e.is_zero())
            .map(|&(b, e)| (self.to_mont(b), e))
            .collect();
        if active.is_empty() {
            return BigUint::one().rem_of(&self.modulus());
        }
        let max_bits = active
            .iter()
            .map(|(_, e)| e.bits())
            .max()
            .expect("nonempty");
        // Window width by exponent size: the 2^w − 2 table multiplications
        // per base must amortize over ⌈bits/w⌉ windows.
        let w: u32 = match max_bits {
            0..=32 => 1,
            33..=128 => 2,
            129..=384 => 3,
            _ => 4,
        };
        // Per-base tables of powers base^1 .. base^(2^w − 1), Montgomery form.
        let tables: Vec<Vec<Vec<Limb>>> = active
            .iter()
            .map(|(bm, _)| {
                let mut t = Vec::with_capacity((1usize << w) - 1);
                t.push(bm.clone());
                for d in 2..(1usize << w) {
                    let next = self.mont_mul(&t[d - 2], bm);
                    t.push(next);
                }
                t
            })
            .collect();

        let windows = max_bits.div_ceil(w);
        let mut acc: Option<Vec<Limb>> = None;
        for wi in (0..windows).rev() {
            if let Some(a) = acc.as_mut() {
                for _ in 0..w {
                    *a = self.mont_sqr(a);
                }
            }
            for (i, (_, e)) in active.iter().enumerate() {
                let mut digit = 0usize;
                for b in (wi * w..(wi + 1) * w).rev() {
                    digit = (digit << 1) | usize::from(b < e.bits() && e.bit(b));
                }
                if digit != 0 {
                    let term = &tables[i][digit - 1];
                    acc = Some(match acc.take() {
                        None => term.clone(),
                        Some(a) => self.mont_mul(&a, term),
                    });
                }
            }
        }
        self.from_mont(&acc.expect("at least one nonzero exponent digit"))
    }
}

/// A fixed exponent recoded once into the 4-bit sliding-window operation
/// sequence of [`Montgomery::pow_mont`], shareable across every
/// exponentiation with that exponent (the fixed-base-style precomputation
/// of threshold decryption: the exponent `2Δsᵢ` never changes, only the
/// ciphertext base does).
#[derive(Clone, Debug)]
pub struct ExponentSchedule {
    /// Exponent was zero (result is always 1).
    zero: bool,
    /// Odd-power table index of the leading window (`digit >> 1`).
    first: usize,
    /// Then, in order: square `squarings` times, multiply by table entry.
    /// Zero-run squarings are folded into the following window's count —
    /// the same squaring sequence `pow_mont` performs step by step.
    steps: Vec<(u32, usize)>,
    /// Trailing squarings after the last multiply.
    tail: u32,
    /// Largest table index referenced (bounds table construction).
    max_index: usize,
}

impl ExponentSchedule {
    /// Recode an exponent with the exact window decomposition of
    /// [`Montgomery::pow_mont`] (4-bit sliding windows anchored on set low
    /// bits).
    pub fn recode(exp: &BigUint) -> ExponentSchedule {
        if exp.is_zero() {
            return ExponentSchedule {
                zero: true,
                first: 0,
                steps: Vec::new(),
                tail: 0,
                max_index: 0,
            };
        }
        let bits = exp.bits();
        let mut first: Option<usize> = None;
        let mut steps = Vec::new();
        let mut pending_sq: u32 = 0;
        let mut max_index = 0usize;
        let mut i = bits as i64 - 1;
        while i >= 0 {
            if !exp.bit(i as u32) {
                pending_sq += 1;
                i -= 1;
                continue;
            }
            let mut j = (i - 3).max(0);
            while !exp.bit(j as u32) {
                j += 1;
            }
            let width = (i - j + 1) as u32;
            let mut digit = 0usize;
            for b in (j..=i).rev() {
                digit = (digit << 1) | usize::from(exp.bit(b as u32));
            }
            debug_assert!(digit % 2 == 1 && digit < 16);
            let index = digit >> 1;
            max_index = max_index.max(index);
            match first {
                // Scan starts at the set MSB, so no squarings precede the
                // leading window.
                None => first = Some(index),
                Some(_) => {
                    steps.push((pending_sq + width, index));
                    pending_sq = 0;
                }
            }
            i = j - 1;
        }
        ExponentSchedule {
            zero: false,
            first: first.expect("nonzero exponent has a leading window"),
            steps,
            tail: pending_sq,
            max_index,
        }
    }
}

/// `a >= b` over equal-length limb slices (little-endian).
fn ge(a: &[Limb], b: &[Limb]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` where `a` may have one extra high limb.
fn sub_in_place(a: &mut [Limb], b: &[Limb]) {
    let mut borrow = 0u64;
    for i in 0..b.len() {
        let diff = a[i] as i128 - b[i] as i128 - borrow as i128;
        borrow = u64::from(diff < 0);
        a[i] = diff as Limb;
    }
    if a.len() > b.len() {
        a[b.len()] = a[b.len()].wrapping_sub(borrow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mod_pow;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn round_trip_mont_form() {
        let n = big(1_000_000_007);
        let ctx = Montgomery::new(&n);
        for x in [0u128, 1, 2, 999_999_999, 123_456_789] {
            let m = ctx.to_mont(&big(x));
            assert_eq!(ctx.from_mont(&m), big(x), "round trip {x}");
        }
    }

    #[test]
    fn mul_matches_naive() {
        let n = big(0xffff_ffff_ffff_ffc5); // large odd (prime) modulus
        let ctx = Montgomery::new(&n);
        let a = big(0x1234_5678_9abc_def0);
        let b = big(0xfedc_ba98_7654_3210);
        assert_eq!(ctx.mul(&a, &b), (&a * &b).rem_of(&n));
    }

    #[test]
    fn pow_small_cases() {
        let n = big(97);
        let ctx = Montgomery::new(&n);
        assert_eq!(ctx.pow(&big(2), &big(0)), BigUint::one());
        assert_eq!(ctx.pow(&big(2), &big(1)), big(2));
        assert_eq!(ctx.pow(&big(2), &big(10)), big(1024 % 97));
        assert_eq!(ctx.pow(&big(0), &big(5)), BigUint::zero());
    }

    #[test]
    fn pow_matches_generic_mod_pow_multi_limb() {
        // Multi-limb odd modulus.
        let n =
            BigUint::from_hex("f123456789abcdef0123456789abcdef0123456789abcdef01234567_89abcdef")
                .unwrap();
        let n = if n.is_even() { &n + &BigUint::one() } else { n };
        let ctx = Montgomery::new(&n);
        let base = BigUint::from_hex("deadbeefcafebabe0123456789").unwrap();
        let exp = BigUint::from_hex("10001").unwrap();
        // Reference: square-and-multiply with explicit division.
        let mut reference = BigUint::one();
        let mut acc = base.rem_of(&n);
        for i in 0..exp.bits() {
            if exp.bit(i) {
                reference = (&reference * &acc).rem_of(&n);
            }
            acc = (&acc * &acc).rem_of(&n);
        }
        assert_eq!(ctx.pow(&base, &exp), reference);
        assert_eq!(mod_pow(&base, &exp, &n), reference);
    }

    #[test]
    fn sliding_window_handles_zero_runs_and_partial_windows() {
        let n = big(1_000_000_007);
        let ctx = Montgomery::new(&n);
        // Exponents chosen to hit: long zero runs between windows, windows
        // anchored mid-run, a trailing partial window, and all-ones.
        for exp in [
            0x8000_0000_0000_0001u128, // set MSB, 62 zeros, set LSB
            0x1111_1111_1111_1111,     // isolated bits 4 apart
            0xffff_ffff_ffff_ffff,     // saturated windows
            0b1011_0000_0000_0101,     // mixed widths across a gap
            3,
            16,
            31,
        ] {
            let exp = big(exp);
            let base = big(123_456_789);
            let mut expect = BigUint::one();
            let mut acc = base.clone();
            for i in 0..exp.bits() {
                if exp.bit(i) {
                    expect = (&expect * &acc).rem_of(&n);
                }
                acc = (&acc * &acc).rem_of(&n);
            }
            assert_eq!(ctx.pow(&base, &exp), expect, "exp {exp:?}");
        }
    }

    #[test]
    fn base_larger_than_modulus_is_reduced() {
        let n = big(1_000_003);
        let ctx = Montgomery::new(&n);
        let base = big(u128::MAX);
        assert_eq!(
            ctx.pow(&base, &big(3)),
            mod_pow(&base.rem_of(&n), &big(3), &n)
        );
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        Montgomery::new(&big(100));
    }

    #[test]
    fn scheduled_pow_matches_pow_mont() {
        let n =
            BigUint::from_hex("f123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
                .unwrap();
        let ctx = Montgomery::new(&n);
        let base = BigUint::from_hex("deadbeefcafebabe0123456789").unwrap();
        for exp in [
            BigUint::zero(),
            BigUint::one(),
            big(0x8000_0000_0000_0001),
            big(0x1111_1111_1111_1111),
            big(0xffff_ffff_ffff_ffff),
            big(0b1011_0000_0000_0101),
            big(16),
            BigUint::from_hex("2b7e151628aed2a6abf7158809cf4f3c762e7160f38b4da56a784d90").unwrap(),
        ] {
            let sched = ExponentSchedule::recode(&exp);
            assert_eq!(
                ctx.pow_scheduled(&base, &sched),
                ctx.pow(&base, &exp),
                "exp {exp:?}"
            );
        }
    }

    #[test]
    fn schedule_is_reusable_across_bases() {
        let n = big(1_000_000_007);
        let ctx = Montgomery::new(&n);
        let exp = big(0xdead_beef_1234);
        let sched = ExponentSchedule::recode(&exp);
        for b in [2u128, 3, 12345, 999_999_999] {
            assert_eq!(ctx.pow_scheduled(&big(b), &sched), ctx.pow(&big(b), &exp));
        }
    }

    #[test]
    fn multi_pow_small_cases() {
        let n = big(1_000_000_007);
        let ctx = Montgomery::new(&n);
        // Empty product and all-zero exponents are 1.
        assert_eq!(ctx.multi_pow(&[]), BigUint::one());
        let (b, z) = (big(5), big(0));
        assert_eq!(ctx.multi_pow(&[(&b, &z)]), BigUint::one());
        // 2^10 · 3^4 · 5^0 = 1024 · 81.
        let pairs = [(big(2), big(10)), (big(3), big(4)), (big(5), big(0))];
        let refs: Vec<(&BigUint, &BigUint)> = pairs.iter().map(|(b, e)| (b, e)).collect();
        assert_eq!(ctx.multi_pow(&refs), big(1024 * 81));
    }

    #[test]
    fn multi_pow_wide_exponents_match_pow_product() {
        // ≥385-bit exponents force the 4-bit window arm; cross-check the
        // shared-squaring chain against independent Montgomery::pow calls.
        let n =
            BigUint::from_hex("f123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
                .unwrap();
        let ctx = Montgomery::new(&n);
        let bases = [big(0xdead_beef), big(0x1234_5678_9abc), big(3)];
        let exps = [
            BigUint::from_hex(
                "8000000000000000000000000000000000000000000000000000000000000000\
                 0000000000000000000000000001",
            )
            .unwrap(),
            BigUint::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffff").unwrap(),
            big(1),
        ];
        let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(&exps).collect();
        let mut expect = BigUint::one();
        for (b, e) in &pairs {
            expect = ctx.mul(&expect, &ctx.pow(b, e));
        }
        assert_eq!(ctx.multi_pow(&pairs), expect);
    }
}
