//! Scenario files: the declarative description of one `pivot` run.
//!
//! A scenario is TOML (see [`crate::toml`] for the supported subset) or
//! JSON with the same structure, selected by file extension. Every knob
//! has a default, so a minimal classification scenario is just:
//!
//! ```toml
//! [data]
//! kind = "synthetic-classification"
//! ```
//!
//! Unknown sections or keys are hard errors: a typo like `max_dept = 5`
//! must not silently benchmark the wrong configuration.

use crate::json::Json;
use crate::toml::{TomlDoc, TomlValue};
use pivot_bench::Algo;
use pivot_core::config::{Packing, PivotParams};
use pivot_core::{AdversarySpec, CompareBits, Scheduling, TraceLevel, Verification};
use pivot_data::{synth, Dataset, Task};
use pivot_transport::NetConfig;
use pivot_trees::TreeParams;
use std::path::Path;

/// Where the dataset comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum DataKind {
    SyntheticClassification,
    SyntheticRegression,
    /// Named synthetic stand-ins for the paper's Table 3 datasets.
    CreditCardLike,
    BankMarketLike,
    EnergyLike,
    Csv,
}

impl DataKind {
    fn parse(s: &str) -> Result<DataKind, String> {
        match s {
            "synthetic-classification" => Ok(DataKind::SyntheticClassification),
            "synthetic-regression" => Ok(DataKind::SyntheticRegression),
            "credit-card-like" => Ok(DataKind::CreditCardLike),
            "bank-market-like" => Ok(DataKind::BankMarketLike),
            "energy-like" => Ok(DataKind::EnergyLike),
            "csv" => Ok(DataKind::Csv),
            other => Err(format!(
                "unknown data.kind {other:?} (expected synthetic-classification, \
                 synthetic-regression, credit-card-like, bank-market-like, \
                 energy-like, or csv)"
            )),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            DataKind::SyntheticClassification => "synthetic-classification",
            DataKind::SyntheticRegression => "synthetic-regression",
            DataKind::CreditCardLike => "credit-card-like",
            DataKind::BankMarketLike => "bank-market-like",
            DataKind::EnergyLike => "energy-like",
            DataKind::Csv => "csv",
        }
    }
}

/// `[data]` section.
#[derive(Clone, Debug)]
pub struct DataSpec {
    pub kind: DataKind,
    pub samples: usize,
    pub features_per_party: usize,
    pub classes: usize,
    pub class_sep: f64,
    pub flip_y: f64,
    pub noise: f64,
    /// Informative feature count for the synthetic generators
    /// (default: half the total features, rounded up).
    pub informative: Option<usize>,
    pub test_fraction: f64,
    /// CSV only: file path (relative paths resolve against the scenario
    /// file's directory).
    pub path: Option<String>,
    /// CSV only: "classification" (with `classes`) or "regression".
    pub task: Option<String>,
}

impl Default for DataSpec {
    fn default() -> Self {
        DataSpec {
            kind: DataKind::SyntheticClassification,
            samples: 200,
            features_per_party: 3,
            classes: 2,
            class_sep: 1.5,
            flip_y: 0.01,
            noise: 0.1,
            informative: None,
            test_fraction: 0.25,
            path: None,
            task: None,
        }
    }
}

/// `[model]` section: what gets trained on top of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelKind {
    DecisionTree,
    Gbdt,
    RandomForest,
}

impl ModelKind {
    fn parse(s: &str) -> Result<ModelKind, String> {
        match s {
            "decision-tree" => Ok(ModelKind::DecisionTree),
            "gbdt" => Ok(ModelKind::Gbdt),
            "random-forest" => Ok(ModelKind::RandomForest),
            other => Err(format!(
                "unknown model.kind {other:?} (expected decision-tree, gbdt, or random-forest)"
            )),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            ModelKind::DecisionTree => "decision-tree",
            ModelKind::Gbdt => "gbdt",
            ModelKind::RandomForest => "random-forest",
        }
    }
}

#[derive(Clone, Debug)]
pub struct ModelSpec {
    pub kind: ModelKind,
    /// GBDT boosting rounds `W`.
    pub rounds: usize,
    pub learning_rate: f64,
    /// Random-forest tree count `W`.
    pub trees: usize,
    pub sample_fraction: f64,
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec {
            kind: ModelKind::DecisionTree,
            rounds: 4,
            learning_rate: 0.5,
            trees: 4,
            sample_fraction: 1.0,
        }
    }
}

/// `params.packing`: `"off"`, `"auto"`, or an explicit slot count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PackingSpec {
    #[default]
    Off,
    Auto,
    Slots(usize),
}

impl PackingSpec {
    fn to_core(self) -> Packing {
        match self {
            PackingSpec::Off => Packing::Off,
            PackingSpec::Auto => Packing::Auto,
            PackingSpec::Slots(n) => Packing::Slots(n),
        }
    }

    fn echo(self) -> Json {
        match self {
            PackingSpec::Off => Json::Str("off".into()),
            PackingSpec::Auto => Json::Str("auto".into()),
            PackingSpec::Slots(n) => Json::Num(n as f64),
        }
    }
}

/// `params.comparison_bits`: `"full"`, `"auto"`, or a width floor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ComparisonBitsSpec {
    #[default]
    Full,
    Auto,
    Floor(u32),
}

impl ComparisonBitsSpec {
    fn to_core(self) -> CompareBits {
        match self {
            ComparisonBitsSpec::Full => CompareBits::Full,
            ComparisonBitsSpec::Auto => CompareBits::Auto,
            ComparisonBitsSpec::Floor(n) => CompareBits::Floor(n),
        }
    }

    fn echo(self) -> Json {
        match self {
            ComparisonBitsSpec::Full => Json::Str("full".into()),
            ComparisonBitsSpec::Auto => Json::Str("auto".into()),
            ComparisonBitsSpec::Floor(n) => Json::Num(f64::from(n)),
        }
    }
}

/// `params.verification`: `"off"`, `"spot(p)"`, or `"full"`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum VerificationSpec {
    #[default]
    Off,
    Spot(f64),
    Full,
}

impl VerificationSpec {
    fn parse(s: &str) -> Result<VerificationSpec, String> {
        match s {
            "off" => Ok(VerificationSpec::Off),
            "full" => Ok(VerificationSpec::Full),
            other => {
                let p = other
                    .strip_prefix("spot(")
                    .and_then(|rest| rest.strip_suffix(')'))
                    .and_then(|p| p.trim().parse::<f64>().ok())
                    .filter(|p| (0.0..=1.0).contains(p));
                match p {
                    Some(p) => Ok(VerificationSpec::Spot(p)),
                    None => Err(format!(
                        "params.verification: unknown mode {other:?} (expected \
                         \"off\", \"full\", or \"spot(p)\" with p in [0, 1])"
                    )),
                }
            }
        }
    }

    fn to_core(self) -> Verification {
        match self {
            VerificationSpec::Off => Verification::Off,
            VerificationSpec::Spot(p) => Verification::Spot(p),
            VerificationSpec::Full => Verification::Full,
        }
    }

    fn is_on(self) -> bool {
        self != VerificationSpec::Off
    }

    fn echo(self) -> Json {
        match self {
            VerificationSpec::Off => Json::Str("off".into()),
            VerificationSpec::Spot(p) => Json::Str(format!("spot({p})")),
            VerificationSpec::Full => Json::Str("full".into()),
        }
    }
}

/// `params.trace`: `"off"`, `"phases"`, or `"full"`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceSpec {
    #[default]
    Off,
    Phases,
    Full,
}

impl TraceSpec {
    fn to_core(self) -> TraceLevel {
        match self {
            TraceSpec::Off => TraceLevel::Off,
            TraceSpec::Phases => TraceLevel::Phases,
            TraceSpec::Full => TraceLevel::Full,
        }
    }

    fn echo(self) -> Json {
        Json::Str(self.to_core().as_str().into())
    }
}

/// `params.scheduling`: `"sequential"` or `"pipelined"`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulingSpec {
    #[default]
    Sequential,
    Pipelined,
}

impl SchedulingSpec {
    fn to_core(self) -> Scheduling {
        match self {
            SchedulingSpec::Sequential => Scheduling::Sequential,
            SchedulingSpec::Pipelined => Scheduling::Pipelined,
        }
    }

    fn echo(self) -> Json {
        Json::Str(
            match self {
                SchedulingSpec::Sequential => "sequential",
                SchedulingSpec::Pipelined => "pipelined",
            }
            .into(),
        )
    }
}

/// `[params]` section → [`PivotParams`].
#[derive(Clone, Debug)]
pub struct ParamSpec {
    pub max_depth: usize,
    pub max_splits: usize,
    pub min_samples: usize,
    pub keysize: u32,
    pub parallel_decrypt: bool,
    /// Worker threads for the batched crypto runtime (generalizes the
    /// deprecated `decrypt_threads` key, still accepted as an alias).
    pub crypto_threads: usize,
    /// Offline randomness-pool size (precomputed `r^N` nonce powers).
    pub randomness_pool: usize,
    /// Ciphertext packing for the split-statistics pipeline: `"off"`
    /// keeps the pre-packing transcript bit-identical, `"auto"` packs as
    /// many audited slots as the keysize admits, an integer forces the
    /// slot count.
    pub packing: PackingSpec,
    /// Secure-comparison width policy: `"full"` pins every comparison to
    /// the global `int_bits` (pre-PR-5 transcript, bit for bit), `"auto"`
    /// pays only for each call site's proven range on the log-depth
    /// BitLT, an integer sets a minimum width under `"auto"` widths.
    pub comparison_bits: ComparisonBitsSpec,
    /// Offline dealer-pool size (precomputed Beaver triples / masked-bit
    /// rows per stream; active under `parallel_decrypt` + bounded
    /// `comparison_bits`).
    pub dealer_pool: usize,
    /// Protocol tracing: `"off"` (default, bit-identical transcript),
    /// `"phases"` (phase timelines + round/byte attribution), `"full"`
    /// (adds per-round and per-node spans).
    pub trace: TraceSpec,
    /// Protocol scheduling: `"sequential"` keeps the per-node transcript
    /// bit-identical to prior releases, `"pipelined"` turns on frame
    /// coalescing + level-batched comparisons and deferred openings (same
    /// released model, far fewer rounds).
    pub scheduling: SchedulingSpec,
    /// Malicious-model verification: `"off"` (default, bit-identical
    /// transcript), `"spot(p)"` (proofs on every commit, a seeded
    /// p-fraction verified), `"full"` (every proof verified).
    pub verification: VerificationSpec,
}

impl Default for ParamSpec {
    fn default() -> Self {
        ParamSpec {
            max_depth: 3,
            max_splits: 4,
            min_samples: 2,
            keysize: 256,
            parallel_decrypt: false,
            crypto_threads: 6,
            randomness_pool: 256,
            packing: PackingSpec::Off,
            comparison_bits: ComparisonBitsSpec::Full,
            dealer_pool: 256,
            trace: TraceSpec::Off,
            scheduling: SchedulingSpec::Sequential,
            verification: VerificationSpec::Off,
        }
    }
}

/// `[network]` section: per-run LAN simulation and liveness, materialized
/// as a [`pivot_transport::NetConfig`] on every endpoint the run builds.
///
/// Unset keys fall back to the deprecated `PIVOT_NET_LATENCY_US` /
/// `PIVOT_NET_BANDWIDTH_MBPS` / `PIVOT_NET_RECV_TIMEOUT_S` environment
/// variables (then to "no simulation, 120 s timeout"), so old invocations
/// keep working — but explicit keys always win, and because the config is
/// per-endpoint a `[sweep]` can now vary these within one process.
#[derive(Clone, Debug, Default)]
pub struct NetworkSpec {
    pub latency_us: Option<u64>,
    /// 0 = unlimited.
    pub bandwidth_mbps: Option<f64>,
    /// Wedge timeout for every blocking receive (default 120 s).
    pub recv_timeout_s: Option<f64>,
    /// Total dial budget: initial rendezvous retries and, after a
    /// connection loss, how long the redial backoff keeps trying before
    /// the link is declared dead (default 60 s).
    pub connect_timeout_s: Option<f64>,
    /// Liveness heartbeat cadence per TCP link (off when unset). A link
    /// silent for 3 heartbeat periods is declared broken.
    pub heartbeat_s: Option<f64>,
    /// After a peer's link breaks, how long survivors park at the current
    /// protocol point waiting for it to rejoin before raising
    /// `TransportError::PeerLost` (off when unset: the connect-timeout
    /// redial budget governs alone).
    pub rejoin_deadline_s: Option<f64>,
}

/// `[checkpoint]` section: durable crash-recovery state (see
/// [`crate::checkpoint`]). At every `every_levels`-th level/tree barrier
/// each party writes a versioned, checksummed `PVCK` file under `dir`;
/// `pivot party --resume` restarts from the newest one bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointSpec {
    /// Barrier cadence: checkpoint every N level/tree barriers (>= 1).
    pub every_levels: u64,
    /// Checkpoint directory (relative paths resolve against the scenario
    /// file's directory, like `data.path`).
    pub dir: String,
}

/// `[faults]` section: a deterministic chaos plan for robustness runs.
///
/// `plan` entries use the [`pivot_transport::FaultSpec`] grammar
/// (`drop_link 0-1 at_round=8`, `delay_spike 0-2 at_bytes=4096 ms=250`,
/// `crash_party 1 at_round=10`,
/// `kill_party 1 at_level=2 restart_after_ms=500`); `seed` derandomizes
/// reconnect backoff jitter so chaos runs are repeatable. `kill_party` is
/// special: it is never armed in-process — `pivot party --supervise`
/// drives it by really SIGKILLing and relaunching the child process, and
/// it requires a `[checkpoint]` section for the relaunch to resume from.
#[derive(Clone, Debug, Default)]
pub struct FaultsSpec {
    pub plan: Vec<String>,
    pub seed: Option<u64>,
}

/// `[adversary]` section: a deterministic malicious-party injection for
/// verification runs, mirroring `[faults]`. `tamper` uses the
/// [`pivot_core::AdversarySpec`] grammar
/// (`party <id> phase=<name> index=<k>`): after generating its proof over
/// the honest value, `party` multiplies the `index`-th ciphertext of its
/// cumulative `phase` commit stream by `1 + N` (adding 1 to the
/// plaintext), so verification must catch and attribute the mismatch.
#[derive(Clone, Debug, Default)]
pub struct AdversaryCliSpec {
    pub tamper: Option<String>,
}

/// `[sweep]` section (the `bench` subcommand).
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Which knob varies: parties | samples | features_per_party |
    /// max_splits | max_depth (the paper's Figure 4 axes).
    pub vary: String,
    pub values: Vec<usize>,
}

/// A fully parsed scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub name: String,
    pub seed: u64,
    pub parties: usize,
    pub algorithms: Vec<Algo>,
    pub data: DataSpec,
    pub params: ParamSpec,
    pub model: ModelSpec,
    pub network: NetworkSpec,
    pub checkpoint: Option<CheckpointSpec>,
    pub faults: FaultsSpec,
    pub adversary: AdversaryCliSpec,
    pub sweep: Option<SweepSpec>,
}

pub fn parse_algo(s: &str) -> Result<Algo, String> {
    match s.to_ascii_lowercase().as_str() {
        "pivot-basic" => Ok(Algo::PivotBasic),
        "pivot-basic-pp" => Ok(Algo::PivotBasicPp),
        "pivot-enhanced" => Ok(Algo::PivotEnhanced),
        "pivot-enhanced-pp" => Ok(Algo::PivotEnhancedPp),
        "spdz-dt" => Ok(Algo::SpdzDt),
        "npd-dt" => Ok(Algo::NpdDt),
        other => Err(format!(
            "unknown algorithm {other:?} (expected pivot-basic, pivot-basic-pp, \
             pivot-enhanced, pivot-enhanced-pp, spdz-dt, or npd-dt)"
        )),
    }
}

/// Typed accessor shim so TOML and JSON scenarios share one extraction
/// path.
struct Doc {
    toml: Option<TomlDoc>,
    json: Option<Json>,
}

impl Doc {
    fn get_str(&self, section: &str, key: &str) -> Result<Option<String>, String> {
        match self.raw_kind(section, key)? {
            None => Ok(None),
            Some(RawValue::Str(s)) => Ok(Some(s)),
            Some(_) => Err(format!("{}: expected a string", loc(section, key))),
        }
    }

    /// Integers must stay below 2^53 on both backends: JSON scenario
    /// values at or above that may already have arrived rounded (2^53 + 1
    /// parses to exactly 2^53, indistinguishable from a legitimate 2^53),
    /// and even exact TOML values could not be echoed faithfully in the
    /// JSON report. Rejecting beats silently running or reporting a
    /// different value, so the bound is exclusive.
    const INT_LIMIT: i64 = 1 << 53;

    fn get_u64(&self, section: &str, key: &str) -> Result<Option<u64>, String> {
        match self.raw_kind(section, key)? {
            None => Ok(None),
            Some(RawValue::Int(v)) if (0..Self::INT_LIMIT).contains(&v) => Ok(Some(v as u64)),
            Some(RawValue::Num(v))
                if v >= 0.0 && v.fract() == 0.0 && v < Self::INT_LIMIT as f64 =>
            {
                Ok(Some(v as u64))
            }
            Some(_) => Err(format!(
                "{}: expected a non-negative integer below 2^53 (larger values \
                 cannot round-trip through JSON reports)",
                loc(section, key)
            )),
        }
    }

    fn get_usize(&self, section: &str, key: &str) -> Result<Option<usize>, String> {
        Ok(self.get_u64(section, key)?.map(|v| v as usize))
    }

    fn get_f64(&self, section: &str, key: &str) -> Result<Option<f64>, String> {
        match self.raw_kind(section, key)? {
            None => Ok(None),
            Some(RawValue::Num(v)) => Ok(Some(v)),
            Some(RawValue::Int(v)) => Ok(Some(v as f64)),
            Some(_) => Err(format!("{}: expected a number", loc(section, key))),
        }
    }

    fn get_bool(&self, section: &str, key: &str) -> Result<Option<bool>, String> {
        match self.raw_kind(section, key)? {
            None => Ok(None),
            Some(RawValue::Bool(b)) => Ok(Some(b)),
            Some(_) => Err(format!("{}: expected a boolean", loc(section, key))),
        }
    }

    fn get_str_array(&self, section: &str, key: &str) -> Result<Option<Vec<String>>, String> {
        match self.raw_kind(section, key)? {
            None => Ok(None),
            Some(RawValue::StrArr(v)) => Ok(Some(v)),
            Some(_) => Err(format!(
                "{}: expected an array of strings",
                loc(section, key)
            )),
        }
    }

    fn get_usize_array(&self, section: &str, key: &str) -> Result<Option<Vec<usize>>, String> {
        match self.raw_kind(section, key)? {
            None => Ok(None),
            Some(RawValue::NumArr(v)) => v
                .iter()
                .map(|&x| {
                    if x >= 0.0 && x.fract() == 0.0 {
                        Ok(x as usize)
                    } else {
                        Err(format!(
                            "{}: expected non-negative integers",
                            loc(section, key)
                        ))
                    }
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(_) => Err(format!(
                "{}: expected an array of integers",
                loc(section, key)
            )),
        }
    }

    fn raw_kind(&self, section: &str, key: &str) -> Result<Option<RawValue>, String> {
        if let Some(t) = &self.toml {
            return Ok(t.get(section, key).map(RawValue::from_toml));
        }
        let j = self.json.as_ref().expect("doc has one backend");
        let holder = if section.is_empty() {
            Some(j)
        } else {
            j.get(section)
        };
        Ok(holder.and_then(|h| h.get(key)).map(RawValue::from_json))
    }

    fn keys(&self, section: &str) -> Vec<String> {
        if let Some(t) = &self.toml {
            return t
                .section_keys(section)
                .into_iter()
                .map(str::to_string)
                .collect();
        }
        let j = self.json.as_ref().expect("doc has one backend");
        let holder = if section.is_empty() {
            Some(j)
        } else {
            j.get(section)
        };
        holder
            .map(|h| {
                h.keys()
                    .into_iter()
                    // Top-level objects are sections, not root keys.
                    .filter(|k| !(section.is_empty() && matches!(h.get(k), Some(Json::Obj(_)))))
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn sections(&self) -> Vec<String> {
        if let Some(t) = &self.toml {
            return t.section_names().into_iter().map(str::to_string).collect();
        }
        let j = self.json.as_ref().expect("doc has one backend");
        j.keys()
            .into_iter()
            .filter(|k| matches!(j.get(k), Some(Json::Obj(_))))
            .map(str::to_string)
            .collect()
    }
}

enum RawValue {
    Str(String),
    /// TOML integer, kept exact (f64 would round above 2^53).
    Int(i64),
    Num(f64),
    Bool(bool),
    StrArr(Vec<String>),
    NumArr(Vec<f64>),
    Other,
}

impl RawValue {
    fn from_toml(v: &TomlValue) -> RawValue {
        match v {
            TomlValue::Str(s) => RawValue::Str(s.clone()),
            TomlValue::Int(i) => RawValue::Int(*i),
            TomlValue::Float(f) => RawValue::Num(*f),
            TomlValue::Bool(b) => RawValue::Bool(*b),
            TomlValue::Arr(items) => {
                if items.iter().all(|i| i.as_str().is_some()) {
                    RawValue::StrArr(
                        items
                            .iter()
                            .map(|i| i.as_str().unwrap().to_string())
                            .collect(),
                    )
                } else if items.iter().all(|i| i.as_f64().is_some()) {
                    RawValue::NumArr(items.iter().map(|i| i.as_f64().unwrap()).collect())
                } else {
                    RawValue::Other
                }
            }
        }
    }

    fn from_json(v: &Json) -> RawValue {
        match v {
            Json::Str(s) => RawValue::Str(s.clone()),
            Json::Num(n) => RawValue::Num(*n),
            Json::Bool(b) => RawValue::Bool(*b),
            Json::Arr(items) => {
                if items.iter().all(|i| i.as_str().is_some()) {
                    RawValue::StrArr(
                        items
                            .iter()
                            .map(|i| i.as_str().unwrap().to_string())
                            .collect(),
                    )
                } else if items.iter().all(|i| i.as_f64().is_some()) {
                    RawValue::NumArr(items.iter().map(|i| i.as_f64().unwrap()).collect())
                } else {
                    RawValue::Other
                }
            }
            _ => RawValue::Other,
        }
    }
}

fn loc(section: &str, key: &str) -> String {
    if section.is_empty() {
        key.to_string()
    } else {
        format!("{section}.{key}")
    }
}

const ROOT_KEYS: &[&str] = &["name", "seed", "parties", "algorithm", "algorithms"];
const DATA_KEYS: &[&str] = &[
    "kind",
    "samples",
    "features_per_party",
    "classes",
    "class_sep",
    "flip_y",
    "noise",
    "informative",
    "test_fraction",
    "path",
    "task",
];
const PARAM_KEYS: &[&str] = &[
    "max_depth",
    "max_splits",
    "min_samples",
    "keysize",
    "parallel_decrypt",
    "crypto_threads",
    // Deprecated alias of crypto_threads (PR-2 name, decryption-only).
    "decrypt_threads",
    "randomness_pool",
    "packing",
    "comparison_bits",
    "dealer_pool",
    "trace",
    "scheduling",
    "verification",
];
const MODEL_KEYS: &[&str] = &[
    "kind",
    "rounds",
    "learning_rate",
    "trees",
    "sample_fraction",
];
const NETWORK_KEYS: &[&str] = &[
    "latency_us",
    "bandwidth_mbps",
    "recv_timeout_s",
    "connect_timeout_s",
    "heartbeat_s",
    "rejoin_deadline_s",
];
const CHECKPOINT_KEYS: &[&str] = &["every_levels", "dir"];
const FAULTS_KEYS: &[&str] = &["plan", "seed"];
const ADVERSARY_KEYS: &[&str] = &["tamper"];
const SWEEP_KEYS: &[&str] = &["vary", "values"];
const SECTIONS: &[(&str, &[&str])] = &[
    ("", ROOT_KEYS),
    ("data", DATA_KEYS),
    ("params", PARAM_KEYS),
    ("model", MODEL_KEYS),
    ("network", NETWORK_KEYS),
    ("checkpoint", CHECKPOINT_KEYS),
    ("faults", FAULTS_KEYS),
    ("adversary", ADVERSARY_KEYS),
    ("sweep", SWEEP_KEYS),
];

impl Scenario {
    /// Load a scenario from a `.toml` or `.json` file.
    pub fn load(path: &Path) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let is_json = path
            .extension()
            .map(|e| e.eq_ignore_ascii_case("json"))
            .unwrap_or(false);
        let doc = if is_json {
            Doc {
                toml: None,
                json: Some(Json::parse(&text)?),
            }
        } else {
            Doc {
                toml: Some(TomlDoc::parse(&text)?),
                json: None,
            }
        };
        let mut scenario = Scenario::from_doc(&doc)?;
        // Resolve a relative CSV path against the scenario's directory.
        if let Some(csv) = &scenario.data.path {
            let csv_path = Path::new(csv);
            if csv_path.is_relative() {
                if let Some(dir) = path.parent() {
                    scenario.data.path = Some(dir.join(csv_path).to_string_lossy().into_owned());
                }
            }
        }
        // Same for the checkpoint directory: every party of the run must
        // resolve `dir` identically regardless of its own working
        // directory.
        if let Some(ckpt) = &mut scenario.checkpoint {
            let ckpt_dir = Path::new(&ckpt.dir);
            if ckpt_dir.is_relative() {
                if let Some(dir) = path.parent() {
                    ckpt.dir = dir.join(ckpt_dir).to_string_lossy().into_owned();
                }
            }
        }
        Ok(scenario)
    }

    fn from_doc(doc: &Doc) -> Result<Scenario, String> {
        // Reject unknown sections/keys before reading anything.
        let known_sections: Vec<&str> = SECTIONS
            .iter()
            .map(|(s, _)| *s)
            .filter(|s| !s.is_empty())
            .collect();
        for s in doc.sections() {
            if !known_sections.contains(&s.as_str()) {
                return Err(format!(
                    "unknown section [{s}] (expected one of: {})",
                    known_sections.join(", ")
                ));
            }
        }
        for (section, keys) in SECTIONS {
            for k in doc.keys(section) {
                if !keys.contains(&k.as_str()) {
                    return Err(format!(
                        "unknown key {} (known keys: {})",
                        loc(section, &k),
                        keys.join(", ")
                    ));
                }
            }
        }

        let mut algorithms = Vec::new();
        if let Some(one) = doc.get_str("", "algorithm")? {
            algorithms.push(parse_algo(&one)?);
        }
        if let Some(many) = doc.get_str_array("", "algorithms")? {
            if !algorithms.is_empty() {
                return Err("give either `algorithm` or `algorithms`, not both".into());
            }
            for a in many {
                algorithms.push(parse_algo(&a)?);
            }
        }
        if algorithms.is_empty() {
            algorithms.push(Algo::PivotBasic);
        }

        let data_defaults = DataSpec::default();
        let data = DataSpec {
            kind: match doc.get_str("data", "kind")? {
                Some(k) => DataKind::parse(&k)?,
                None => data_defaults.kind,
            },
            samples: doc
                .get_usize("data", "samples")?
                .unwrap_or(data_defaults.samples),
            features_per_party: doc
                .get_usize("data", "features_per_party")?
                .unwrap_or(data_defaults.features_per_party),
            classes: doc
                .get_usize("data", "classes")?
                .unwrap_or(data_defaults.classes),
            class_sep: doc
                .get_f64("data", "class_sep")?
                .unwrap_or(data_defaults.class_sep),
            flip_y: doc
                .get_f64("data", "flip_y")?
                .unwrap_or(data_defaults.flip_y),
            noise: doc.get_f64("data", "noise")?.unwrap_or(data_defaults.noise),
            informative: doc.get_usize("data", "informative")?,
            test_fraction: doc
                .get_f64("data", "test_fraction")?
                .unwrap_or(data_defaults.test_fraction),
            path: doc.get_str("data", "path")?,
            task: doc.get_str("data", "task")?,
        };

        let pd = ParamSpec::default();
        let packing = match doc.raw_kind("params", "packing")? {
            None => pd.packing,
            Some(RawValue::Str(s)) => match s.as_str() {
                "off" => PackingSpec::Off,
                "auto" => PackingSpec::Auto,
                other => {
                    return Err(format!(
                        "params.packing: unknown mode {other:?} (expected \"off\", \
                         \"auto\", or a slot count)"
                    ))
                }
            },
            // A 1-slot layout packs nothing, and the sweep axis uses the
            // literal 1 to mean "auto" — reject the ambiguous value here.
            Some(RawValue::Int(v)) if v >= 2 => PackingSpec::Slots(v as usize),
            Some(RawValue::Num(v)) if v >= 2.0 && v.fract() == 0.0 => {
                PackingSpec::Slots(v as usize)
            }
            Some(_) => {
                return Err(
                    "params.packing: expected \"off\", \"auto\", or a slot count >= 2 \
                     (a 1-slot layout packs nothing)"
                        .into(),
                )
            }
        };
        // Width floors above the fixed-point layout would only ever
        // panic downstream (the CLI always runs the default layout), so
        // reject them here like every other comparison_bits mistake.
        let max_floor = i64::from(PivotParams::default().fixed.int_bits);
        let comparison_bits = match doc.raw_kind("params", "comparison_bits")? {
            None => pd.comparison_bits,
            Some(RawValue::Str(s)) => match s.as_str() {
                "full" => ComparisonBitsSpec::Full,
                "auto" => ComparisonBitsSpec::Auto,
                other => {
                    return Err(format!(
                        "params.comparison_bits: unknown mode {other:?} (expected \
                         \"full\", \"auto\", or a width floor)"
                    ))
                }
            },
            // Width floors below 2 are meaningless; 0/1 are reserved for
            // the sweep axis (0 = full, 1 = auto).
            Some(RawValue::Int(v)) if (2..=max_floor).contains(&v) => {
                ComparisonBitsSpec::Floor(v as u32)
            }
            Some(RawValue::Num(v)) if v.fract() == 0.0 && (2.0..=max_floor as f64).contains(&v) => {
                ComparisonBitsSpec::Floor(v as u32)
            }
            Some(_) => {
                return Err(format!(
                    "params.comparison_bits: expected \"full\", \"auto\", or a width \
                     floor in 2..={max_floor} (the fixed-point int_bits)"
                ))
            }
        };
        let trace = match doc.get_str("params", "trace")?.as_deref() {
            None => pd.trace,
            Some("off") => TraceSpec::Off,
            Some("phases") => TraceSpec::Phases,
            Some("full") => TraceSpec::Full,
            Some(other) => {
                return Err(format!(
                    "params.trace: unknown level {other:?} (expected \"off\", \
                     \"phases\", or \"full\")"
                ))
            }
        };
        let scheduling = match doc.get_str("params", "scheduling")?.as_deref() {
            None => pd.scheduling,
            Some("sequential") => SchedulingSpec::Sequential,
            Some("pipelined") => SchedulingSpec::Pipelined,
            Some(other) => {
                return Err(format!(
                    "params.scheduling: unknown mode {other:?} (expected \
                     \"sequential\" or \"pipelined\")"
                ))
            }
        };
        let verification = match doc.get_str("params", "verification")? {
            None => pd.verification,
            Some(s) => VerificationSpec::parse(&s)?,
        };
        let crypto_threads = doc.get_usize("params", "crypto_threads")?;
        let decrypt_threads = doc.get_usize("params", "decrypt_threads")?;
        if crypto_threads.is_some() && decrypt_threads.is_some() {
            return Err("give either params.crypto_threads or the deprecated alias \
                 params.decrypt_threads, not both"
                .into());
        }
        let params = ParamSpec {
            max_depth: doc
                .get_usize("params", "max_depth")?
                .unwrap_or(pd.max_depth),
            max_splits: doc
                .get_usize("params", "max_splits")?
                .unwrap_or(pd.max_splits),
            min_samples: doc
                .get_usize("params", "min_samples")?
                .unwrap_or(pd.min_samples),
            keysize: doc
                .get_u64("params", "keysize")?
                .map(|v| v as u32)
                .unwrap_or(pd.keysize),
            parallel_decrypt: doc
                .get_bool("params", "parallel_decrypt")?
                .unwrap_or(pd.parallel_decrypt),
            crypto_threads: crypto_threads
                .or(decrypt_threads)
                .unwrap_or(pd.crypto_threads),
            randomness_pool: doc
                .get_usize("params", "randomness_pool")?
                .unwrap_or(pd.randomness_pool),
            packing,
            comparison_bits,
            dealer_pool: doc
                .get_usize("params", "dealer_pool")?
                .unwrap_or(pd.dealer_pool),
            trace,
            scheduling,
            verification,
        };

        let md = ModelSpec::default();
        let model = ModelSpec {
            kind: match doc.get_str("model", "kind")? {
                Some(k) => ModelKind::parse(&k)?,
                None => md.kind,
            },
            rounds: doc.get_usize("model", "rounds")?.unwrap_or(md.rounds),
            learning_rate: doc
                .get_f64("model", "learning_rate")?
                .unwrap_or(md.learning_rate),
            trees: doc.get_usize("model", "trees")?.unwrap_or(md.trees),
            sample_fraction: doc
                .get_f64("model", "sample_fraction")?
                .unwrap_or(md.sample_fraction),
        };

        let network = NetworkSpec {
            latency_us: doc.get_u64("network", "latency_us")?,
            bandwidth_mbps: doc.get_f64("network", "bandwidth_mbps")?,
            recv_timeout_s: doc.get_f64("network", "recv_timeout_s")?,
            connect_timeout_s: doc.get_f64("network", "connect_timeout_s")?,
            heartbeat_s: doc.get_f64("network", "heartbeat_s")?,
            rejoin_deadline_s: doc.get_f64("network", "rejoin_deadline_s")?,
        };

        let checkpoint = if doc.sections().iter().any(|s| s == "checkpoint") {
            let dir = doc.get_str("checkpoint", "dir")?.ok_or(
                "checkpoint.dir is required (the directory checkpoint files \
                     are written to and resumed from)",
            )?;
            let every_levels = doc.get_u64("checkpoint", "every_levels")?.unwrap_or(1);
            if every_levels == 0 {
                return Err("checkpoint.every_levels must be >= 1".into());
            }
            Some(CheckpointSpec { every_levels, dir })
        } else {
            None
        };

        let faults = FaultsSpec {
            plan: doc.get_str_array("faults", "plan")?.unwrap_or_default(),
            seed: doc.get_u64("faults", "seed")?,
        };

        let adversary = AdversaryCliSpec {
            tamper: doc.get_str("adversary", "tamper")?,
        };

        let sweep = match doc.get_str("sweep", "vary")? {
            None => {
                if doc.get_usize_array("sweep", "values")?.is_some() {
                    return Err("sweep.values given without sweep.vary".into());
                }
                None
            }
            Some(vary) => {
                const AXES: &[&str] = &[
                    "parties",
                    "samples",
                    "features_per_party",
                    "max_splits",
                    "max_depth",
                    "latency_us",
                    "bandwidth_mbps",
                    "packing",
                    "comparison_bits",
                    "scheduling",
                    "checkpoint_every_levels",
                ];
                if !AXES.contains(&vary.as_str()) {
                    return Err(format!(
                        "unknown sweep.vary {vary:?} (expected one of: {})",
                        AXES.join(", ")
                    ));
                }
                let values = doc
                    .get_usize_array("sweep", "values")?
                    .ok_or("sweep.vary given without sweep.values")?;
                if values.is_empty() {
                    return Err("sweep.values must not be empty".into());
                }
                Some(SweepSpec { vary, values })
            }
        };

        let scenario = Scenario {
            name: doc
                .get_str("", "name")?
                .unwrap_or_else(|| "unnamed scenario".into()),
            seed: doc.get_u64("", "seed")?.unwrap_or(0xBE7C4),
            parties: doc.get_usize("", "parties")?.unwrap_or(3),
            algorithms,
            data,
            params,
            model,
            network,
            checkpoint,
            faults,
            adversary,
            sweep,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Cross-field checks. Public because sweep points built by
    /// [`Scenario::with_axis`] must be re-validated before execution (a
    /// sweep value like `parties = 0` is only detectable per point).
    pub fn validate(&self) -> Result<(), String> {
        if self.parties < 2 {
            return Err("parties must be >= 2 (vertical FL needs multiple clients)".into());
        }
        if self.data.kind == DataKind::Csv && self.data.path.is_none() {
            return Err("data.kind = \"csv\" requires data.path".into());
        }
        if self.data.kind != DataKind::Csv && self.data.features_per_party == 0 {
            return Err("data.features_per_party must be >= 1".into());
        }
        if let Some(informative) = self.data.informative {
            if !matches!(
                self.data.kind,
                DataKind::SyntheticClassification | DataKind::SyntheticRegression
            ) {
                return Err("data.informative only applies to the synthetic-* generators".into());
            }
            let total_features = self.parties * self.data.features_per_party;
            if informative == 0 || informative > total_features {
                return Err(format!(
                    "data.informative must be in 1..={total_features} \
                     (parties x features_per_party)"
                ));
            }
        }
        if !(0.0..1.0).contains(&self.data.test_fraction) {
            return Err("data.test_fraction must be in [0, 1)".into());
        }
        if self.data.kind != DataKind::Csv && self.data.samples < 10 {
            return Err("data.samples must be >= 10".into());
        }
        if self.model.kind != ModelKind::DecisionTree {
            for algo in &self.algorithms {
                if !matches!(algo, Algo::PivotBasic | Algo::PivotBasicPp) {
                    return Err(format!(
                        "model.kind = \"{}\" trains via the basic protocol (§7's \
                         plaintext-ensemble setting) and does not support baseline or \
                         enhanced algorithm {}",
                        self.model.kind.label(),
                        algo.label()
                    ));
                }
            }
        }
        if self.params.max_depth == 0 || self.params.max_splits == 0 {
            return Err("params.max_depth and params.max_splits must be >= 1".into());
        }
        // Re-checked per sweep point: `with_axis` can build floors the
        // TOML-knob parser never sees (e.g. values = [46]).
        if let ComparisonBitsSpec::Floor(n) = self.params.comparison_bits {
            let max = PivotParams::default().fixed.int_bits;
            if !(2..=max).contains(&n) {
                return Err(format!(
                    "params.comparison_bits: width floor {n} outside 2..={max} \
                     (the fixed-point int_bits)"
                ));
            }
        }
        if let Some(secs) = self.network.recv_timeout_s {
            if !secs.is_finite() || secs <= 0.0 || secs > pivot_transport::MAX_RECV_TIMEOUT_SECS {
                return Err(format!(
                    "network.recv_timeout_s must be a positive number of seconds \
                     (at most {:e})",
                    pivot_transport::MAX_RECV_TIMEOUT_SECS
                ));
            }
        }
        if let Some(mbps) = self.network.bandwidth_mbps {
            if !mbps.is_finite() || mbps < 0.0 {
                return Err("network.bandwidth_mbps must be >= 0 (0 means unlimited)".into());
            }
        }
        if let Some(secs) = self.network.connect_timeout_s {
            if !secs.is_finite() || secs <= 0.0 || secs > pivot_transport::MAX_RECV_TIMEOUT_SECS {
                return Err(format!(
                    "network.connect_timeout_s must be a positive number of seconds \
                     (at most {:e})",
                    pivot_transport::MAX_RECV_TIMEOUT_SECS
                ));
            }
        }
        for (value, key) in [
            (self.network.heartbeat_s, "network.heartbeat_s"),
            (self.network.rejoin_deadline_s, "network.rejoin_deadline_s"),
        ] {
            if let Some(secs) = value {
                if !secs.is_finite() || secs <= 0.0 || secs > pivot_transport::MAX_RECV_TIMEOUT_SECS
                {
                    return Err(format!(
                        "{key} must be a positive number of seconds (at most {:e})",
                        pivot_transport::MAX_RECV_TIMEOUT_SECS
                    ));
                }
            }
        }
        if let Some(ckpt) = &self.checkpoint {
            if ckpt.every_levels == 0 {
                return Err("checkpoint.every_levels must be >= 1".into());
            }
            if ckpt.dir.is_empty() {
                return Err("checkpoint.dir must not be empty".into());
            }
            // Recovery replays the transcript through the deterministic
            // protocol; the pipelined scheduler is the deployment shape
            // that replay is defined (and tested) against.
            if self.params.scheduling != SchedulingSpec::Pipelined {
                return Err("[checkpoint] requires params.scheduling = \"pipelined\" \
                     (resume replay is defined against the pipelined scheduler)"
                    .into());
            }
        }
        if let Some(sweep) = &self.sweep {
            if sweep.vary == "checkpoint_every_levels" && self.checkpoint.is_none() {
                return Err("sweep.vary = \"checkpoint_every_levels\" needs a \
                     [checkpoint] section to supply the directory"
                    .into());
            }
        }
        if self.params.verification.is_on() {
            for algo in &self.algorithms {
                if !matches!(algo, Algo::PivotBasic | Algo::PivotBasicPp) {
                    return Err(format!(
                        "params.verification covers the basic protocol's commit \
                         points (§4 + Algorithm 4); algorithm {} carries no proofs \
                         — run pivot-basic or pivot-basic-pp, or set \
                         verification = \"off\"",
                        algo.label()
                    ));
                }
            }
            if self.params.packing != PackingSpec::Off {
                return Err("params.verification needs packing = \"off\" (the packed \
                     statistics pipeline carries no proofs)"
                    .into());
            }
        }
        if let Some(adv) = self.adversary_spec()? {
            if !self.params.verification.is_on() {
                return Err("an [adversary] injection needs params.verification on \
                     to be observable (the honest-but-curious transcript checks \
                     nothing)"
                    .into());
            }
            if adv.party >= self.parties {
                return Err(format!(
                    "adversary.tamper: party {} out of range (scenario has {} \
                     parties)",
                    adv.party, self.parties
                ));
            }
        }
        let plan = self.fault_plan().map_err(|e| format!("faults.plan: {e}"))?;
        for spec in &plan.specs {
            let parties = match spec.kind {
                pivot_transport::FaultKind::DropLink { a, b }
                | pivot_transport::FaultKind::DelaySpike { a, b, .. } => [a, b],
                pivot_transport::FaultKind::CrashParty { party }
                | pivot_transport::FaultKind::KillParty { party, .. } => [party, party],
            };
            if let Some(p) = parties.iter().find(|&&p| p >= self.parties) {
                return Err(format!(
                    "faults.plan: party {p} out of range (scenario has {} parties)",
                    self.parties
                ));
            }
        }
        if plan.has_kill() && self.checkpoint.is_none() {
            return Err(
                "faults.plan: kill_party needs a [checkpoint] section — the \
                 relaunched party resumes from its newest checkpoint"
                    .into(),
            );
        }
        Ok(())
    }

    /// The parsed `[faults]` plan (empty when the section is absent).
    pub fn fault_plan(&self) -> Result<pivot_transport::FaultPlan, String> {
        pivot_transport::FaultPlan::parse(&self.faults.plan, self.faults.seed.unwrap_or(0))
    }

    /// The parsed `[adversary]` injection (`None` when the section is
    /// absent).
    pub fn adversary_spec(&self) -> Result<Option<AdversarySpec>, String> {
        self.adversary
            .tamper
            .as_deref()
            .map(|t| AdversarySpec::parse(t).map_err(|e| format!("adversary.tamper: {e}")))
            .transpose()
    }

    /// The single algorithm of a train/predict scenario.
    pub fn sole_algorithm(&self) -> Result<Algo, String> {
        match self.algorithms.as_slice() {
            [one] => Ok(*one),
            many => Err(format!(
                "this subcommand needs exactly one algorithm, scenario lists {}",
                many.len()
            )),
        }
    }

    /// Task of the configured dataset.
    pub fn task(&self) -> Result<Task, String> {
        Ok(match self.data.kind {
            DataKind::SyntheticClassification
            | DataKind::CreditCardLike
            | DataKind::BankMarketLike => Task::Classification {
                classes: self.effective_classes(),
            },
            DataKind::SyntheticRegression | DataKind::EnergyLike => Task::Regression,
            DataKind::Csv => match self.data.task.as_deref() {
                Some("classification") | None => Task::Classification {
                    classes: self.effective_classes(),
                },
                Some("regression") => Task::Regression,
                Some(other) => {
                    return Err(format!(
                        "unknown data.task {other:?} (expected classification or regression)"
                    ))
                }
            },
        })
    }

    fn effective_classes(&self) -> usize {
        match self.data.kind {
            // The named Table 3 stand-ins are binary tasks.
            DataKind::CreditCardLike | DataKind::BankMarketLike => 2,
            _ => self.data.classes,
        }
    }

    /// Build (or load) the dataset this scenario describes.
    pub fn build_dataset(&self) -> Result<Dataset, String> {
        let features = self.parties * self.data.features_per_party;
        let informative = self
            .data
            .informative
            .unwrap_or_else(|| features.div_ceil(2));
        Ok(match self.data.kind {
            DataKind::SyntheticClassification => {
                synth::make_classification(&synth::ClassificationSpec {
                    samples: self.data.samples,
                    features,
                    informative,
                    classes: self.data.classes,
                    class_sep: self.data.class_sep,
                    flip_y: self.data.flip_y,
                    seed: self.seed,
                })
            }
            DataKind::SyntheticRegression => synth::make_regression(&synth::RegressionSpec {
                samples: self.data.samples,
                features,
                informative,
                noise: self.data.noise,
                seed: self.seed,
            }),
            DataKind::CreditCardLike => synth::credit_card_like(self.data.samples, self.seed),
            DataKind::BankMarketLike => synth::bank_market_like(self.data.samples, self.seed),
            DataKind::EnergyLike => synth::energy_like(self.data.samples, self.seed),
            DataKind::Csv => {
                let path = self.data.path.as_ref().expect("validated");
                let task = self.task()?;
                let mut ds = pivot_data::read_csv(Path::new(path), task)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                if task == Task::Regression {
                    // Pivot's fixed-point pipeline needs bounded labels.
                    ds.normalize_labels();
                }
                ds
            }
        })
    }

    /// The [`NetConfig`] every endpoint of this run carries: explicit
    /// `[network]` keys over the deprecated `PIVOT_NET_*` environment
    /// fallback over "no simulation".
    ///
    /// When an environment variable and the scenario both set the same
    /// knob, the scenario wins — and the overlap is reported once per
    /// process to stderr, because a stale exported `PIVOT_NET_*` that
    /// *looks* live is exactly the silent misconfiguration the explicit
    /// `[network]` section was added to end.
    pub fn net_config(&self) -> NetConfig {
        if let Some(warning) = self.env_shadow_warning() {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("{warning}"));
        }
        let mut net = NetConfig::from_env();
        if let Some(us) = self.network.latency_us {
            net.latency = std::time::Duration::from_micros(us);
        }
        if let Some(mbps) = self.network.bandwidth_mbps {
            net.bandwidth_mbps = mbps;
        }
        if let Some(secs) = self.network.recv_timeout_s {
            net.recv_timeout = std::time::Duration::from_secs_f64(secs);
        }
        if let Some(secs) = self.network.connect_timeout_s {
            net.connect_timeout = std::time::Duration::from_secs_f64(secs);
        }
        if let Some(secs) = self.network.heartbeat_s {
            net.heartbeat = Some(std::time::Duration::from_secs_f64(secs));
        }
        if let Some(secs) = self.network.rejoin_deadline_s {
            net.rejoin_deadline = Some(std::time::Duration::from_secs_f64(secs));
        }
        // Deterministic retry/backoff schedules: derived per link from the
        // scenario seed and the party ids (timing only — never bytes).
        net.seed = self.seed;
        // Checkpointed runs pin retransmit-ring retention to the barrier
        // cursor instead of the pure LRU caps, so a restarted party can
        // always be replayed forward from its last durable checkpoint.
        net.durable_sessions = self.checkpoint.is_some();
        net
    }

    /// The warning [`Scenario::net_config`] prints when deprecated
    /// `PIVOT_NET_*` variables overlap explicit `[network]` keys (the
    /// scenario value is used; the env value is ignored). `None` when
    /// there is no overlap. Split out so tests can assert the message
    /// without capturing stderr.
    pub fn env_shadow_warning(&self) -> Option<String> {
        let overlaps = [
            (self.network.latency_us.is_some(), "PIVOT_NET_LATENCY_US"),
            (
                self.network.bandwidth_mbps.is_some(),
                "PIVOT_NET_BANDWIDTH_MBPS",
            ),
            (
                self.network.recv_timeout_s.is_some(),
                "PIVOT_NET_RECV_TIMEOUT_S",
            ),
            (
                self.network.connect_timeout_s.is_some(),
                "PIVOT_NET_CONNECT_TIMEOUT_S",
            ),
        ];
        let shadowed: Vec<&str> = overlaps
            .iter()
            .filter(|(explicit, var)| *explicit && std::env::var_os(var).is_some())
            .map(|&(_, var)| var)
            .collect();
        (!shadowed.is_empty()).then(|| {
            format!(
                "warning: deprecated {} ignored — the scenario's [network] section \
                 sets the same knob, and explicit keys win",
                shadowed.join(", ")
            )
        })
    }

    /// [`PivotParams`] for one algorithm under this scenario. The
    /// algorithm-to-parameter policy (enhanced keysize floor, `-PP`
    /// parallel decryption) lives in [`pivot_bench::algo_params`] so CLI
    /// runs and the bench binaries can never diverge.
    pub fn pivot_params(&self, algo: Algo) -> PivotParams {
        let tree = TreeParams {
            max_depth: self.params.max_depth,
            min_samples: self.params.min_samples,
            max_splits: self.params.max_splits,
            stop_when_pure: false,
        };
        let mut p = pivot_bench::algo_params(algo, tree, self.params.keysize, self.seed);
        // Scenario-level knobs on top of the shared policy.
        p.parallel_decrypt |= self.params.parallel_decrypt;
        p.crypto_threads = self.params.crypto_threads;
        p.randomness_pool = self.params.randomness_pool;
        p.packing = self.params.packing.to_core();
        p.comparison_bits = self.params.comparison_bits.to_core();
        p.dealer_pool = self.params.dealer_pool;
        p.trace = self.params.trace.to_core();
        p.scheduling = self.params.scheduling.to_core();
        p.verification = self.params.verification.to_core();
        // The scenario is validated before execution, so a malformed
        // tamper spec never reaches this unwrap.
        p.adversary = self.adversary_spec().expect("validated adversary spec");
        p
    }

    /// Echo of the effective configuration, embedded in every report so
    /// runs stay interpretable months later.
    pub fn to_json(&self) -> Json {
        let mut data = Json::obj()
            .with("kind", self.data.kind.label())
            .with("test_fraction", self.data.test_fraction);
        if self.data.kind == DataKind::Csv {
            data.set("path", self.data.path.clone());
            data.set("task", self.data.task.clone());
        } else {
            data.set("samples", self.data.samples);
            data.set("features_per_party", self.data.features_per_party);
        }
        if matches!(self.data.kind, DataKind::SyntheticClassification) {
            data.set("classes", self.data.classes);
            data.set("class_sep", self.data.class_sep);
            data.set("flip_y", self.data.flip_y);
        }
        if matches!(self.data.kind, DataKind::SyntheticRegression) {
            data.set("noise", self.data.noise);
        }
        if matches!(
            self.data.kind,
            DataKind::SyntheticClassification | DataKind::SyntheticRegression
        ) {
            // Echo the *effective* value so reports are self-contained.
            let features = self.parties * self.data.features_per_party;
            data.set(
                "informative",
                self.data
                    .informative
                    .unwrap_or_else(|| features.div_ceil(2)),
            );
        }

        let mut model = Json::obj().with("kind", self.model.kind.label());
        match self.model.kind {
            ModelKind::Gbdt => {
                model.set("rounds", self.model.rounds);
                model.set("learning_rate", self.model.learning_rate);
            }
            ModelKind::RandomForest => {
                model.set("trees", self.model.trees);
                model.set("sample_fraction", self.model.sample_fraction);
            }
            ModelKind::DecisionTree => {}
        }

        let mut root = Json::obj()
            .with("name", self.name.clone())
            .with("seed", self.seed)
            .with("parties", self.parties)
            .with(
                "algorithms",
                self.algorithms
                    .iter()
                    .map(|a| a.label())
                    .collect::<Vec<_>>(),
            )
            .with("data", data)
            .with(
                "params",
                Json::obj()
                    .with("max_depth", self.params.max_depth)
                    .with("max_splits", self.params.max_splits)
                    .with("min_samples", self.params.min_samples)
                    .with("keysize", u64::from(self.params.keysize))
                    .with("parallel_decrypt", self.params.parallel_decrypt)
                    .with("crypto_threads", self.params.crypto_threads)
                    .with("randomness_pool", self.params.randomness_pool)
                    .with("packing", self.params.packing.echo())
                    .with("comparison_bits", self.params.comparison_bits.echo())
                    .with("dealer_pool", self.params.dealer_pool)
                    .with("trace", self.params.trace.echo())
                    .with("scheduling", self.params.scheduling.echo())
                    .with("verification", self.params.verification.echo()),
            )
            .with("model", model)
            .with("network", {
                // Echo the *effective* settings (explicit keys merged over
                // the deprecated env fallback) so reports are
                // self-contained.
                let net = self.net_config();
                let mut echo = Json::obj()
                    .with("latency_us", net.latency.as_micros() as u64)
                    .with(
                        "bandwidth_mbps",
                        if net.secs_per_byte() > 0.0 {
                            Json::Num(net.bandwidth_mbps)
                        } else {
                            Json::Null
                        },
                    )
                    .with("recv_timeout_s", net.recv_timeout.as_secs_f64())
                    .with("connect_timeout_s", net.connect_timeout.as_secs_f64());
                // Liveness knobs are echoed only when armed, so reports
                // from heartbeat-free runs keep their PR-9 shape.
                if let Some(d) = net.heartbeat {
                    echo.set("heartbeat_s", d.as_secs_f64());
                }
                if let Some(d) = net.rejoin_deadline {
                    echo.set("rejoin_deadline_s", d.as_secs_f64());
                }
                echo
            });
        if let Some(ckpt) = &self.checkpoint {
            root.set(
                "checkpoint",
                Json::obj()
                    .with("every_levels", ckpt.every_levels)
                    .with("dir", ckpt.dir.clone()),
            );
        }
        if !self.faults.plan.is_empty() {
            root.set(
                "faults",
                Json::obj()
                    .with("plan", self.faults.plan.clone())
                    .with("seed", self.faults.seed.unwrap_or(0)),
            );
        }
        if let Some(tamper) = &self.adversary.tamper {
            root.set("adversary", Json::obj().with("tamper", tamper.clone()));
        }
        if let Some(sweep) = &self.sweep {
            root.set(
                "sweep",
                Json::obj()
                    .with("vary", sweep.vary.clone())
                    .with("values", sweep.values.clone()),
            );
        }
        root
    }

    /// Clone with one sweep axis set to `value` (the sweep itself is
    /// removed from the clone).
    pub fn with_axis(&self, axis: &str, value: usize) -> Scenario {
        let mut s = self.clone();
        s.sweep = None;
        match axis {
            "parties" => s.parties = value,
            "samples" => s.data.samples = value,
            "features_per_party" => s.data.features_per_party = value,
            "max_splits" => s.params.max_splits = value,
            "max_depth" => s.params.max_depth = value,
            // Network axes: per-endpoint NetConfig makes these sweepable
            // within one process (the old env-var latch could not).
            "latency_us" => s.network.latency_us = Some(value as u64),
            "bandwidth_mbps" => s.network.bandwidth_mbps = Some(value as f64),
            // Packing axis: 0 = off, 1 = auto, n ≥ 2 = exactly n slots —
            // the off-vs-auto A/B the packing baseline records.
            "packing" => {
                s.params.packing = match value {
                    0 => PackingSpec::Off,
                    1 => PackingSpec::Auto,
                    n => PackingSpec::Slots(n),
                }
            }
            // Comparison-width axis: 0 = full, 1 = auto, n ≥ 2 = floor n —
            // the full-vs-auto A/B the comparison baseline records.
            "comparison_bits" => {
                s.params.comparison_bits = match value {
                    0 => ComparisonBitsSpec::Full,
                    1 => ComparisonBitsSpec::Auto,
                    n => ComparisonBitsSpec::Floor(n as u32),
                }
            }
            // Scheduling axis: 0 = sequential, anything else = pipelined —
            // the A/B the round-compaction baseline records.
            "scheduling" => {
                s.params.scheduling = match value {
                    0 => SchedulingSpec::Sequential,
                    _ => SchedulingSpec::Pipelined,
                }
            }
            // Checkpoint-cadence axis: 0 = checkpointing off, n >= 1 =
            // every n barriers (keeping the scenario's dir) — the
            // durability-overhead A/B BENCH_PR10.json records.
            "checkpoint_every_levels" => match (value, &mut s.checkpoint) {
                (0, ckpt) => *ckpt = None,
                (n, Some(ckpt)) => ckpt.every_levels = n as u64,
                (_, None) => panic!(
                    "sweep over checkpoint_every_levels needs a [checkpoint] section \
                     to supply the directory"
                ),
            },
            other => panic!("unvalidated sweep axis {other:?}"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_core::config::Protocol;

    fn parse_toml(text: &str) -> Result<Scenario, String> {
        let doc = Doc {
            toml: Some(TomlDoc::parse(text).unwrap()),
            json: None,
        };
        Scenario::from_doc(&doc)
    }

    #[test]
    fn minimal_scenario_gets_defaults() {
        let s = parse_toml("[data]\nkind = \"synthetic-classification\"").unwrap();
        assert_eq!(s.parties, 3);
        assert_eq!(s.seed, 0xBE7C4);
        assert_eq!(s.algorithms, vec![Algo::PivotBasic]);
        assert_eq!(s.model.kind, ModelKind::DecisionTree);
        assert!(s.sweep.is_none());
        let ds = s.build_dataset().unwrap();
        assert_eq!(ds.num_samples(), 200);
        assert_eq!(ds.num_features(), 9);
    }

    #[test]
    fn unknown_keys_rejected() {
        let err = parse_toml("[params]\nmax_dept = 5").unwrap_err();
        assert!(err.contains("max_dept"), "{err}");
        let err = parse_toml("[paramz]\nmax_depth = 5").unwrap_err();
        assert!(err.contains("paramz"), "{err}");
        let err = parse_toml("algorithm = \"magic\"").unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn enhanced_keysize_floor_applied() {
        let s = parse_toml("algorithm = \"pivot-enhanced\"\n[params]\nkeysize = 128").unwrap();
        let p = s.pivot_params(Algo::PivotEnhanced);
        assert_eq!(p.keysize, 192);
        assert_eq!(p.protocol, Protocol::Enhanced);
        let basic = parse_toml("[params]\nkeysize = 128").unwrap();
        assert_eq!(basic.pivot_params(Algo::PivotBasic).keysize, 128);
    }

    #[test]
    fn pp_variants_force_parallel_decrypt() {
        let s = parse_toml("algorithm = \"pivot-basic-pp\"").unwrap();
        assert!(s.pivot_params(Algo::PivotBasicPp).parallel_decrypt);
        let s2 = parse_toml("algorithm = \"pivot-basic\"").unwrap();
        assert!(!s2.pivot_params(Algo::PivotBasic).parallel_decrypt);
    }

    #[test]
    fn crypto_threads_and_deprecated_alias() {
        let s = parse_toml("[params]\ncrypto_threads = 4\nrandomness_pool = 64").unwrap();
        assert_eq!(s.params.crypto_threads, 4);
        assert_eq!(s.params.randomness_pool, 64);
        let p = s.pivot_params(Algo::PivotBasicPp);
        assert_eq!(p.crypto_threads, 4);
        assert_eq!(p.randomness_pool, 64);
        // PR-2 scenarios using decrypt_threads keep working.
        let old = parse_toml("[params]\ndecrypt_threads = 8").unwrap();
        assert_eq!(old.params.crypto_threads, 8);
        // …but giving both is ambiguous.
        let err = parse_toml("[params]\ncrypto_threads = 4\ndecrypt_threads = 8").unwrap_err();
        assert!(err.contains("decrypt_threads"), "{err}");
        // Echo carries the generalized keys.
        let echo = s.to_json();
        assert_eq!(
            echo.path("params.crypto_threads").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(
            echo.path("params.randomness_pool").unwrap().as_u64(),
            Some(64)
        );
    }

    #[test]
    fn packing_knob_parses_and_applies() {
        // Default off, string modes, explicit slot counts.
        let s = parse_toml("[data]\nkind = \"synthetic-classification\"").unwrap();
        assert_eq!(s.params.packing, PackingSpec::Off);
        assert_eq!(
            s.pivot_params(Algo::PivotBasic).packing,
            pivot_core::config::Packing::Off
        );
        let s = parse_toml("[params]\npacking = \"auto\"").unwrap();
        assert_eq!(s.params.packing, PackingSpec::Auto);
        assert_eq!(
            s.pivot_params(Algo::PivotEnhancedPp).packing,
            pivot_core::config::Packing::Auto
        );
        assert_eq!(
            s.to_json().path("params.packing").unwrap().as_str(),
            Some("auto")
        );
        let s = parse_toml("[params]\npacking = 4").unwrap();
        assert_eq!(s.params.packing, PackingSpec::Slots(4));
        assert_eq!(
            s.to_json().path("params.packing").unwrap().as_u64(),
            Some(4)
        );
        // Invalid values are hard errors (typos must not silently run),
        // and the integer 1 is rejected as ambiguous: the sweep axis uses
        // 1 to mean "auto" while an explicit 1-slot layout packs nothing.
        assert!(parse_toml("[params]\npacking = \"yes\"").is_err());
        assert!(parse_toml("[params]\npacking = 0").is_err());
        assert!(parse_toml("[params]\npacking = 1").is_err());
    }

    #[test]
    fn comparison_bits_knob_parses_and_applies() {
        let s = parse_toml("[data]\nkind = \"synthetic-classification\"").unwrap();
        assert_eq!(s.params.comparison_bits, ComparisonBitsSpec::Full);
        assert_eq!(
            s.pivot_params(Algo::PivotBasic).comparison_bits,
            CompareBits::Full
        );
        let s = parse_toml("[params]\ncomparison_bits = \"auto\"\ndealer_pool = 64").unwrap();
        assert_eq!(s.params.comparison_bits, ComparisonBitsSpec::Auto);
        assert_eq!(s.params.dealer_pool, 64);
        let p = s.pivot_params(Algo::PivotEnhancedPp);
        assert_eq!(p.comparison_bits, CompareBits::Auto);
        assert_eq!(p.dealer_pool, 64);
        assert_eq!(
            s.to_json().path("params.comparison_bits").unwrap().as_str(),
            Some("auto")
        );
        assert_eq!(
            s.to_json().path("params.dealer_pool").unwrap().as_u64(),
            Some(64)
        );
        let s = parse_toml("[params]\ncomparison_bits = 24").unwrap();
        assert_eq!(s.params.comparison_bits, ComparisonBitsSpec::Floor(24));
        assert_eq!(
            s.to_json().path("params.comparison_bits").unwrap().as_u64(),
            Some(24)
        );
        // Typos and reserved sweep values are hard errors, and floors
        // beyond the fixed-point int_bits (45) are rejected at parse
        // time rather than panicking downstream.
        assert!(parse_toml("[params]\ncomparison_bits = \"fast\"").is_err());
        assert!(parse_toml("[params]\ncomparison_bits = 0").is_err());
        assert!(parse_toml("[params]\ncomparison_bits = 1").is_err());
        let err = parse_toml("[params]\ncomparison_bits = 46").unwrap_err();
        assert!(err.contains("int_bits"), "{err}");
        assert!(parse_toml("[params]\ncomparison_bits = 45").is_ok());
    }

    #[test]
    fn comparison_bits_axis_is_sweepable() {
        let s = parse_toml("[sweep]\nvary = \"comparison_bits\"\nvalues = [0, 1, 16]").unwrap();
        assert_eq!(
            s.with_axis("comparison_bits", 0).params.comparison_bits,
            ComparisonBitsSpec::Full
        );
        assert_eq!(
            s.with_axis("comparison_bits", 1).params.comparison_bits,
            ComparisonBitsSpec::Auto
        );
        assert_eq!(
            s.with_axis("comparison_bits", 16).params.comparison_bits,
            ComparisonBitsSpec::Floor(16)
        );
        // Out-of-range sweep points fail per-point validation cleanly
        // (no mid-sweep panic), like parties = 0.
        let bad = s.with_axis("comparison_bits", 46);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("int_bits"), "{err}");
        assert!(s.with_axis("comparison_bits", 45).validate().is_ok());
    }

    #[test]
    fn packing_axis_is_sweepable() {
        let s = parse_toml("[sweep]\nvary = \"packing\"\nvalues = [0, 1, 3]").unwrap();
        assert_eq!(s.with_axis("packing", 0).params.packing, PackingSpec::Off);
        assert_eq!(s.with_axis("packing", 1).params.packing, PackingSpec::Auto);
        assert_eq!(
            s.with_axis("packing", 3).params.packing,
            PackingSpec::Slots(3)
        );
    }

    #[test]
    fn sweep_parses_and_applies() {
        let s = parse_toml(
            "algorithms = [\"pivot-basic\", \"npd-dt\"]\n\
             [sweep]\nvary = \"parties\"\nvalues = [2, 3, 4]",
        )
        .unwrap();
        let sweep = s.sweep.clone().unwrap();
        assert_eq!(sweep.values, vec![2, 3, 4]);
        let point = s.with_axis("parties", 4);
        assert_eq!(point.parties, 4);
        assert!(point.sweep.is_none());
    }

    #[test]
    fn informative_is_honoured_and_bounded() {
        let s = parse_toml(
            "parties = 2\n[data]\nkind = \"synthetic-classification\"\n\
             features_per_party = 3\ninformative = 5",
        )
        .unwrap();
        assert_eq!(s.data.informative, Some(5));
        assert_eq!(
            s.to_json().path("data.informative").unwrap().as_u64(),
            Some(5)
        );
        s.build_dataset().unwrap();

        let err = parse_toml(
            "parties = 2\n[data]\nkind = \"synthetic-classification\"\n\
             features_per_party = 2\ninformative = 9",
        )
        .unwrap_err();
        assert!(err.contains("informative"), "{err}");
        let err = parse_toml("[data]\nkind = \"energy-like\"\ninformative = 2").unwrap_err();
        assert!(err.contains("synthetic"), "{err}");
    }

    #[test]
    fn oversized_integers_rejected_exactly_at_2_pow_53() {
        // 2^53 - 1 is the largest integer accepted; 2^53 itself must be
        // rejected on both backends because JSON cannot distinguish it
        // from a rounded 2^53 + 1 (not silently run a different value).
        let s = parse_toml("seed = 9007199254740991").unwrap();
        assert_eq!(s.seed, 9_007_199_254_740_991);
        let err = parse_toml("seed = 9007199254740992").unwrap_err();
        assert!(err.contains("seed"), "{err}");
        for json_text in [
            "{\"seed\": 9007199254740992}",
            "{\"seed\": 9007199254740993}",
        ] {
            let doc = Doc {
                toml: None,
                json: Some(Json::parse(json_text).unwrap()),
            };
            let err = Scenario::from_doc(&doc).unwrap_err();
            assert!(err.contains("seed"), "{err}");
        }
    }

    #[test]
    fn sweep_points_revalidate() {
        let s = parse_toml(
            "[sweep]\nvary = \"parties\"\nvalues = [2]\n\
             [data]\nkind = \"synthetic-classification\"",
        )
        .unwrap();
        let bad = s.with_axis("parties", 0);
        let err = bad.validate().unwrap_err();
        assert!(err.contains("parties"), "{err}");
        assert!(s.with_axis("parties", 2).validate().is_ok());
    }

    #[test]
    fn cli_params_match_bench_params() {
        // The CLI must produce byte-identical policy to the bench harness
        // for every algorithm (shared helper, but lock the equivalence).
        let s = parse_toml("seed = 99\n[params]\nkeysize = 128\nmin_samples = 2").unwrap();
        for algo in [
            Algo::PivotBasic,
            Algo::PivotBasicPp,
            Algo::PivotEnhanced,
            Algo::PivotEnhancedPp,
            Algo::SpdzDt,
            Algo::NpdDt,
        ] {
            let cli = s.pivot_params(algo);
            let bench = pivot_bench::algo_params(
                algo,
                TreeParams {
                    max_depth: s.params.max_depth,
                    min_samples: s.params.min_samples,
                    max_splits: s.params.max_splits,
                    stop_when_pure: false,
                },
                s.params.keysize,
                s.seed,
            );
            assert_eq!(cli.keysize, bench.keysize, "{algo:?}");
            assert_eq!(cli.parallel_decrypt, bench.parallel_decrypt, "{algo:?}");
            assert_eq!(cli.protocol, bench.protocol, "{algo:?}");
            assert_eq!(cli.dealer_seed, bench.dealer_seed, "{algo:?}");
        }
    }

    #[test]
    fn network_section_builds_per_run_net_config() {
        let s =
            parse_toml("[network]\nlatency_us = 250\nbandwidth_mbps = 1000\nrecv_timeout_s = 5")
                .unwrap();
        let net = s.net_config();
        assert_eq!(net.latency, std::time::Duration::from_micros(250));
        assert_eq!(net.bandwidth_mbps, 1000.0);
        assert_eq!(net.recv_timeout, std::time::Duration::from_secs(5));
        // Unset sections leave the defaults (no simulation, 120 s).
        let plain = parse_toml("[data]\nkind = \"synthetic-classification\"").unwrap();
        assert!(!plain.net_config().simulates());
        // Echo carries the effective values.
        let echo = s.to_json();
        assert_eq!(echo.path("network.latency_us").unwrap().as_u64(), Some(250));
        assert_eq!(
            echo.path("network.recv_timeout_s").unwrap().as_f64(),
            Some(5.0)
        );
    }

    #[test]
    fn explicit_network_keys_win_over_env_fallback() {
        // Env exported *before* the scenario is loaded: explicit key wins
        // and the overlap is reported.
        std::env::set_var("PIVOT_NET_RECV_TIMEOUT_S", "33");
        let s = parse_toml("[network]\nrecv_timeout_s = 5").unwrap();
        assert_eq!(
            s.net_config().recv_timeout,
            std::time::Duration::from_secs(5)
        );
        let warn = s.env_shadow_warning().expect("overlap must warn");
        assert!(warn.contains("PIVOT_NET_RECV_TIMEOUT_S"), "{warn}");
        std::env::remove_var("PIVOT_NET_RECV_TIMEOUT_S");
        assert!(s.env_shadow_warning().is_none());

        // Env exported *after* loading: same precedence, same warning
        // (net_config reads the environment lazily).
        let late = parse_toml("[network]\nrecv_timeout_s = 7").unwrap();
        std::env::set_var("PIVOT_NET_RECV_TIMEOUT_S", "33");
        assert_eq!(
            late.net_config().recv_timeout,
            std::time::Duration::from_secs(7)
        );
        assert!(late.env_shadow_warning().is_some());

        // Without an explicit key the deprecated fallback still applies —
        // and is not an overlap.
        let plain = parse_toml("[data]\nkind = \"synthetic-classification\"").unwrap();
        assert_eq!(
            plain.net_config().recv_timeout,
            std::time::Duration::from_secs(33)
        );
        assert!(plain.env_shadow_warning().is_none());
        std::env::remove_var("PIVOT_NET_RECV_TIMEOUT_S");
    }

    #[test]
    fn trace_levels_parse_and_echo() {
        let d = parse_toml("[data]\nkind = \"synthetic-classification\"").unwrap();
        assert_eq!(d.params.trace, TraceSpec::Off);
        for (text, spec, level) in [
            ("off", TraceSpec::Off, TraceLevel::Off),
            ("phases", TraceSpec::Phases, TraceLevel::Phases),
            ("full", TraceSpec::Full, TraceLevel::Full),
        ] {
            let s = parse_toml(&format!("[params]\ntrace = \"{text}\"")).unwrap();
            assert_eq!(s.params.trace, spec);
            assert_eq!(s.pivot_params(s.algorithms[0]).trace, level);
            assert_eq!(
                s.to_json().path("params.trace").unwrap().as_str(),
                Some(text)
            );
        }
        let err = parse_toml("[params]\ntrace = \"verbose\"").unwrap_err();
        assert!(err.contains("trace"), "{err}");
    }

    #[test]
    fn network_axes_are_sweepable() {
        let s = parse_toml("[sweep]\nvary = \"latency_us\"\nvalues = [0, 200, 1000]").unwrap();
        let point = s.with_axis("latency_us", 1000);
        assert_eq!(
            point.net_config().latency,
            std::time::Duration::from_millis(1)
        );
        let s = parse_toml("[sweep]\nvary = \"bandwidth_mbps\"\nvalues = [100, 1000]").unwrap();
        let point = s.with_axis("bandwidth_mbps", 100);
        assert!(point.net_config().secs_per_byte() > 0.0);
    }

    #[test]
    fn invalid_network_values_rejected() {
        let err = parse_toml("[network]\nrecv_timeout_s = 0").unwrap_err();
        assert!(err.contains("recv_timeout_s"), "{err}");
        // Values beyond Duration's float range must be a clean error, not
        // a panic inside Duration::from_secs_f64.
        let err = parse_toml("[network]\nrecv_timeout_s = 1e30").unwrap_err();
        assert!(err.contains("recv_timeout_s"), "{err}");
        let err = parse_toml("[network]\nbandwidth_mbps = -1").unwrap_err();
        assert!(err.contains("bandwidth_mbps"), "{err}");
        let err = parse_toml("[network]\nlatency = 5").unwrap_err();
        assert!(err.contains("latency"), "{err}");
        let err = parse_toml("[network]\nconnect_timeout_s = 0").unwrap_err();
        assert!(err.contains("connect_timeout_s"), "{err}");
    }

    #[test]
    fn connect_timeout_flows_into_net_config_and_echo() {
        let s = parse_toml("[network]\nconnect_timeout_s = 2.5").unwrap();
        let net = s.net_config();
        assert_eq!(net.connect_timeout, std::time::Duration::from_secs_f64(2.5));
        let echo = s.to_json();
        assert_eq!(
            echo.path("network.connect_timeout_s").unwrap().as_f64(),
            Some(2.5)
        );
        // Unset leaves the transport default.
        let s = parse_toml("").unwrap();
        assert_eq!(
            s.net_config().connect_timeout,
            pivot_transport::DEFAULT_CONNECT_TIMEOUT
        );
    }

    #[test]
    fn faults_section_parses_into_a_plan() {
        let s = parse_toml(
            "[faults]\nplan = [\"drop_link 0-1 at_round=4\", \"crash_party 2 at_bytes=100\"]\nseed = 9",
        )
        .unwrap();
        let plan = s.fault_plan().unwrap();
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.seed, 9);
        let echo = s.to_json();
        assert_eq!(echo.path("faults.seed").unwrap().as_u64(), Some(9));
        // No [faults] section: empty plan, no echo.
        let s = parse_toml("").unwrap();
        assert!(s.fault_plan().unwrap().is_empty());
        assert!(s.to_json().path("faults").is_none());
    }

    #[test]
    fn invalid_faults_rejected() {
        let err = parse_toml("[faults]\nplan = [\"meteor_strike 0-1 at_round=1\"]").unwrap_err();
        assert!(err.contains("meteor_strike"), "{err}");
        // Party ids must fit the scenario's party count (default 3).
        let err = parse_toml("[faults]\nplan = [\"crash_party 7 at_round=1\"]").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = parse_toml("[faults]\nchaos = true").unwrap_err();
        assert!(err.contains("chaos"), "{err}");
    }

    #[test]
    fn invalid_sweeps_rejected() {
        assert!(parse_toml("[sweep]\nvary = \"keysize\"\nvalues = [1]").is_err());
        assert!(parse_toml("[sweep]\nvary = \"parties\"").is_err());
        assert!(parse_toml("[sweep]\nvalues = [2]").is_err());
    }

    #[test]
    fn baseline_plus_ensemble_rejected() {
        let err = parse_toml("algorithm = \"npd-dt\"\n[model]\nkind = \"gbdt\"").unwrap_err();
        assert!(err.contains("baseline"), "{err}");
    }

    #[test]
    fn regression_scenario_task() {
        let s = parse_toml("[data]\nkind = \"synthetic-regression\"").unwrap();
        assert_eq!(s.task().unwrap(), Task::Regression);
        let ds = s.build_dataset().unwrap();
        assert!(ds.labels().iter().all(|y| y.abs() <= 1.0));
    }

    #[test]
    fn json_echo_round_trips() {
        let s = parse_toml(
            "name = \"echo\"\nseed = 7\n[data]\nkind = \"synthetic-regression\"\n\
             [model]\nkind = \"gbdt\"\nrounds = 2",
        )
        .unwrap();
        let echo = s.to_json();
        assert_eq!(echo.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(echo.path("model.rounds").unwrap().as_u64(), Some(2));
        assert_eq!(
            echo.path("data.kind").unwrap().as_str(),
            Some("synthetic-regression")
        );
        // The echo itself must serialize and re-parse.
        let text = echo.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), echo);
    }

    #[test]
    fn json_scenarios_parse_identically() {
        let doc = Doc {
            toml: None,
            json: Some(
                Json::parse(
                    r#"{
                        "name": "from json",
                        "parties": 2,
                        "algorithm": "pivot-basic",
                        "data": {"kind": "synthetic-classification", "samples": 40},
                        "params": {"max_depth": 2}
                    }"#,
                )
                .unwrap(),
            ),
        };
        let s = Scenario::from_doc(&doc).unwrap();
        assert_eq!(s.name, "from json");
        assert_eq!(s.parties, 2);
        assert_eq!(s.data.samples, 40);
        assert_eq!(s.params.max_depth, 2);
    }

    #[test]
    fn verification_knob_parses_and_applies() {
        // Default off: the honest-but-curious transcript is untouched.
        let s = parse_toml("[data]\nkind = \"synthetic-classification\"").unwrap();
        assert_eq!(s.params.verification, VerificationSpec::Off);
        assert_eq!(
            s.pivot_params(Algo::PivotBasic).verification,
            pivot_core::Verification::Off
        );
        let s = parse_toml("[params]\nverification = \"full\"").unwrap();
        assert_eq!(s.params.verification, VerificationSpec::Full);
        assert_eq!(
            s.pivot_params(Algo::PivotBasic).verification,
            pivot_core::Verification::Full
        );
        assert_eq!(
            s.to_json().path("params.verification").unwrap().as_str(),
            Some("full")
        );
        let s = parse_toml("[params]\nverification = \"spot(0.25)\"").unwrap();
        assert_eq!(s.params.verification, VerificationSpec::Spot(0.25));
        assert_eq!(
            s.to_json().path("params.verification").unwrap().as_str(),
            Some("spot(0.25)")
        );
        // Typos and out-of-range probabilities are hard errors.
        assert!(parse_toml("[params]\nverification = \"on\"").is_err());
        assert!(parse_toml("[params]\nverification = \"spot(1.5)\"").is_err());
        assert!(parse_toml("[params]\nverification = \"spot(-0.1)\"").is_err());
    }

    #[test]
    fn verification_only_covers_proved_paths() {
        // Enhanced algorithms carry no proofs.
        let err = parse_toml("algorithm = \"pivot-enhanced\"\n[params]\nverification = \"full\"")
            .unwrap_err();
        assert!(err.contains("carries no proofs"), "{err}");
        // Neither does the packed statistics pipeline.
        let err = parse_toml("[params]\nverification = \"full\"\npacking = \"auto\"").unwrap_err();
        assert!(err.contains("packing"), "{err}");
    }

    #[test]
    fn adversary_section_parses_and_validates() {
        let s = parse_toml(
            "[params]\nverification = \"spot(1.0)\"\n\
             [adversary]\ntamper = \"party 1 phase=stats index=3\"",
        )
        .unwrap();
        let adv = s.adversary_spec().unwrap().unwrap();
        assert_eq!(adv.party, 1);
        assert_eq!(adv.phase, "stats");
        assert_eq!(adv.index, 3);
        let p = s.pivot_params(Algo::PivotBasic);
        assert_eq!(p.adversary.as_ref(), Some(&adv));
        assert_eq!(
            s.to_json().path("adversary.tamper").unwrap().as_str(),
            Some("party 1 phase=stats index=3")
        );
        // Tampering without verification on is unobservable — rejected.
        let err = parse_toml("[adversary]\ntamper = \"party 1 phase=stats\"").unwrap_err();
        assert!(err.contains("verification"), "{err}");
        // Out-of-range party and malformed specs are rejected.
        let err = parse_toml(
            "[params]\nverification = \"full\"\n[adversary]\ntamper = \"party 7 phase=stats\"",
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(parse_toml(
            "[params]\nverification = \"full\"\n[adversary]\ntamper = \"phase=stats\"",
        )
        .is_err());
    }
}
