//! The `pivot` binary: scenario-driven train / predict / bench runs.

use pivot_cli::report;
use pivot_cli::runner::execute;
use pivot_cli::scenario::Scenario;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pivot — privacy preserving vertical federated learning for tree-based models

USAGE:
    pivot <train|predict> --scenario <FILE> [--out <FILE>] [--quiet]
    pivot bench --scenario <FILE> [--out <FILE>] [--baseline <FILE>] [--quiet]
    pivot party --scenario <FILE> --id <N> --peers <ADDR0,ADDR1,...>
                [--listen <ADDR>] [--out <FILE>] [--quiet]
                [--resume] [--supervise]
    pivot trace <FILE> [--check]
    pivot trace --diff <FILE_A> <FILE_B>
    pivot --help | --version

SUBCOMMANDS:
    train      Train on the scenario's dataset, evaluate the held-out
               split, and write a full JSON report (all parties run as
               threads of this process)
    predict    Same run, reported around prediction latency (per-sample
               time, prediction-phase traffic)
    bench      Run the scenario's [sweep] axis across its algorithms
               (a Figure-4-style sweep) and report every point; network
               axes (latency_us, bandwidth_mbps) sweep within one process.
               With --baseline, write a machine-readable perf record
               (per-stage wall clock, batched-crypto ops/sec, randomness-
               pool hit rate) instead of sweeping: each algorithm runs
               once at the base point and [sweep] must be absent
    party      Run ONE party of the scenario over TCP — one process per
               client, the paper's deployment shape. Start m processes
               with ids 0..m-1 and the same --peers list; each writes a
               per-party report matching the in-process run bit-for-bit.
               Lost connections are resumed transparently (replayed from
               a retransmit ring); with a [checkpoint] section each
               party also writes durable checkpoints it can restart
               from. Unrecoverable failures write a structured error
               report and exit 10 (transport failure, incl. a peer lost
               past the rejoin deadline or an unreplayable resume gap),
               11 (this party's own [faults] crash_party fired), 12 (a
               zero-knowledge proof was rejected — the report names the
               accused party), or 13 (checkpoint state unreadable,
               corrupt, mismatched, or unwritable)
    trace      Inspect tracing output: point it at a run report (train /
               predict / bench / party / --baseline JSON) to print the
               embedded per-phase round/byte/wall tables, or at a
               *-trace.json Chrome-trace export to reconstruct and print
               the phase table plus the top round-serializing spans.
               Traces exist when the scenario sets params.trace =
               \"phases\" or \"full\"

OPTIONS:
    --scenario <FILE>   TOML or JSON scenario (see examples/scenarios/)
    --out <FILE>        Report path (default: <scenario-stem>-report.json,
                        or <scenario-stem>-party<N>-report.json for party)
    --baseline <FILE>   bench only: also write a perf-baseline JSON record
                        (see BENCH_PR3.json for the committed trajectory)
    --quiet             Suppress the human-readable summary on stdout
    --id <N>            party only: this process's party id in 0..m
    --peers <LIST>      party only: comma-separated addresses of all m
                        parties in id order (same list for every process)
    --listen <ADDR>     party only: local bind address (default: the
                        --peers entry for --id)
    --resume            party only: restart from the newest checkpoint in
                        the scenario's checkpoint.dir (fresh start when
                        none exists yet); peers splice the restarted
                        party back in and replay what it missed
    --supervise         party only: wrap the party in a supervisor child
                        process to drive a [faults] kill_party entry —
                        really SIGKILLs the child at the configured
                        level, then relaunches it with --resume
    --check             trace only: validate a Chrome-trace export
                        (balanced B/E per track, monotonic timestamps,
                        known phase names) and exit non-zero on violation
    --diff              trace only: take two report / trace files and
                        print their per-phase rounds, sent bytes, and
                        wait_s side by side with signed deltas (B − A)
                        and the total round ratio — e.g. a sequential
                        run against its pipelined twin
    -h, --help          Show this help
    -V, --version       Show the version
";

struct Args {
    command: String,
    scenario: PathBuf,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    quiet: bool,
}

fn parse_party_args(argv: &[String]) -> Result<pivot_cli::party::PartyArgs, String> {
    let mut scenario = None;
    let mut id = None;
    let mut listen = None;
    let mut peers = None;
    let mut out = None;
    let mut quiet = false;
    let mut resume = false;
    let mut supervise = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "party" if scenario.is_none() && id.is_none() => {}
            "--scenario" => {
                let v = it.next().ok_or("--scenario needs a file path")?;
                scenario = Some(PathBuf::from(v));
            }
            "--id" => {
                let v = it.next().ok_or("--id needs a party id")?;
                id = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--id {v:?} is not a party id"))?,
                );
            }
            "--listen" => {
                let v = it.next().ok_or("--listen needs an address")?;
                listen = Some(v.clone());
            }
            "--peers" => {
                let v = it
                    .next()
                    .ok_or("--peers needs a comma-separated address list")?;
                peers = Some(
                    v.split(',')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect::<Vec<_>>(),
                );
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                out = Some(PathBuf::from(v));
            }
            "--quiet" => quiet = true,
            "--resume" => resume = true,
            "--supervise" => supervise = true,
            other => {
                return Err(format!("unexpected argument {other:?} (see pivot --help)"));
            }
        }
    }
    Ok(pivot_cli::party::PartyArgs {
        scenario: scenario.ok_or("missing --scenario <FILE>")?,
        id: id.ok_or("party needs --id <N>")?,
        listen,
        peers: peers.ok_or("party needs --peers <ADDR0,ADDR1,...>")?,
        out,
        quiet,
        resume,
        supervise,
    })
}

fn parse_trace_args(argv: &[String]) -> Result<pivot_cli::trace_cmd::TraceArgs, String> {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut check = false;
    let mut diff = false;
    for arg in argv.iter().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--diff" => diff = true,
            other if !other.starts_with('-') && inputs.len() < 2 => {
                inputs.push(PathBuf::from(other));
            }
            other => {
                return Err(format!("unexpected argument {other:?} (see pivot --help)"));
            }
        }
    }
    if diff && check {
        return Err("--diff and --check are mutually exclusive".into());
    }
    if diff {
        if inputs.len() != 2 {
            return Err("--diff needs exactly two report or trace files".into());
        }
        let b = inputs.pop().expect("two inputs");
        let a = inputs.pop().expect("two inputs");
        return Ok(pivot_cli::trace_cmd::TraceArgs {
            input: a,
            check: false,
            diff: Some(b),
        });
    }
    if inputs.len() > 1 {
        return Err("trace takes one file (two only with --diff)".into());
    }
    Ok(pivot_cli::trace_cmd::TraceArgs {
        input: inputs
            .pop()
            .ok_or("trace needs a report or trace JSON file")?,
        check,
        diff: None,
    })
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut command = None;
    let mut scenario = None;
    let mut out = None;
    let mut baseline = None;
    let mut quiet = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "train" | "predict" | "bench" if command.is_none() => {
                command = Some(arg.clone());
            }
            "--scenario" => {
                let v = it.next().ok_or("--scenario needs a file path")?;
                scenario = Some(PathBuf::from(v));
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                out = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                baseline = Some(PathBuf::from(v));
            }
            "--quiet" => quiet = true,
            other => {
                return Err(format!("unexpected argument {other:?} (see pivot --help)"));
            }
        }
    }
    let command = command.ok_or("missing subcommand (train, predict, or bench)")?;
    let scenario = scenario.ok_or("missing --scenario <FILE>")?;
    if baseline.is_some() && command != "bench" {
        return Err("--baseline only applies to the bench subcommand".into());
    }
    Ok(Args {
        command,
        scenario,
        out,
        baseline,
        quiet,
    })
}

fn human_bytes(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1} MiB", n as f64 / (1024.0 * 1024.0))
    } else if n >= 10_000 {
        format!("{:.1} KiB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

fn run(args: &Args) -> Result<(), String> {
    let scenario = Scenario::load(&args.scenario)?;
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| report::default_report_path(&args.scenario, ""));

    let report = match args.command.as_str() {
        "train" | "predict" => {
            let algo = scenario.sole_algorithm()?;
            let exec = execute(&scenario, algo, false)?;
            if !args.quiet {
                let p0 = &exec.parties[0];
                println!(
                    "{} [{}] m={} n={} d={}: trained {} internal nodes in {:.2}s \
                     ({} sent by party 0), predicted {} samples in {:.2}s",
                    scenario.name,
                    algo.label(),
                    scenario.parties,
                    exec.train_samples,
                    exec.features,
                    p0.internal_nodes,
                    p0.train_wall_s,
                    human_bytes(p0.train_bytes_sent),
                    exec.test_samples,
                    p0.predict_wall_s,
                );
                if let Some(metric) = exec.metric {
                    println!("test {} = {metric:.4}", exec.metric_name);
                }
            }
            // Traced runs also get side-car Perfetto/Prometheus exports
            // next to the report.
            report::write_trace_exports(&out_path, &exec, args.quiet)?;
            if args.command == "train" {
                report::train_report(&scenario, &exec)
            } else {
                report::predict_report(&scenario, &exec)
            }
        }
        "bench" => {
            if scenario.sweep.is_none() && args.baseline.is_none() {
                return Err("bench needs a [sweep] section (vary + values), \
                            or --baseline for a single-point perf record"
                    .into());
            }
            // A baseline is a single-point record: mixing it with a sweep
            // would repeat algorithms across points with no axis tag and
            // make the derived speedups meaningless.
            if scenario.sweep.is_some() && args.baseline.is_some() {
                return Err("--baseline records a single configuration; remove the \
                            [sweep] section (run the sweep separately)"
                    .into());
            }
            // Without a sweep (--baseline mode) every algorithm runs once
            // at the base point, reported under a degenerate axis.
            let (axis, points): (String, Vec<usize>) = match &scenario.sweep {
                Some(sweep) => (sweep.vary.clone(), sweep.values.clone()),
                None => ("point".into(), vec![0]),
            };
            let mut results = Vec::new();
            for &value in &points {
                let point = if scenario.sweep.is_some() {
                    scenario.with_axis(&axis, value)
                } else {
                    scenario.clone()
                };
                // A sweep value can make an otherwise-valid scenario
                // invalid (e.g. parties = 0); check per point.
                point
                    .validate()
                    .map_err(|e| format!("sweep point {axis}={value}: {e}"))?;
                for &algo in &point.algorithms {
                    let exec = execute(&point, algo, true)?;
                    if !args.quiet {
                        println!(
                            "{axis}={value} {}: train {:.2}s, {} sent by party 0",
                            algo.label(),
                            exec.parties[0].train_wall_s,
                            human_bytes(exec.parties[0].train_bytes_sent),
                        );
                    }
                    results.push((value, exec));
                }
            }
            if let Some(baseline_path) = &args.baseline {
                let execs: Vec<_> = results.iter().map(|(_, e)| e.clone()).collect();
                let record = pivot_cli::baseline::baseline_report(&scenario, &execs);
                std::fs::write(baseline_path, record.to_pretty())
                    .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
                if !args.quiet {
                    println!("perf baseline written to {}", baseline_path.display());
                }
            }
            report::bench_report(&scenario, &axis, &results)
        }
        other => return Err(format!("unknown subcommand {other:?}")),
    };

    std::fs::write(&out_path, report.to_pretty())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    if !args.quiet {
        println!("report written to {}", out_path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if argv.iter().any(|a| a == "--version" || a == "-V") {
        println!("pivot-cli {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    if argv.first().map(String::as_str) == Some("trace") {
        let result = parse_trace_args(&argv).and_then(|args| pivot_cli::trace_cmd::run(&args));
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("party") {
        let args = match parse_party_args(&argv) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match pivot_cli::party::run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            // Failures get distinct exit codes (10 = network, 11 = this
            // party's own injected crash, 12 = rejected proof, 13 =
            // checkpoint failure) so a harness can classify a dead run
            // without parsing stderr; the structured error report has
            // already been written by `party::run`.
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(e.exit_code())
            }
        };
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
