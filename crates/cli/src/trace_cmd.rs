//! `pivot trace`: inspect a run's tracing output.
//!
//! Accepts either a run report (`*-report.json`, bench report, or
//! `--baseline` record) carrying embedded phase tables, or a raw
//! Chrome-trace export (`*-trace.json`). For a Chrome trace it first
//! re-derives the spans from the `B`/`E` stream — which doubles as a
//! structural validation (`--check`): every track's events must balance,
//! timestamps must be monotonic per track, and every span must name a
//! known phase.

use crate::json::Json;
use std::collections::HashMap;
use std::path::PathBuf;

/// Parsed arguments of the `trace` subcommand.
pub struct TraceArgs {
    pub input: PathBuf,
    /// Validate a Chrome-trace export and exit non-zero on violations
    /// instead of printing the tables (the CI smoke gate).
    pub check: bool,
    /// Second input for `--diff`: print both phase tables side by side
    /// with per-phase rounds/bytes/wait deltas (A = `input`, B = this).
    pub diff: Option<PathBuf>,
}

/// How many spans the "top round-serializing spans" section prints.
const TOP_SPANS: usize = 10;

pub fn run(args: &TraceArgs) -> Result<(), String> {
    if let Some(b) = &args.diff {
        return run_diff(&args.input, b);
    }
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let doc = Json::parse(&text)?;
    if doc.get("traceEvents").is_some() {
        run_chrome(&doc, args.check)
    } else if args.check {
        Err(
            "--check validates a Chrome-trace export (a file with traceEvents); \
             this looks like a run report"
                .into(),
        )
    } else {
        run_report(&doc)
    }
}

/// One span reconstructed from a balanced `B`/`E` pair.
#[derive(Debug)]
struct ChromeSpan {
    tid: u64,
    name: String,
    phase: String,
    cat: String,
    dur_us: f64,
    sent_bytes: u64,
    recv_bytes: u64,
    wait_ns: u64,
    rounds: u64,
}

fn event_str(ev: &Json, key: &str) -> Option<String> {
    ev.get(key).and_then(|v| v.as_str()).map(str::to_string)
}

fn arg_u64(ev: &Json, key: &str) -> u64 {
    ev.path(&format!("args.{key}"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Validate and reconstruct the span stream of a Chrome-trace export.
fn parse_chrome(doc: &Json) -> Result<Vec<ChromeSpan>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("traceEvents is not an array")?;
    // Per-track open-span stack and last timestamp.
    let mut stacks: HashMap<u64, Vec<(String, String, String, f64)>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut spans = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = event_str(ev, "ph").ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let prev = last_ts.entry(tid).or_insert(ts);
        if ts < *prev {
            return Err(format!(
                "event {i}: ts {ts} goes backwards on track {tid} (last {prev})"
            ));
        }
        *prev = ts;
        match ph.as_str() {
            "B" => {
                let name =
                    event_str(ev, "name").ok_or_else(|| format!("event {i}: B without name"))?;
                let cat = event_str(ev, "cat").unwrap_or_default();
                let phase = ev
                    .path("args.phase")
                    .and_then(|v| v.as_str())
                    .unwrap_or("")
                    .to_string();
                if cat != "runtime" && !pivot_trace::PHASES.contains(&phase.as_str()) {
                    return Err(format!(
                        "event {i}: span {name:?} names unknown phase {phase:?}"
                    ));
                }
                stacks.entry(tid).or_default().push((name, phase, cat, ts));
            }
            "E" => {
                let (name, phase, cat, start) =
                    stacks.entry(tid).or_default().pop().ok_or_else(|| {
                        format!("event {i}: E without a matching B on track {tid}")
                    })?;
                spans.push(ChromeSpan {
                    tid,
                    name,
                    phase,
                    cat,
                    dur_us: ts - start,
                    sent_bytes: arg_u64(ev, "sent_bytes"),
                    recv_bytes: arg_u64(ev, "recv_bytes"),
                    wait_ns: arg_u64(ev, "wait_ns"),
                    rounds: arg_u64(ev, "rounds"),
                });
            }
            "C" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "track {tid}: {} span(s) opened but never closed",
                stack.len()
            ));
        }
    }
    Ok(spans)
}

fn run_chrome(doc: &Json, check: bool) -> Result<(), String> {
    let spans = parse_chrome(doc)?;
    if check {
        let tracks: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
        println!(
            "trace OK: {} spans across {} track(s), balanced B/E, monotonic ts, \
             known phases",
            spans.len(),
            tracks.len()
        );
        return Ok(());
    }

    // Phase table: counters bucket every attributed span; wall time counts
    // phase-root spans only (fine spans re-bucket counters, not time).
    let mut rows: Vec<(String, u64, f64, u64, u64, u64, u64)> = Vec::new();
    for &phase in pivot_trace::PHASES {
        let mut row = (phase.to_string(), 0u64, 0.0f64, 0u64, 0u64, 0u64, 0u64);
        for s in spans.iter().filter(|s| s.phase == phase) {
            row.3 += s.wait_ns;
            row.4 += s.rounds;
            row.5 += s.sent_bytes;
            row.6 += s.recv_bytes;
            if s.cat == "phase" {
                row.1 += 1;
                row.2 += s.dur_us / 1e6;
            }
        }
        if row.1 > 0 || row.3 > 0 || row.4 > 0 || row.5 > 0 || row.6 > 0 {
            rows.push(row);
        }
    }
    println!("phase table (all tracks)");
    println!(
        "{:<14} {:>7} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "phase", "spans", "wall_s", "wait_s", "rounds", "sent_B", "recv_B"
    );
    for (phase, count, wall_s, wait_ns, rounds, sent, recv) in &rows {
        println!(
            "{phase:<14} {count:>7} {wall_s:>10.4} {:>10.4} {rounds:>8} {sent:>12} {recv:>12}",
            *wait_ns as f64 / 1e9
        );
    }

    let mut by_rounds: Vec<&ChromeSpan> = spans.iter().filter(|s| s.rounds > 0).collect();
    by_rounds.sort_by(|a, b| {
        b.rounds
            .cmp(&a.rounds)
            .then(b.wait_ns.cmp(&a.wait_ns))
            .then(a.name.cmp(&b.name))
    });
    if !by_rounds.is_empty() {
        println!("\ntop round-serializing spans");
        println!(
            "{:<24} {:>5} {:<14} {:>8} {:>10} {:>10}",
            "span", "tid", "phase", "rounds", "wait_s", "dur_s"
        );
        for s in by_rounds.iter().take(TOP_SPANS) {
            println!(
                "{:<24} {:>5} {:<14} {:>8} {:>10.4} {:>10.4}",
                s.name,
                s.tid,
                s.phase,
                s.rounds,
                s.wait_ns as f64 / 1e9,
                s.dur_us / 1e6
            );
        }
    }
    Ok(())
}

/// Print a phase-rows array embedded in a report.
fn print_rows(rows: &[Json]) {
    println!(
        "  {:<14} {:>7} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "phase", "spans", "wall_s", "wait_s", "rounds", "sent_B", "recv_B"
    );
    for row in rows {
        let f = |k: &str| row.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let u = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "  {:<14} {:>7} {:>10.4} {:>10.4} {:>8} {:>12} {:>12}",
            row.get("phase").and_then(|v| v.as_str()).unwrap_or("?"),
            u("spans"),
            f("wall_s"),
            f("wait_s"),
            u("rounds"),
            u("bytes_sent"),
            u("bytes_received"),
        );
    }
}

fn run_report(doc: &Json) -> Result<(), String> {
    let mut printed = false;
    // train / predict / party reports.
    if let Some(tables) = doc.path("trace.per_party").and_then(|v| v.as_array()) {
        for t in tables {
            let party = t.get("party").and_then(Json::as_u64).unwrap_or(0);
            let level = t
                .get("level")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            println!("party {party} (trace level {level})");
            if let Some(rows) = t.get("phases").and_then(|v| v.as_array()) {
                print_rows(rows);
            }
            printed = true;
        }
    }
    // bench reports (`results[*].phases`) and baseline records
    // (`algorithms[*].phases`).
    for (section, label_key) in [("results", "algorithm"), ("algorithms", "algorithm")] {
        if let Some(entries) = doc.get(section).and_then(|v| v.as_array()) {
            for e in entries {
                if let Some(rows) = e.get("phases").and_then(|v| v.as_array()) {
                    let label = e
                        .get(label_key)
                        .and_then(|v| v.as_str())
                        .unwrap_or("?")
                        .to_string();
                    println!("{label} (party 0)");
                    print_rows(rows);
                    printed = true;
                }
            }
        }
    }
    if !printed {
        return Err("no trace data in this file — run the scenario with \
             params.trace = \"phases\" or \"full\", or point at the \
             *-trace.json export"
            .into());
    }
    Ok(())
}

/// One canonical phase row, whichever input kind it came from.
#[derive(Default, Clone, Copy)]
struct PhaseAgg {
    wait_s: f64,
    rounds: u64,
    bytes_sent: u64,
}

/// Extract a `phase → (rounds, sent bytes, wait_s)` table from a run
/// report (party-0 trace section, or the first traced bench / baseline
/// entry) or a Chrome-trace export (aggregated over all tracks).
fn phase_table_of(doc: &Json) -> Result<Vec<(String, PhaseAgg)>, String> {
    if doc.get("traceEvents").is_some() {
        let spans = parse_chrome(doc)?;
        let mut out = Vec::new();
        for &phase in pivot_trace::PHASES {
            let mut agg = PhaseAgg::default();
            let mut any = false;
            for s in spans.iter().filter(|s| s.phase == phase) {
                any = true;
                agg.wait_s += s.wait_ns as f64 / 1e9;
                agg.rounds += s.rounds;
                agg.bytes_sent += s.sent_bytes;
            }
            if any {
                out.push((phase.to_string(), agg));
            }
        }
        return Ok(out);
    }
    let mut rows = doc
        .path("trace.per_party")
        .and_then(|v| v.as_array())
        .and_then(|tables| tables.first())
        .and_then(|t| t.get("phases"))
        .and_then(|v| v.as_array());
    for section in ["results", "algorithms"] {
        if rows.is_some() {
            break;
        }
        rows = doc.get(section).and_then(|v| v.as_array()).and_then(|es| {
            es.iter()
                .find_map(|e| e.get("phases").and_then(|v| v.as_array()))
        });
    }
    let rows = rows.ok_or(
        "no phase tables in this file — run the scenario with \
         params.trace = \"phases\" or \"full\"",
    )?;
    Ok(rows
        .iter()
        .map(|row| {
            let f = |k: &str| row.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let u = |k: &str| row.get(k).and_then(Json::as_u64).unwrap_or(0);
            (
                row.get("phase")
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string(),
                PhaseAgg {
                    wait_s: f("wait_s"),
                    rounds: u("rounds"),
                    bytes_sent: u("bytes_sent"),
                },
            )
        })
        .collect())
}

/// `pivot trace --diff A B`: per-phase rounds/bytes/wait side by side,
/// with signed deltas (B − A) and the total round ratio — the intended
/// view for comparing a `sequential` run against its `pipelined` twin.
fn run_diff(a_path: &PathBuf, b_path: &PathBuf) -> Result<(), String> {
    let load = |p: &PathBuf| -> Result<Vec<(String, PhaseAgg)>, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        phase_table_of(&Json::parse(&text)?)
    };
    let a = load(a_path)?;
    let b = load(b_path)?;

    // Union of phases, canonical order first, stragglers appended.
    let mut phases: Vec<String> = pivot_trace::PHASES
        .iter()
        .map(|s| s.to_string())
        .filter(|p| a.iter().any(|(ph, _)| ph == p) || b.iter().any(|(ph, _)| ph == p))
        .collect();
    for (ph, _) in a.iter().chain(b.iter()) {
        if !phases.contains(ph) {
            phases.push(ph.clone());
        }
    }
    let get = |table: &[(String, PhaseAgg)], phase: &str| -> PhaseAgg {
        table
            .iter()
            .find(|(ph, _)| ph == phase)
            .map(|&(_, agg)| agg)
            .unwrap_or_default()
    };

    println!(
        "phase diff  A = {}  B = {}",
        a_path.display(),
        b_path.display()
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>12} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "phase",
        "rounds_A",
        "rounds_B",
        "Δrounds",
        "sent_A",
        "sent_B",
        "Δbytes",
        "wait_A_s",
        "wait_B_s",
        "Δwait_s"
    );
    let mut tot_a = PhaseAgg::default();
    let mut tot_b = PhaseAgg::default();
    for phase in &phases {
        let pa = get(&a, phase);
        let pb = get(&b, phase);
        tot_a.rounds += pa.rounds;
        tot_a.bytes_sent += pa.bytes_sent;
        tot_a.wait_s += pa.wait_s;
        tot_b.rounds += pb.rounds;
        tot_b.bytes_sent += pb.bytes_sent;
        tot_b.wait_s += pb.wait_s;
        println!(
            "{:<14} {:>9} {:>9} {:>+9} {:>12} {:>12} {:>+12} {:>9.3} {:>9.3} {:>+9.3}",
            phase,
            pa.rounds,
            pb.rounds,
            pb.rounds as i64 - pa.rounds as i64,
            pa.bytes_sent,
            pb.bytes_sent,
            pb.bytes_sent as i64 - pa.bytes_sent as i64,
            pa.wait_s,
            pb.wait_s,
            pb.wait_s - pa.wait_s,
        );
    }
    println!(
        "{:<14} {:>9} {:>9} {:>+9} {:>12} {:>12} {:>+12} {:>9.3} {:>9.3} {:>+9.3}",
        "total",
        tot_a.rounds,
        tot_b.rounds,
        tot_b.rounds as i64 - tot_a.rounds as i64,
        tot_a.bytes_sent,
        tot_b.bytes_sent,
        tot_b.bytes_sent as i64 - tot_a.bytes_sent as i64,
        tot_a.wait_s,
        tot_b.wait_s,
        tot_b.wait_s - tot_a.wait_s,
    );
    if tot_a.rounds > 0 && tot_b.rounds > 0 {
        println!(
            "round ratio A/B = {:.2}×",
            tot_a.rounds as f64 / tot_b.rounds as f64
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> pivot_trace::PartyTrace {
        pivot_trace::PartyTrace {
            party: 0,
            level: pivot_trace::TraceLevel::Full,
            spans: vec![
                pivot_trace::SpanRecord {
                    name: "stats".into(),
                    phase: "stats",
                    depth: 1,
                    is_phase_root: true,
                    start_ns: 100,
                    end_ns: 500,
                    sent_bytes: 64,
                    recv_bytes: 32,
                    wait_ns: 10,
                    rounds: 2,
                },
                pivot_trace::SpanRecord {
                    name: "party 0".into(),
                    phase: "other",
                    depth: 0,
                    is_phase_root: true,
                    start_ns: 0,
                    end_ns: 1000,
                    sent_bytes: 8,
                    recv_bytes: 0,
                    wait_ns: 0,
                    rounds: 1,
                },
            ],
            gauges: vec![pivot_trace::GaugeSample {
                name: "nonce_pool_hit_rate",
                ts_ns: 300,
                value: 0.75,
            }],
        }
    }

    #[test]
    fn chrome_export_round_trips_through_the_checker() {
        let json = pivot_trace::chrome_trace_json(&[sample_trace()], None);
        let doc = Json::parse(&json).unwrap();
        let spans = parse_chrome(&doc).unwrap();
        assert_eq!(spans.len(), 2);
        let total_rounds: u64 = spans.iter().map(|s| s.rounds).sum();
        assert_eq!(total_rounds, 3);
        run_chrome(&doc, true).unwrap();
        run_chrome(&doc, false).unwrap();
    }

    #[test]
    fn checker_rejects_unbalanced_and_unknown_phases() {
        let unbalanced = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"x","cat":"phase","args":{"phase":"stats"}}
        ]}"#;
        let err = parse_chrome(&Json::parse(unbalanced).unwrap()).unwrap_err();
        assert!(err.contains("never closed"), "{err}");

        let unknown = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":1.0,"name":"x","cat":"phase","args":{"phase":"mystery"}},
            {"ph":"E","pid":1,"tid":0,"ts":2.0,"args":{}}
        ]}"#;
        let err = parse_chrome(&Json::parse(unknown).unwrap()).unwrap_err();
        assert!(err.contains("unknown phase"), "{err}");

        let backwards = r#"{"traceEvents":[
            {"ph":"B","pid":1,"tid":0,"ts":5.0,"name":"x","cat":"phase","args":{"phase":"stats"}},
            {"ph":"E","pid":1,"tid":0,"ts":4.0,"args":{}}
        ]}"#;
        let err = parse_chrome(&Json::parse(backwards).unwrap()).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn phase_table_extraction_covers_both_input_kinds() {
        // Run report shape: trace.per_party[0].phases rows.
        let report = r#"{"trace":{"per_party":[{"party":0,"level":"phases","phases":[
            {"phase":"gain","spans":3,"wall_s":1.0,"wait_s":0.5,"rounds":300,
             "bytes_sent":1000,"bytes_received":900},
            {"phase":"leaf","spans":1,"wall_s":0.1,"wait_s":0.01,"rounds":28,
             "bytes_sent":50,"bytes_received":40}
        ]}]}}"#;
        let table = phase_table_of(&Json::parse(report).unwrap()).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].0, "gain");
        assert_eq!(table[0].1.rounds, 300);
        assert_eq!(table[0].1.bytes_sent, 1000);

        // Chrome-trace shape aggregates spans per phase across tracks.
        let chrome = pivot_trace::chrome_trace_json(&[sample_trace()], None);
        let table = phase_table_of(&Json::parse(&chrome).unwrap()).unwrap();
        let stats = table.iter().find(|(p, _)| p == "stats").unwrap();
        assert_eq!(stats.1.rounds, 2);
        assert_eq!(stats.1.bytes_sent, 64);

        // Bench entry fallback.
        let bench = r#"{"results":[{"algorithm":"Pivot-Basic","phases":[
            {"phase":"stats","rounds":7,"bytes_sent":11,"wait_s":0.2}
        ]}]}"#;
        let table = phase_table_of(&Json::parse(bench).unwrap()).unwrap();
        assert_eq!(table[0].1.rounds, 7);
    }

    #[test]
    fn report_without_trace_is_a_clean_error() {
        let doc = Json::parse(r#"{"command":"train"}"#).unwrap();
        let err = run_report(&doc).unwrap_err();
        assert!(err.contains("no trace data"), "{err}");
    }
}
