//! `pivot party`: run ONE party of a scenario as its own OS process,
//! talking to the other `m - 1` processes over TCP.
//!
//! This is the paper's actual deployment shape — one process per client
//! on a LAN — where `pivot train` folds all parties into threads of a
//! single process. Every process loads the *same* scenario file, derives
//! the same dataset from the scenario seed, and runs the same
//! [`crate::runner::run_party_protocol`] body the threaded backend runs,
//! so the trained model, test metric, and per-party byte counts match the
//! in-process run bit-for-bit.
//!
//! Rendezvous: `--peers` lists all `m` addresses in party-id order
//! (identical across processes); each process binds `--listen` (default:
//! its own `--peers` entry), dials lower ids, and accepts higher ids.

use crate::report;
use crate::runner::{compute_metric, metric_name_for, prepare, run_party_protocol, Execution};
use crate::scenario::Scenario;
use pivot_data::partition_vertically;
use pivot_transport::tcp::connect_mesh_with;
use pivot_transport::{
    catch_failures, FaultInjector, ProtocolError, RunFailure, TransportError, TransportErrorKind,
};
use std::path::PathBuf;
use std::time::Instant;

/// Exit code for a transport failure (peer dead, wedge, unresumable
/// link) — distinct from `1` so a harness can tell "the run died on the
/// network" from "the invocation was wrong".
pub const EXIT_TRANSPORT_FAILURE: u8 = 10;
/// Exit code when this party's own `crash_party` fault fired.
pub const EXIT_INJECTED_CRASH: u8 = 11;
/// Exit code when the verification plane rejected a zero-knowledge
/// proof: the protocol *content* failed, not the network — the
/// structured error report names the accused cheater.
pub const EXIT_PROOF_REJECTED: u8 = 12;

/// How a `pivot party` run failed.
pub enum PartyError {
    /// Bad invocation / scenario / IO — exit code 1.
    Usage(String),
    /// The distributed run died on the network. A structured error
    /// report has already been written; exit code 10 (or 11 when the
    /// failure is this party's own injected crash).
    Transport(Box<TransportError>),
    /// The verification plane rejected a proof. A structured error
    /// report naming the accused party has already been written; exit
    /// code 12.
    Protocol(Box<ProtocolError>),
}

impl PartyError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            PartyError::Usage(_) => 1,
            PartyError::Transport(err) if err.kind == TransportErrorKind::InjectedCrash => {
                EXIT_INJECTED_CRASH
            }
            PartyError::Transport(_) => EXIT_TRANSPORT_FAILURE,
            PartyError::Protocol(_) => EXIT_PROOF_REJECTED,
        }
    }
}

impl std::fmt::Display for PartyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartyError::Usage(e) => write!(f, "{e}"),
            PartyError::Transport(err) => write!(f, "{err}"),
            PartyError::Protocol(err) => write!(f, "{err}"),
        }
    }
}

impl From<String> for PartyError {
    fn from(e: String) -> PartyError {
        PartyError::Usage(e)
    }
}

/// Parsed arguments of the `party` subcommand.
pub struct PartyArgs {
    pub scenario: PathBuf,
    pub id: usize,
    /// Local bind address; defaults to `peers[id]`.
    pub listen: Option<String>,
    /// All party addresses in id order (shared verbatim by every process).
    pub peers: Vec<String>,
    pub out: Option<PathBuf>,
    pub quiet: bool,
}

/// Execute one party end to end and write its JSON report. On a
/// transport failure the report is replaced by a structured *error*
/// report (kind, peer, direction, phase, elapsed) and the returned
/// [`PartyError`] maps to a distinct exit code.
pub fn run(args: &PartyArgs) -> Result<(), PartyError> {
    let scenario = Scenario::load(&args.scenario)?;
    let algo = scenario.sole_algorithm()?;
    let m = scenario.parties;
    if args.peers.len() != m {
        return Err(format!(
            "--peers lists {} addresses but the scenario has {m} parties",
            args.peers.len()
        )
        .into());
    }
    if args.id >= m {
        return Err(format!("--id {} out of range for {m} parties", args.id).into());
    }

    // Same deterministic pipeline as the threaded runner: every process
    // synthesizes the full dataset from the scenario seed, splits, and
    // keeps only its own vertical view.
    let (train_set, test_set, params) = prepare(&scenario, algo)?;
    let train_part = partition_vertically(&train_set, m, 0);
    let test_part = partition_vertically(&test_set, m, 0);
    let plan = scenario.fault_plan()?;
    let injector = (!plan.is_empty()).then(|| FaultInjector::new(args.id, m, &plan));

    let listen = args
        .listen
        .clone()
        .unwrap_or_else(|| args.peers[args.id].clone());
    if !args.quiet {
        println!(
            "party {}/{m} [{}]: listening on {listen}, rendezvous with {:?}",
            args.id,
            algo.label(),
            args.peers
        );
    }
    let out_path = args.out.clone().unwrap_or_else(|| {
        report::default_report_path(&args.scenario, &format!("-party{}", args.id))
    });
    let start = Instant::now();
    let result = connect_mesh_with(
        args.id,
        &listen,
        &args.peers,
        scenario.net_config(),
        injector,
    )
    .map_err(|e| {
        // Rendezvous failures are transport failures too: same
        // structured report, same exit code.
        let kind = if e.kind() == std::io::ErrorKind::TimedOut {
            TransportErrorKind::Timeout
        } else {
            TransportErrorKind::Disconnected
        };
        let mut err = TransportError::new(kind, args.id, e.to_string());
        err.phase = "connect".into();
        RunFailure::Transport(err)
    })
    .and_then(|ep| {
        catch_failures(|| {
            run_party_protocol(
                &ep,
                train_part.views[args.id].clone(),
                &test_part.views[args.id],
                &params,
                &scenario.model,
                algo,
                false,
            )
        })
    });
    let wall_s = start.elapsed().as_secs_f64();

    let outcome = match result {
        Ok(outcome) => outcome,
        Err(failure) => {
            let (report, party_err) = match failure {
                RunFailure::Transport(err) => (
                    report::party_error_report(&scenario, args.id, &err, wall_s),
                    PartyError::Transport(Box::new(err)),
                ),
                RunFailure::Protocol(err) => (
                    report::party_protocol_error_report(&scenario, args.id, &err, wall_s),
                    PartyError::Protocol(Box::new(err)),
                ),
            };
            std::fs::write(&out_path, report.to_pretty())
                .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
            if !args.quiet {
                eprintln!("party {} failed: {party_err}", args.id);
                eprintln!("error report written to {}", out_path.display());
            }
            return Err(party_err);
        }
    };

    // This process hosts exactly one party, so the process-global runtime
    // sink holds only this party's background telemetry.
    let runtime = pivot_trace::take_runtime();
    let runtime_trace = (!runtime.is_empty()).then_some(runtime);

    let task = train_set.task();
    let metric = compute_metric(task, &outcome.predictions, test_set.labels());
    let exec = Execution {
        algo,
        wall_s,
        train_samples: train_set.num_samples(),
        test_samples: test_set.num_samples(),
        features: train_set.num_features(),
        task,
        parties: vec![outcome],
        metric,
        metric_name: metric_name_for(task),
        runtime_trace,
    };

    let report = report::party_report(&scenario, args.id, &exec);
    std::fs::write(&out_path, report.to_pretty())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    // Traced runs also get this party's Perfetto/Prometheus side-cars
    // (`<out-stem>-trace.json` / `.prom`) next to the report.
    report::write_trace_exports(&out_path, &exec, args.quiet)?;

    if !args.quiet {
        let p = &exec.parties[0];
        println!(
            "party {} done: trained {} internal nodes in {:.2}s ({} B sent), \
             predicted {} samples in {:.2}s",
            args.id,
            p.internal_nodes,
            p.train_wall_s,
            p.train_bytes_sent,
            exec.test_samples,
            p.predict_wall_s,
        );
        if let Some(metric) = exec.metric {
            println!("test {} = {metric:.4}", exec.metric_name);
        }
        println!("report written to {}", out_path.display());
    }
    Ok(())
}
