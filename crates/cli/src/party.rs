//! `pivot party`: run ONE party of a scenario as its own OS process,
//! talking to the other `m - 1` processes over TCP.
//!
//! This is the paper's actual deployment shape — one process per client
//! on a LAN — where `pivot train` folds all parties into threads of a
//! single process. Every process loads the *same* scenario file, derives
//! the same dataset from the scenario seed, and runs the same
//! [`crate::runner::run_party_protocol`] body the threaded backend runs,
//! so the trained model, test metric, and per-party byte counts match the
//! in-process run bit-for-bit.
//!
//! Rendezvous: `--peers` lists all `m` addresses in party-id order
//! (identical across processes); each process binds `--listen` (default:
//! its own `--peers` entry), dials lower ids, and accepts higher ids.

use crate::report;
use crate::runner::{compute_metric, metric_name_for, prepare, run_party_protocol, Execution};
use crate::scenario::Scenario;
use pivot_data::partition_vertically;
use pivot_transport::tcp::connect_mesh;
use std::path::PathBuf;
use std::time::Instant;

/// Parsed arguments of the `party` subcommand.
pub struct PartyArgs {
    pub scenario: PathBuf,
    pub id: usize,
    /// Local bind address; defaults to `peers[id]`.
    pub listen: Option<String>,
    /// All party addresses in id order (shared verbatim by every process).
    pub peers: Vec<String>,
    pub out: Option<PathBuf>,
    pub quiet: bool,
}

/// Execute one party end to end and write its JSON report.
pub fn run(args: &PartyArgs) -> Result<(), String> {
    let scenario = Scenario::load(&args.scenario)?;
    let algo = scenario.sole_algorithm()?;
    let m = scenario.parties;
    if args.peers.len() != m {
        return Err(format!(
            "--peers lists {} addresses but the scenario has {m} parties",
            args.peers.len()
        ));
    }
    if args.id >= m {
        return Err(format!("--id {} out of range for {m} parties", args.id));
    }

    // Same deterministic pipeline as the threaded runner: every process
    // synthesizes the full dataset from the scenario seed, splits, and
    // keeps only its own vertical view.
    let (train_set, test_set, params) = prepare(&scenario, algo)?;
    let train_part = partition_vertically(&train_set, m, 0);
    let test_part = partition_vertically(&test_set, m, 0);

    let listen = args
        .listen
        .clone()
        .unwrap_or_else(|| args.peers[args.id].clone());
    if !args.quiet {
        println!(
            "party {}/{m} [{}]: listening on {listen}, rendezvous with {:?}",
            args.id,
            algo.label(),
            args.peers
        );
    }
    let start = Instant::now();
    let ep = connect_mesh(args.id, &listen, &args.peers, scenario.net_config())?;
    let outcome = run_party_protocol(
        &ep,
        train_part.views[args.id].clone(),
        &test_part.views[args.id],
        &params,
        &scenario.model,
        algo,
        false,
    );
    let wall_s = start.elapsed().as_secs_f64();

    // This process hosts exactly one party, so the process-global runtime
    // sink holds only this party's background telemetry.
    let runtime = pivot_trace::take_runtime();
    let runtime_trace = (!runtime.is_empty()).then_some(runtime);

    let task = train_set.task();
    let metric = compute_metric(task, &outcome.predictions, test_set.labels());
    let exec = Execution {
        algo,
        wall_s,
        train_samples: train_set.num_samples(),
        test_samples: test_set.num_samples(),
        features: train_set.num_features(),
        task,
        parties: vec![outcome],
        metric,
        metric_name: metric_name_for(task),
        runtime_trace,
    };

    let out_path = args.out.clone().unwrap_or_else(|| {
        report::default_report_path(&args.scenario, &format!("-party{}", args.id))
    });
    let report = report::party_report(&scenario, args.id, &exec);
    std::fs::write(&out_path, report.to_pretty())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    // Traced runs also get this party's Perfetto/Prometheus side-cars
    // (`<out-stem>-trace.json` / `.prom`) next to the report.
    report::write_trace_exports(&out_path, &exec, args.quiet)?;

    if !args.quiet {
        let p = &exec.parties[0];
        println!(
            "party {} done: trained {} internal nodes in {:.2}s ({} B sent), \
             predicted {} samples in {:.2}s",
            args.id,
            p.internal_nodes,
            p.train_wall_s,
            p.train_bytes_sent,
            exec.test_samples,
            p.predict_wall_s,
        );
        if let Some(metric) = exec.metric {
            println!("test {} = {metric:.4}", exec.metric_name);
        }
        println!("report written to {}", out_path.display());
    }
    Ok(())
}
