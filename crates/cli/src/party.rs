//! `pivot party`: run ONE party of a scenario as its own OS process,
//! talking to the other `m - 1` processes over TCP.
//!
//! This is the paper's actual deployment shape — one process per client
//! on a LAN — where `pivot train` folds all parties into threads of a
//! single process. Every process loads the *same* scenario file, derives
//! the same dataset from the scenario seed, and runs the same
//! [`crate::runner::run_party_protocol`] body the threaded backend runs,
//! so the trained model, test metric, and per-party byte counts match the
//! in-process run bit-for-bit.
//!
//! Rendezvous: `--peers` lists all `m` addresses in party-id order
//! (identical across processes); each process binds `--listen` (default:
//! its own `--peers` entry), dials lower ids, and accepts higher ids.
//!
//! Crash recovery: with a `[checkpoint]` section, `--resume` restarts a
//! killed party from its newest durable checkpoint (replaying the
//! recorded inbound transcript through the deterministic protocol), and
//! `--supervise` wraps the party in a small supervisor that drives the
//! `kill_party` chaos fault — really SIGKILLing the child at the
//! configured level and relaunching it with `--resume`.

use crate::checkpoint::{load_latest, scenario_fingerprint, CheckpointError, CliCheckpointSink};
use crate::report;
use crate::runner::{
    compute_metric, metric_name_for, prepare, run_party_protocol, CheckpointInstall, Execution,
};
use crate::scenario::Scenario;
use pivot_data::partition_vertically;
use pivot_transport::tcp::{connect_mesh_restart, connect_mesh_with};
use pivot_transport::{
    catch_failures, FaultInjector, ProtocolError, RunFailure, TransportError, TransportErrorKind,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Exit code for a transport failure (peer dead, wedge, unresumable
/// link) — distinct from `1` so a harness can tell "the run died on the
/// network" from "the invocation was wrong".
pub const EXIT_TRANSPORT_FAILURE: u8 = 10;
/// Exit code when this party's own `crash_party` fault fired.
pub const EXIT_INJECTED_CRASH: u8 = 11;
/// Exit code when the verification plane rejected a zero-knowledge
/// proof: the protocol *content* failed, not the network — the
/// structured error report names the accused cheater.
pub const EXIT_PROOF_REJECTED: u8 = 12;
/// Exit code for a checkpoint failure: unreadable/corrupt/mismatched
/// checkpoint state under `--resume`, or a durable write that failed
/// mid-run. The durability plane failed, not the network or the
/// protocol.
pub const EXIT_CHECKPOINT_ERROR: u8 = 13;

/// How a `pivot party` run failed.
pub enum PartyError {
    /// Bad invocation / scenario / IO — exit code 1.
    Usage(String),
    /// The distributed run died on the network. A structured error
    /// report has already been written; exit code 10 (or 11 when the
    /// failure is this party's own injected crash).
    Transport(Box<TransportError>),
    /// The verification plane rejected a proof. A structured error
    /// report naming the accused party has already been written; exit
    /// code 12.
    Protocol(Box<ProtocolError>),
    /// The crash-recovery plane failed (see [`CheckpointError`]). A
    /// structured error report has already been written; exit code 13.
    Checkpoint(Box<CheckpointError>),
    /// `--supervise` only: the supervised child exited non-zero and the
    /// supervisor mirrors its code.
    Child { code: u8 },
}

impl PartyError {
    /// The process exit code this failure maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            PartyError::Usage(_) => 1,
            PartyError::Transport(err) if err.kind == TransportErrorKind::InjectedCrash => {
                EXIT_INJECTED_CRASH
            }
            PartyError::Transport(_) => EXIT_TRANSPORT_FAILURE,
            PartyError::Protocol(_) => EXIT_PROOF_REJECTED,
            PartyError::Checkpoint(_) => EXIT_CHECKPOINT_ERROR,
            PartyError::Child { code } => *code,
        }
    }
}

impl std::fmt::Display for PartyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartyError::Usage(e) => write!(f, "{e}"),
            PartyError::Transport(err) => write!(f, "{err}"),
            PartyError::Protocol(err) => write!(f, "{err}"),
            PartyError::Checkpoint(err) => write!(f, "{err}"),
            PartyError::Child { code } => write!(f, "supervised party exited with code {code}"),
        }
    }
}

impl From<String> for PartyError {
    fn from(e: String) -> PartyError {
        PartyError::Usage(e)
    }
}

/// Parsed arguments of the `party` subcommand.
pub struct PartyArgs {
    pub scenario: PathBuf,
    pub id: usize,
    /// Local bind address; defaults to `peers[id]`.
    pub listen: Option<String>,
    /// All party addresses in id order (shared verbatim by every process).
    pub peers: Vec<String>,
    pub out: Option<PathBuf>,
    pub quiet: bool,
    /// Restart from the newest checkpoint in the scenario's
    /// `checkpoint.dir` (fresh start when none exists yet).
    pub resume: bool,
    /// Run as a supervisor: spawn the real party as a child process and
    /// drive the scenario's `kill_party` fault (SIGKILL + relaunch with
    /// `--resume`).
    pub supervise: bool,
}

/// Execute one party end to end and write its JSON report. On a
/// transport failure the report is replaced by a structured *error*
/// report (kind, peer, direction, phase, elapsed) and the returned
/// [`PartyError`] maps to a distinct exit code. With `--supervise` this
/// instead runs the supervisor loop around a child party process.
pub fn run(args: &PartyArgs) -> Result<(), PartyError> {
    if args.supervise {
        return run_supervised(args);
    }
    let scenario = Scenario::load(&args.scenario)?;
    let algo = scenario.sole_algorithm()?;
    let m = scenario.parties;
    if args.resume && scenario.checkpoint.is_none() {
        return Err("--resume needs a [checkpoint] section in the scenario"
            .to_string()
            .into());
    }
    if args.peers.len() != m {
        return Err(format!(
            "--peers lists {} addresses but the scenario has {m} parties",
            args.peers.len()
        )
        .into());
    }
    if args.id >= m {
        return Err(format!("--id {} out of range for {m} parties", args.id).into());
    }

    // Same deterministic pipeline as the threaded runner: every process
    // synthesizes the full dataset from the scenario seed, splits, and
    // keeps only its own vertical view.
    let (train_set, test_set, params) = prepare(&scenario, algo)?;
    let train_part = partition_vertically(&train_set, m, 0);
    let test_part = partition_vertically(&test_set, m, 0);
    let plan = scenario.fault_plan()?;
    let injector = (!plan.is_empty()).then(|| FaultInjector::new(args.id, m, &plan));

    let listen = args
        .listen
        .clone()
        .unwrap_or_else(|| args.peers[args.id].clone());
    if !args.quiet {
        println!(
            "party {}/{m} [{}]: listening on {listen}, rendezvous with {:?}",
            args.id,
            algo.label(),
            args.peers
        );
    }
    let out_path = args.out.clone().unwrap_or_else(|| {
        report::default_report_path(&args.scenario, &format!("-party{}", args.id))
    });
    let start = Instant::now();

    // `--resume`: load the newest durable checkpoint (if any) before
    // dialing, so the restart handshake can present per-peer delivery
    // cursors and the recorded transcript can be replayed.
    let mut delivered = vec![0u64; m];
    let mut preload: Vec<(usize, Vec<Vec<u8>>)> = Vec::new();
    let mut resume_verify = None;
    if args.resume {
        let spec = scenario.checkpoint.as_ref().expect("checked above");
        let fingerprint = scenario_fingerprint(&scenario);
        match load_latest(Path::new(&spec.dir), args.id as u64, m as u64, fingerprint) {
            Ok(Some(file)) => {
                if !args.quiet {
                    println!(
                        "party {} resuming from checkpoint ordinal {} (level {}, \
                         {} recorded peer frames)",
                        args.id,
                        file.ordinal,
                        file.level,
                        file.peers.iter().map(|(_, f)| f.len()).sum::<usize>(),
                    );
                }
                resume_verify = Some((file.ordinal, file.cursors));
                for (peer, frames) in file.peers {
                    delivered[peer as usize] = frames.len() as u64;
                    preload.push((peer as usize, frames));
                }
            }
            // Killed before the first barrier: a fresh start is the
            // correct resume (peers roll back to cursor 0 and replay).
            Ok(None) => {
                if !args.quiet {
                    println!(
                        "party {}: no checkpoint in {} yet, resuming from genesis",
                        args.id, spec.dir
                    );
                }
            }
            Err(err) => {
                let wall_s = start.elapsed().as_secs_f64();
                let report =
                    report::party_checkpoint_error_report(&scenario, args.id, &err, wall_s);
                std::fs::write(&out_path, report.to_pretty())
                    .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
                if !args.quiet {
                    eprintln!("party {} failed: {err}", args.id);
                    eprintln!("error report written to {}", out_path.display());
                }
                return Err(PartyError::Checkpoint(Box::new(err)));
            }
        }
    }

    let connect = if args.resume {
        connect_mesh_restart(
            args.id,
            &listen,
            &args.peers,
            scenario.net_config(),
            injector,
            &delivered,
        )
    } else {
        connect_mesh_with(
            args.id,
            &listen,
            &args.peers,
            scenario.net_config(),
            injector,
        )
    };
    let mut checkpoint_handle = None;
    let result = connect
        .map_err(|e| {
            // Rendezvous failures are transport failures too: same
            // structured report, same exit code.
            let kind = if e.kind() == std::io::ErrorKind::TimedOut {
                TransportErrorKind::Timeout
            } else {
                TransportErrorKind::Disconnected
            };
            let mut err = TransportError::new(kind, args.id, e.to_string());
            err.phase = "connect".into();
            RunFailure::Transport(err)
        })
        .and_then(|ep| {
            let checkpoint = if let Some((ordinal, cursors)) = resume_verify {
                // Replay frames must be queued before the first protocol
                // receive; the sink then cross-checks the recomputed
                // cursors against the checkpoint when replay catches up.
                ep.enable_transcript();
                for (peer, frames) in preload.drain(..) {
                    ep.preload_replay(peer, frames);
                }
                let spec = scenario.checkpoint.as_ref().expect("checked above");
                let sink = CliCheckpointSink::new(
                    PathBuf::from(&spec.dir),
                    spec.every_levels,
                    args.id as u64,
                    m as u64,
                    scenario_fingerprint(&scenario),
                )
                .with_resume_verify(ordinal, cursors);
                let handle = sink.handle();
                Some(CheckpointInstall {
                    sink: Box::new(sink),
                    handle,
                })
            } else {
                CheckpointInstall::for_party(&scenario, args.id)
            };
            checkpoint_handle = checkpoint.as_ref().map(|c| c.handle.clone());
            catch_failures(|| {
                run_party_protocol(
                    &ep,
                    train_part.views[args.id].clone(),
                    &test_part.views[args.id],
                    &params,
                    &scenario.model,
                    algo,
                    false,
                    checkpoint,
                )
            })
        });
    let wall_s = start.elapsed().as_secs_f64();

    let outcome = match result {
        Ok(outcome) => outcome,
        Err(failure) => {
            let (report, party_err) = match failure {
                RunFailure::Transport(err) => (
                    report::party_error_report(&scenario, args.id, &err, wall_s),
                    PartyError::Transport(Box::new(err)),
                ),
                RunFailure::Protocol(err) => (
                    report::party_protocol_error_report(&scenario, args.id, &err, wall_s),
                    PartyError::Protocol(Box::new(err)),
                ),
            };
            std::fs::write(&out_path, report.to_pretty())
                .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
            if !args.quiet {
                eprintln!("party {} failed: {party_err}", args.id);
                eprintln!("error report written to {}", out_path.display());
            }
            return Err(party_err);
        }
    };

    // A run that finished but could not persist its checkpoints is not a
    // durable run: surface the first write failure as exit code 13.
    if let Some(err) = checkpoint_handle.as_ref().and_then(|h| h.take_error()) {
        let report = report::party_checkpoint_error_report(&scenario, args.id, &err, wall_s);
        std::fs::write(&out_path, report.to_pretty())
            .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
        if !args.quiet {
            eprintln!("party {} failed: {err}", args.id);
            eprintln!("error report written to {}", out_path.display());
        }
        return Err(PartyError::Checkpoint(Box::new(err)));
    }

    // This process hosts exactly one party, so the process-global runtime
    // sink holds only this party's background telemetry.
    let runtime = pivot_trace::take_runtime();
    let runtime_trace = (!runtime.is_empty()).then_some(runtime);

    let task = train_set.task();
    let metric = compute_metric(task, &outcome.predictions, test_set.labels());
    let exec = Execution {
        algo,
        wall_s,
        train_samples: train_set.num_samples(),
        test_samples: test_set.num_samples(),
        features: train_set.num_features(),
        task,
        parties: vec![outcome],
        metric,
        metric_name: metric_name_for(task),
        runtime_trace,
    };

    let report = report::party_report(&scenario, args.id, &exec);
    std::fs::write(&out_path, report.to_pretty())
        .map_err(|e| format!("cannot write {}: {e}", out_path.display()))?;
    // Traced runs also get this party's Perfetto/Prometheus side-cars
    // (`<out-stem>-trace.json` / `.prom`) next to the report.
    report::write_trace_exports(&out_path, &exec, args.quiet)?;

    if !args.quiet {
        let p = &exec.parties[0];
        println!(
            "party {} done: trained {} internal nodes in {:.2}s ({} B sent), \
             predicted {} samples in {:.2}s",
            args.id,
            p.internal_nodes,
            p.train_wall_s,
            p.train_bytes_sent,
            exec.test_samples,
            p.predict_wall_s,
        );
        if let Some(metric) = exec.metric {
            println!("test {} = {metric:.4}", exec.metric_name);
        }
        println!("report written to {}", out_path.display());
    }
    Ok(())
}

/// Rebuild the child's `party` argv from the parsed arguments (everything
/// except `--supervise`, plus `--resume` on relaunch).
fn child_argv(args: &PartyArgs, resume: bool) -> Vec<String> {
    let mut argv = vec![
        "party".to_string(),
        "--scenario".to_string(),
        args.scenario.display().to_string(),
        "--id".to_string(),
        args.id.to_string(),
        "--peers".to_string(),
        args.peers.join(","),
    ];
    if let Some(listen) = &args.listen {
        argv.push("--listen".to_string());
        argv.push(listen.clone());
    }
    if let Some(out) = &args.out {
        argv.push("--out".to_string());
        argv.push(out.display().to_string());
    }
    if args.quiet {
        argv.push("--quiet".to_string());
    }
    if resume {
        argv.push("--resume".to_string());
    }
    argv
}

/// The level recorded in a checkpoint filename
/// (`party<p>-<ordinal>-l<level>.ckpt`), when `name` is one of `party`'s.
fn ckpt_file_level(name: &str, party: usize) -> Option<u64> {
    let rest = name
        .strip_prefix(&format!("party{party}-"))?
        .strip_suffix(".ckpt")?;
    rest.rsplit_once("-l")?.1.parse().ok()
}

/// `--supervise`: run the real party as a child process and drive the
/// scenario's `kill_party` fault against it — wait for the child to write
/// a checkpoint at (or past) the configured level, SIGKILL it, sleep
/// `restart_after`, relaunch with `--resume`, and mirror the final exit.
/// Without a `kill_party` entry for this id the supervisor degenerates to
/// a plain wrapper that forwards the child's exit code.
fn run_supervised(args: &PartyArgs) -> Result<(), PartyError> {
    let scenario = Scenario::load(&args.scenario)?;
    let plan = scenario.fault_plan()?;
    let kill = plan.kill_spec(args.id);
    if kill.is_some() && scenario.checkpoint.is_none() {
        // Also caught by scenario validation; keep the supervisor safe
        // against programmatic callers.
        return Err("kill_party needs a [checkpoint] section".to_string().into());
    }
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the pivot binary for the child: {e}"))?;
    let spawn = |resume: bool| {
        std::process::Command::new(&exe)
            .args(child_argv(args, resume))
            .spawn()
            .map_err(|e| PartyError::Usage(format!("cannot spawn child party: {e}")))
    };
    let mirror = |status: std::process::ExitStatus| -> Result<(), PartyError> {
        if status.success() {
            Ok(())
        } else {
            Err(PartyError::Child {
                // A signal death (no code) is reported as a transport
                // failure: the mesh lost this party.
                code: status.code().map_or(EXIT_TRANSPORT_FAILURE, |c| c as u8),
            })
        }
    };

    let mut child = spawn(args.resume)?;
    let Some((at_level, restart_after)) = kill else {
        let status = child
            .wait()
            .map_err(|e| format!("cannot wait for child party: {e}"))?;
        return mirror(status);
    };

    let dir = PathBuf::from(&scenario.checkpoint.as_ref().expect("checked above").dir);
    if !args.quiet {
        println!(
            "supervisor {}: will SIGKILL at checkpoint level >= {at_level}, \
             restart after {restart_after:?}",
            args.id
        );
    }
    // Watch the checkpoint directory until the child has durably reached
    // the kill level (or exits first — then just mirror it).
    loop {
        if let Some(status) = child
            .try_wait()
            .map_err(|e| PartyError::Usage(format!("cannot poll child party: {e}")))?
        {
            return mirror(status);
        }
        let reached = std::fs::read_dir(&dir)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok())
            .filter_map(|e| ckpt_file_level(&e.file_name().to_string_lossy(), args.id))
            .any(|level| level >= at_level);
        if reached {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child
        .kill()
        .map_err(|e| PartyError::Usage(format!("cannot kill child party: {e}")))?;
    let _ = child.wait();
    if !args.quiet {
        println!(
            "supervisor {}: child killed at level {at_level}, relaunching with \
             --resume in {restart_after:?}",
            args.id
        );
    }
    std::thread::sleep(restart_after);
    let mut relaunched = spawn(true)?;
    let status = relaunched
        .wait()
        .map_err(|e| format!("cannot wait for resumed child party: {e}"))?;
    mirror(status)
}
