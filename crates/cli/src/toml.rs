//! Minimal TOML-subset parser for scenario files.
//!
//! Supported (everything the example scenarios need): comments, `[section]`
//! headers one level deep, and `key = value` pairs where a value is a
//! double-quoted string (with `\"`, `\\`, `\n`, `\t` escapes), an integer,
//! a float, a boolean, or a single-line array of those scalars. Not
//! supported: nested tables/dotted keys, arrays of tables, multi-line
//! strings, and datetimes — the parser reports those as errors rather than
//! silently misreading them.

use std::collections::BTreeMap;

/// A scalar or array value.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Arr(Vec<TomlValue>),
}

impl TomlValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            TomlValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float accessor that also accepts integers (TOML writers often drop
    /// the `.0`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Float(v) => Some(*v),
            TomlValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parsed document: the root table plus one level of named sections.
/// Key order within a section is not preserved (scenarios are declarative).
#[derive(Clone, Debug, Default)]
pub struct TomlDoc {
    sections: BTreeMap<String, BTreeMap<String, TomlValue>>,
}

impl TomlDoc {
    /// Parse a document; errors carry 1-based line numbers.
    pub fn parse(text: &str) -> Result<TomlDoc, String> {
        let mut doc = TomlDoc::default();
        let mut current = String::new(); // "" = root table
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or(format!("line {lineno}: unterminated section header"))?
                    .trim();
                if name.is_empty() || name.starts_with('[') {
                    return Err(format!(
                        "line {lineno}: arrays of tables / empty sections unsupported"
                    ));
                }
                if name.contains('.') {
                    return Err(format!("line {lineno}: nested sections unsupported"));
                }
                current = name.to_string();
                doc.sections.entry(current.clone()).or_default();
                continue;
            }
            let (key, value_text) = line
                .split_once('=')
                .ok_or(format!("line {lineno}: expected `key = value`"))?;
            let key = key.trim();
            if key.is_empty() || key.contains('.') || key.contains(' ') {
                return Err(format!("line {lineno}: unsupported key {key:?}"));
            }
            let value = parse_value(value_text.trim(), lineno)?;
            let table = doc.sections.entry(current.clone()).or_default();
            if table.insert(key.to_string(), value).is_some() {
                return Err(format!("line {lineno}: duplicate key {key:?}"));
            }
        }
        Ok(doc)
    }

    /// Look up `key` in `section` (`""` for the root table).
    pub fn get(&self, section: &str, key: &str) -> Option<&TomlValue> {
        self.sections.get(section)?.get(key)
    }

    /// Whether a section exists (root `""` exists once any root key does).
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }

    /// All keys of a section, for unknown-key validation.
    pub fn section_keys(&self, section: &str) -> Vec<&str> {
        self.sections
            .get(section)
            .map(|t| t.keys().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// All section names (excluding the root table).
    pub fn section_names(&self) -> Vec<&str> {
        self.sections
            .keys()
            .map(String::as_str)
            .filter(|s| !s.is_empty())
            .collect()
    }
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<TomlValue, String> {
    if text.is_empty() {
        return Err(format!("line {lineno}: missing value"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.chars();
        loop {
            match chars.next() {
                None => return Err(format!("line {lineno}: unterminated string")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    _ => return Err(format!("line {lineno}: unsupported escape")),
                },
                Some(c) => out.push(c),
            }
        }
        if !chars.as_str().trim().is_empty() {
            return Err(format!("line {lineno}: trailing input after string"));
        }
        return Ok(TomlValue::Str(out));
    }
    if text.starts_with('[') {
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or(format!("line {lineno}: arrays must be single-line"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let item = parse_value(part, lineno)?;
            if matches!(item, TomlValue::Arr(_)) {
                return Err(format!("line {lineno}: nested arrays unsupported"));
            }
            items.push(item);
        }
        return Ok(TomlValue::Arr(items));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    // Integer (allowing underscores and hex), then float.
    let cleaned = text.replace('_', "");
    if let Some(hex) = cleaned.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16)
            .map(TomlValue::Int)
            .map_err(|_| format!("line {lineno}: invalid hex integer {text:?}"));
    }
    if let Ok(v) = cleaned.parse::<i64>() {
        return Ok(TomlValue::Int(v));
    }
    if let Ok(v) = cleaned.parse::<f64>() {
        return Ok(TomlValue::Float(v));
    }
    Err(format!("line {lineno}: cannot parse value {text:?}"))
}

/// Split array items on commas outside quotes.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    items.push(&inner[start..]);
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scenario_shape() {
        let doc = TomlDoc::parse(
            r#"
# a scenario
name = "demo run"   # inline comment
seed = 0xBE7C4
parties = 3

[data]
kind = "synthetic-classification"
class_sep = 1.5
flip_y = 0.01

[sweep]
values = [2, 3, 4]
algorithms = ["pivot-basic", "npd-dt"]

[params]
parallel_decrypt = false
"#,
        )
        .unwrap();
        assert_eq!(doc.get("", "name").unwrap().as_str(), Some("demo run"));
        assert_eq!(doc.get("", "seed").unwrap().as_i64(), Some(0xBE7C4));
        assert_eq!(doc.get("data", "class_sep").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            doc.get("params", "parallel_decrypt").unwrap().as_bool(),
            Some(false)
        );
        let values = doc.get("sweep", "values").unwrap().as_array().unwrap();
        assert_eq!(values.len(), 3);
        assert_eq!(values[1].as_i64(), Some(3));
        let algos = doc.get("sweep", "algorithms").unwrap().as_array().unwrap();
        assert_eq!(algos[1].as_str(), Some("npd-dt"));
        assert_eq!(doc.section_names(), vec!["data", "params", "sweep"]);
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let doc = TomlDoc::parse("name = \"a # b\"").unwrap();
        assert_eq!(doc.get("", "name").unwrap().as_str(), Some("a # b"));
    }

    #[test]
    fn ints_accept_underscores_and_negatives() {
        let doc = TomlDoc::parse("a = 1_000_000\nb = -5\nc = 2.5e3").unwrap();
        assert_eq!(doc.get("", "a").unwrap().as_i64(), Some(1_000_000));
        assert_eq!(doc.get("", "b").unwrap().as_i64(), Some(-5));
        assert_eq!(doc.get("", "c").unwrap().as_f64(), Some(2500.0));
    }

    #[test]
    fn errors_are_line_numbered() {
        let err = TomlDoc::parse("ok = 1\nbroken").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(TomlDoc::parse("[unclosed").is_err());
        assert!(TomlDoc::parse("a = 1\na = 2")
            .unwrap_err()
            .contains("duplicate"));
        assert!(TomlDoc::parse("[a.b]\nk = 1")
            .unwrap_err()
            .contains("nested"));
    }

    #[test]
    fn unknown_key_listing() {
        let doc = TomlDoc::parse("[data]\nkind = \"csv\"\npath = \"x.csv\"").unwrap();
        assert_eq!(doc.section_keys("data"), vec!["kind", "path"]);
        assert!(doc.section_keys("absent").is_empty());
    }
}
