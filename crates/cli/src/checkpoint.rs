//! Durable crash-recovery checkpoints (`PVCK` files) and the barrier sink.
//!
//! At every level/tree barrier the trainer reaches with a sink installed,
//! [`CliCheckpointSink`] serializes the party's *inbound transcript* — every
//! frame consumed from every peer since genesis — plus the protocol state
//! cursors into a versioned, checksummed file. Recovery replays the
//! transcript through the deterministic protocol: the restarted party
//! recomputes every round from genesis, consuming recorded frames instead
//! of the network until it catches up, so no protocol object ever needs to
//! be serialized directly and the resumed run is bit-identical.
//!
//! File layout (all little-endian):
//!
//! ```text
//! magic    b"PVCK"                     4 bytes
//! version  u32                         4 bytes
//! body     Wire(CheckpointFile)        variable
//! checksum FNV-1a-64(magic‖version‖body)  8 bytes
//! ```
//!
//! Writes go to a `.tmp` sibling, are fsynced, then atomically renamed; the
//! last two checkpoints per party are kept so a torn write of the newest
//! file never loses recoverability.

use pivot_core::checkpoint::{BarrierMeta, CheckpointSink, StateCursors};
use pivot_transport::{Endpoint, Wire, WireError};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic prefix of every checkpoint file.
pub const CKPT_MAGIC: [u8; 4] = *b"PVCK";
/// Current checkpoint format version.
pub const CKPT_VERSION: u32 = 1;
/// Checkpoints retained per party (newest-first).
const KEEP_LAST: usize = 2;

/// FNV-1a 64-bit hash (checkpoint checksums and scenario fingerprints).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the fully-resolved scenario, stored in every checkpoint
/// so `--resume` refuses state written by a different configuration.
pub fn scenario_fingerprint(scenario: &crate::scenario::Scenario) -> u64 {
    fnv1a64(scenario.to_json().to_pretty().as_bytes())
}

/// Typed checkpoint failure (exit code 13; see `pivot party --help`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure reading or writing checkpoint state.
    Io(String),
    /// Bytes that are not a decodable checkpoint (bad magic, truncation,
    /// trailing garbage, body decode failure).
    Malformed(String),
    /// A well-formed header from a different format version.
    VersionSkew { found: u32, expected: u32 },
    /// Checksum over magic‖version‖body does not match the trailer.
    ChecksumMismatch,
    /// The checkpoint was written by a different scenario configuration.
    ScenarioMismatch { found: u64, expected: u64 },
    /// The checkpoint belongs to a different party id or mesh size.
    PartyMismatch { found: u64, expected: u64 },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Malformed(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::VersionSkew { found, expected } => write!(
                f,
                "checkpoint version skew: file is v{found}, this binary reads v{expected}"
            ),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::ScenarioMismatch { found, expected } => write!(
                f,
                "checkpoint scenario fingerprint {found:#018x} does not match \
                 this scenario ({expected:#018x})"
            ),
            CheckpointError::PartyMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to party {found}, not party {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Malformed(e.0.to_string())
    }
}

/// One durable checkpoint: identity, position, state cursors, and the full
/// inbound transcript (per peer, every consumed frame since genesis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFile {
    /// Writing party's id.
    pub party: u64,
    /// Mesh size `m` the run was configured with.
    pub parties: u64,
    /// Barrier ordinal (1-based) this checkpoint was taken at.
    pub ordinal: u64,
    /// Tree level (or ensemble-member ordinal) at the barrier.
    pub level: u64,
    /// [`scenario_fingerprint`] of the run's configuration.
    pub fingerprint: u64,
    /// Protocol state cursors at the barrier (resume sanity check).
    pub cursors: StateCursors,
    /// `(peer_id, frames)` — inbound frames consumed from each peer since
    /// genesis, in consumption order.
    pub peers: Vec<(u64, Vec<Vec<u8>>)>,
}

impl Wire for CheckpointFile {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.party.encode(buf);
        self.parties.encode(buf);
        self.ordinal.encode(buf);
        self.level.encode(buf);
        self.fingerprint.encode(buf);
        self.cursors.mpc_rounds.encode(buf);
        self.cursors.secure_mults.encode(buf);
        self.cursors.secure_comparisons.encode(buf);
        self.cursors.nonces_drawn.encode(buf);
        self.cursors.dealer_rows.encode(buf);
        self.cursors.bytes_sent.encode(buf);
        self.peers.encode(buf);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(CheckpointFile {
            party: u64::decode(buf)?,
            parties: u64::decode(buf)?,
            ordinal: u64::decode(buf)?,
            level: u64::decode(buf)?,
            fingerprint: u64::decode(buf)?,
            cursors: StateCursors {
                mpc_rounds: u64::decode(buf)?,
                secure_mults: u64::decode(buf)?,
                secure_comparisons: u64::decode(buf)?,
                nonces_drawn: u64::decode(buf)?,
                dealer_rows: u64::decode(buf)?,
                bytes_sent: u64::decode(buf)?,
            },
            peers: Vec::<(u64, Vec<Vec<u8>>)>::decode(buf)?,
        })
    }
}

/// Serialize a checkpoint to its on-disk byte layout.
pub fn encode_checkpoint(file: &CheckpointFile) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(&CKPT_MAGIC);
    bytes.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    file.encode(&mut bytes);
    let sum = fnv1a64(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Decode and fully validate checkpoint bytes. Never panics on arbitrary
/// input — every malformation maps to a typed [`CheckpointError`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointFile, CheckpointError> {
    if bytes.len() < CKPT_MAGIC.len() + 4 + 8 {
        return Err(CheckpointError::Malformed(
            "file shorter than header".into(),
        ));
    }
    if bytes[..4] != CKPT_MAGIC {
        return Err(CheckpointError::Malformed("bad magic".into()));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != CKPT_VERSION {
        return Err(CheckpointError::VersionSkew {
            found: version,
            expected: CKPT_VERSION,
        });
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if fnv1a64(payload) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    Ok(CheckpointFile::from_wire(&payload[8..])?)
}

fn ckpt_name(party: u64, ordinal: u64, level: u64) -> String {
    format!("party{party}-{ordinal:06}-l{level}.ckpt")
}

fn io_err<T>(op: &str, path: &Path, e: std::io::Error) -> Result<T, CheckpointError> {
    Err(CheckpointError::Io(format!("{op} {}: {e}", path.display())))
}

/// Checkpoint files for `party` under `dir`, sorted oldest-first by name
/// (ordinals are zero-padded, so lexicographic order is barrier order).
fn party_files(dir: &Path, party: u64) -> Result<Vec<PathBuf>, CheckpointError> {
    let prefix = format!("party{party}-");
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return io_err("read dir", dir, e),
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".ckpt"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Write one checkpoint durably: temp file + fsync + atomic rename, then
/// prune so only the newest [`KEEP_LAST`] files for this party remain.
/// Returns the encoded size in bytes.
pub fn write_checkpoint(dir: &Path, file: &CheckpointFile) -> Result<u64, CheckpointError> {
    if let Err(e) = fs::create_dir_all(dir) {
        return io_err("create dir", dir, e);
    }
    let bytes = encode_checkpoint(file);
    let final_path = dir.join(ckpt_name(file.party, file.ordinal, file.level));
    let tmp_path = dir.join(format!(
        "{}.tmp",
        final_path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("name")
    ));
    {
        let mut f = match fs::File::create(&tmp_path) {
            Ok(f) => f,
            Err(e) => return io_err("create", &tmp_path, e),
        };
        if let Err(e) = f.write_all(&bytes) {
            return io_err("write", &tmp_path, e);
        }
        if let Err(e) = f.sync_all() {
            return io_err("sync", &tmp_path, e);
        }
    }
    if let Err(e) = fs::rename(&tmp_path, &final_path) {
        return io_err("rename", &tmp_path, e);
    }
    // Keep the last two checkpoints: the new file plus its predecessor.
    let files = party_files(dir, file.party)?;
    if files.len() > KEEP_LAST {
        for stale in &files[..files.len() - KEEP_LAST] {
            let _ = fs::remove_file(stale);
        }
    }
    Ok(bytes.len() as u64)
}

/// Load the newest usable checkpoint for `party`, validating it against
/// this run's scenario `fingerprint`, party id, and mesh size.
///
/// A corrupted or torn newest file falls back to its predecessor;
/// systematic mismatches (version skew, wrong scenario, wrong party)
/// propagate immediately — older files would fail the same way. `Ok(None)`
/// means no checkpoint exists and the party starts fresh.
pub fn load_latest(
    dir: &Path,
    party: u64,
    parties: u64,
    fingerprint: u64,
) -> Result<Option<CheckpointFile>, CheckpointError> {
    let files = party_files(dir, party)?;
    let mut last_err = None;
    for path in files.iter().rev() {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                last_err = Some(CheckpointError::Io(format!("read {}: {e}", path.display())));
                continue;
            }
        };
        match decode_checkpoint(&bytes) {
            Ok(file) => {
                if file.fingerprint != fingerprint {
                    return Err(CheckpointError::ScenarioMismatch {
                        found: file.fingerprint,
                        expected: fingerprint,
                    });
                }
                if file.party != party || file.parties != parties {
                    return Err(CheckpointError::PartyMismatch {
                        found: file.party,
                        expected: party,
                    });
                }
                return Ok(Some(file));
            }
            Err(e @ CheckpointError::VersionSkew { .. }) => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }
    match last_err {
        // Every file on disk was corrupt: surface it rather than silently
        // restarting from genesis under a `--resume` flag.
        Some(e) => Err(e),
        None => Ok(None),
    }
}

/// Shared handles into a [`CliCheckpointSink`]: counters for the party
/// report plus the first write error (checked after the protocol run and
/// mapped to exit code 13).
#[derive(Clone, Default)]
pub struct CheckpointHandle {
    written: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
    error: Arc<Mutex<Option<CheckpointError>>>,
}

impl CheckpointHandle {
    /// Checkpoints durably written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Total encoded checkpoint bytes written.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// First write failure, if any (writes stop after the first failure).
    pub fn take_error(&self) -> Option<CheckpointError> {
        self.error.lock().expect("checkpoint error slot").take()
    }
}

/// The production [`CheckpointSink`]: applies the `every_levels` cadence,
/// snapshots the endpoint transcript, and writes `PVCK` files.
pub struct CliCheckpointSink {
    dir: PathBuf,
    every: u64,
    party: u64,
    parties: u64,
    fingerprint: u64,
    handle: CheckpointHandle,
    /// On `--resume`: the loaded checkpoint's (ordinal, cursors). When the
    /// replayed run reaches the same barrier, the freshly computed cursors
    /// must match exactly — divergence means non-deterministic replay and
    /// is unrecoverable, so it aborts loudly.
    resume_verify: Option<(u64, StateCursors)>,
    failed: bool,
}

impl CliCheckpointSink {
    pub fn new(dir: PathBuf, every: u64, party: u64, parties: u64, fingerprint: u64) -> Self {
        assert!(every >= 1, "checkpoint cadence must be >= 1");
        CliCheckpointSink {
            dir,
            every,
            party,
            parties,
            fingerprint,
            handle: CheckpointHandle::default(),
            resume_verify: None,
            failed: false,
        }
    }

    /// Handles shared with the report/exit plumbing.
    pub fn handle(&self) -> CheckpointHandle {
        self.handle.clone()
    }

    /// Arm the resume cross-check against a loaded checkpoint.
    pub fn with_resume_verify(mut self, ordinal: u64, cursors: StateCursors) -> Self {
        self.resume_verify = Some((ordinal, cursors));
        self
    }
}

impl CheckpointSink for CliCheckpointSink {
    fn at_barrier(&mut self, ep: &Endpoint, meta: &BarrierMeta) {
        if let Some((ordinal, expected)) = self.resume_verify {
            if meta.ordinal == ordinal {
                self.resume_verify = None;
                assert_eq!(
                    meta.cursors, expected,
                    "resume replay diverged from checkpoint at barrier {ordinal}: \
                     recomputed cursors {:?} != checkpointed {expected:?}",
                    meta.cursors
                );
            }
        }
        if self.failed || meta.ordinal % self.every != 0 {
            return;
        }
        let peers = (0..self.parties)
            .filter(|&p| p != self.party)
            .map(|p| (p, ep.transcript_frames(p as usize)))
            .collect();
        let file = CheckpointFile {
            party: self.party,
            parties: self.parties,
            ordinal: meta.ordinal,
            level: meta.level,
            fingerprint: self.fingerprint,
            cursors: meta.cursors,
            peers,
        };
        match write_checkpoint(&self.dir, &file) {
            Ok(bytes) => {
                self.handle.written.fetch_add(1, Ordering::Relaxed);
                self.handle.bytes.fetch_add(bytes, Ordering::Relaxed);
                // Tell every session the transcript up to here is durable:
                // retransmit rings may release frames behind the previous
                // checkpoint's cursor.
                ep.checkpoint_mark_all();
            }
            Err(e) => {
                // Stop checkpointing; the run finishes, then exits 13.
                self.failed = true;
                *self.handle.error.lock().expect("checkpoint error slot") = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ordinal: u64) -> CheckpointFile {
        CheckpointFile {
            party: 1,
            parties: 3,
            ordinal,
            level: ordinal,
            fingerprint: 0xF00D,
            cursors: StateCursors {
                mpc_rounds: 10 * ordinal,
                secure_mults: 7,
                secure_comparisons: 5,
                nonces_drawn: 99,
                dealer_rows: 1234,
                bytes_sent: 1 << 20,
            },
            peers: vec![(0, vec![vec![1, 2, 3], vec![]]), (2, vec![vec![0xFF; 17]])],
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample(4);
        let bytes = encode_checkpoint(&f);
        assert_eq!(decode_checkpoint(&bytes).expect("decode"), f);
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = encode_checkpoint(&sample(1));
        for cut in 0..bytes.len() {
            let r = decode_checkpoint(&bytes[..cut]);
            assert!(r.is_err(), "truncated at {cut} must not decode");
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = encode_checkpoint(&sample(1));
        bytes[4] = 0x7F;
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(CheckpointError::VersionSkew { found: 0x7F, .. })
        ));
    }

    #[test]
    fn corruption_is_typed() {
        let mut bytes = encode_checkpoint(&sample(1));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(CheckpointError::ChecksumMismatch)
        ));
    }

    #[test]
    fn write_prune_load() {
        let dir = std::env::temp_dir().join(format!("pivot-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        for ordinal in 1..=3 {
            write_checkpoint(&dir, &sample(ordinal)).expect("write");
        }
        let files = party_files(&dir, 1).expect("list");
        assert_eq!(files.len(), 2, "keep last two only");
        let latest = load_latest(&dir, 1, 3, 0xF00D)
            .expect("load")
            .expect("some");
        assert_eq!(latest.ordinal, 3);

        // Corrupt the newest file: loader falls back to its predecessor.
        let newest = files.last().expect("newest");
        let mut bytes = fs::read(newest).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(newest, &bytes).expect("rewrite");
        let fallback = load_latest(&dir, 1, 3, 0xF00D)
            .expect("load")
            .expect("some");
        assert_eq!(fallback.ordinal, 2);

        // Wrong fingerprint is a hard error, not a silent fresh start.
        assert!(matches!(
            load_latest(&dir, 1, 3, 0xBEEF),
            Err(CheckpointError::ScenarioMismatch { .. })
        ));

        // No files at all: clean fresh start.
        assert!(load_latest(&dir, 7, 3, 0xF00D).expect("load").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
