//! Minimal JSON value type, writer, and parser.
//!
//! The workspace builds without registry access, so there is no serde;
//! reports and JSON scenario files go through this module instead. The
//! subset is full JSON minus `\u` escapes for non-BMP code points (which
//! the reports never emit).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document. Objects preserve insertion order so reports stay
/// diffable run-to-run.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/overwrite a key on an object (panics on non-objects).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let Json::Obj(entries) = self else {
            panic!("set() on non-object")
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.into(),
            None => entries.push((key.to_string(), value.into())),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `get` through a dotted path: `"timing.stages.mpc_computation_s"`.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, k| v.get(k))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object keys in order (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(entries) => entries.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (rejects trailing input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Arr(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl From<BTreeMap<String, Json>> for Json {
    fn from(map: BTreeMap<String, Json>) -> Json {
        Json::Obj(map.into_iter().collect())
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; reports encode them as null.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            let mut out = String::new();
            *pos += 1;
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = bytes
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or("surrogate \\u escapes unsupported")?,
                                );
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {pos}")),
                        }
                        *pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // boundaries are valid).
                        let rest =
                            std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_report_shape() {
        let doc = Json::obj()
            .with("name", "run")
            .with("seed", 0xBE7C4u64)
            .with("ok", true)
            .with("ratio", 0.25)
            .with("missing", Json::Null)
            .with("parties", vec![0u64, 1, 2])
            .with("nested", Json::obj().with("bytes", 1234u64));
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.path("nested.bytes").unwrap().as_u64(), Some(1234));
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(0xBE7C4));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = Json::parse(r#"{"s": "a\"b\\c\ndéµ"}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("a\"b\\c\ndéµ"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(Json::Num(3.0).to_pretty(), "3\n");
        assert_eq!(Json::Num(0.5).to_pretty(), "0.5\n");
        assert_eq!(Json::Num(f64::NAN).to_pretty(), "null\n");
        let big = Json::parse("18446744073709551616").unwrap();
        assert!(big.as_f64().unwrap() > 1.8e19);
    }

    #[test]
    fn set_overwrites() {
        let mut o = Json::obj().with("k", 1u64);
        o.set("k", 2u64);
        assert_eq!(o.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(o.keys(), vec!["k"]);
    }
}
