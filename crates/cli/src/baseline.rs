//! Machine-readable perf baselines: `pivot bench --baseline out.json`.
//!
//! A baseline record captures, for one machine and one scenario, (a) the
//! protocol-level wall clocks per algorithm (with per-stage split, op
//! counters, and randomness-pool behavior), (b) micro-benchmark ops/sec
//! for the batched crypto primitives against their serial references, and
//! (c) derived serial→`-PP` speedups. Records are stable JSON committed
//! next to the repo (`BENCH_PR3.json` is the first datum) so the perf
//! trajectory across PRs is a diff, not an anecdote. Gate on *presence*,
//! not thresholds — wall clocks are machine-dependent trend data.

use crate::json::Json;
use crate::report::SCHEMA_VERSION;
use crate::runner::Execution;
use crate::scenario::Scenario;
use pivot_bignum::BigUint;
use pivot_paillier::threshold::PartialDecryption;
use pivot_paillier::{batch, fixtures, vector, NoncePool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Number of ciphertexts per micro-benchmark batch: small enough for CI,
/// large enough to amortize dispatch.
const MICRO_BATCH: usize = 32;

fn ops_per_s(count: usize, elapsed_s: f64) -> f64 {
    if elapsed_s > 0.0 {
        count as f64 / elapsed_s
    } else {
        f64::INFINITY
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Micro-benchmarks of the batched crypto primitives on fixture keys.
fn micro_json(keysize: u32, threads: usize, pool_size: usize) -> Json {
    // The micro section measures the *mechanism*, not the scenario's
    // tuning: a pool smaller than two batches would make the "online
    // warm pool" number silently include inline exponentiations.
    let pool_size = pool_size.max(2 * MICRO_BATCH);
    let kp = fixtures::threshold_keys(3, keysize);
    let values: Vec<BigUint> = (0..MICRO_BATCH as u64)
        .map(|i| BigUint::from_u64(i * 977 + 1))
        .collect();

    // Encryption: serial RNG path vs the online batched path over a
    // *warm* pool — the offline `r^N` fill happens outside the timer, so
    // the batch number is the online cost the protocol actually pays when
    // precomputation overlapped an idle phase.
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    let (serial_cts, serial_enc_s) = timed(|| vector::encrypt_vec(&kp.pk, &values, &mut rng));
    let pool = NoncePool::new(kp.pk.clone(), 0xBA5E, pool_size);
    pool.refill();
    pool.wait_ready();
    let (batch_cts, batch_enc_s) = timed(|| batch::encrypt_batch(&kp.pk, &values, &pool, threads));
    assert_eq!(serial_cts, batch_cts, "parity violated in micro bench");
    let cts = batch_cts;

    // Online-only cost: warm pool, plain `take` (no background top-up
    // runs during the timed section), single thread. This is the per-
    // ciphertext latency once precomputation overlapped an idle phase:
    // one modular multiplication instead of a full `r^N` exponentiation.
    pool.wait_ready();
    let (online_cts, online_enc_s) = timed(|| {
        values
            .iter()
            .map(|x| kp.pk.encrypt_with_rn(x, &pool.take()))
            .collect::<Vec<_>>()
    });
    drop(online_cts);

    // Partial decryption: serial loop vs batch.
    let share = &kp.shares[0];
    let (serial_parts, serial_dec_s) = timed(|| {
        cts.iter()
            .map(|c| share.partial_decrypt(c))
            .collect::<Vec<_>>()
    });
    let (_, batch_dec_s) = timed(|| batch::partial_decrypt_batch(share, &cts, threads));
    drop(serial_parts);

    // Combination: serial loop vs batch over full partial sets.
    let per_ct: Vec<Vec<PartialDecryption>> = cts
        .iter()
        .map(|c| kp.shares.iter().map(|s| s.partial_decrypt(c)).collect())
        .collect();
    let (serial_combined, serial_comb_s) = timed(|| {
        per_ct
            .iter()
            .map(|parts| kp.combiner.combine(parts))
            .collect::<Vec<_>>()
    });
    let (batch_combined, batch_comb_s) =
        timed(|| batch::combine_batch(&kp.combiner, &per_ct, threads));
    assert_eq!(serial_combined, batch_combined, "combine parity violated");

    // Multi-exponentiation: dot_plain (interleaved windows) vs the naive
    // per-term mul_plain product.
    let weights: Vec<BigUint> = (0..MICRO_BATCH as u64)
        .map(|i| BigUint::from_u64(i * 31 + 2))
        .collect();
    let (naive_dot, naive_s) = timed(|| {
        let mut acc = kp.pk.trivial_zero().clone();
        for (c, w) in cts.iter().zip(&weights) {
            acc = kp.pk.add(&acc, &kp.pk.mul_plain(c, w));
        }
        acc
    });
    let (multi_dot, multi_s) = timed(|| vector::dot_plain(&kp.pk, &cts, &weights));
    assert_eq!(naive_dot, multi_dot, "multi-exponentiation parity violated");

    Json::obj()
        .with("keysize", u64::from(keysize))
        .with("batch_size", MICRO_BATCH)
        .with("threads", threads)
        .with(
            "encrypt",
            Json::obj()
                .with("serial_ops_per_s", ops_per_s(MICRO_BATCH, serial_enc_s))
                .with("batch_ops_per_s", ops_per_s(MICRO_BATCH, batch_enc_s))
                .with(
                    "online_warm_pool_ops_per_s",
                    ops_per_s(MICRO_BATCH, online_enc_s),
                ),
        )
        .with(
            "partial_decrypt",
            Json::obj()
                .with("serial_ops_per_s", ops_per_s(MICRO_BATCH, serial_dec_s))
                .with("batch_ops_per_s", ops_per_s(MICRO_BATCH, batch_dec_s)),
        )
        .with(
            "combine",
            Json::obj()
                .with("serial_ops_per_s", ops_per_s(MICRO_BATCH, serial_comb_s))
                .with("batch_ops_per_s", ops_per_s(MICRO_BATCH, batch_comb_s)),
        )
        .with(
            "multi_exp_dot",
            Json::obj()
                .with("naive_s", naive_s)
                .with("multi_pow_s", multi_s)
                .with(
                    "speedup",
                    if multi_s > 0.0 {
                        Json::Num(naive_s / multi_s)
                    } else {
                        Json::Null
                    },
                ),
        )
        .with("pool", crate::report::pool_json(&pool.stats()))
}

fn algo_json(exec: &Execution) -> Json {
    let p0 = &exec.parties[0];
    let mut entry = Json::obj()
        .with("algorithm", exec.algo.label())
        .with("train_wall_s", p0.train_wall_s)
        .with(
            "stages_s",
            Json::obj()
                .with("local_computation", p0.stage_s[0])
                .with("mpc_computation", p0.stage_s[1])
                .with("model_update", p0.stage_s[2])
                .with("prediction", p0.stage_s[3]),
        )
        .with("bytes_sent_party0", p0.train_bytes_sent)
        .with("stats_bytes_sent_party0", p0.stats_bytes_sent)
        .with("mpc_rounds", p0.mpc_rounds)
        .with("train_messages_party0", p0.train_messages_sent)
        .with("encryptions", p0.encryptions)
        .with("threshold_decryptions", p0.threshold_decryptions)
        .with("split_stat_ciphertexts", p0.split_stat_ciphertexts)
        .with("comparisons", crate::report::comparisons_json(p0))
        .with(
            "verification",
            crate::report::verification_json(&p0.verification),
        )
        .with(
            "pool_hit_rate",
            match p0.pool.hit_rate() {
                Some(r) => Json::Num(r),
                None => Json::Null,
            },
        );
    if let Some(trace) = p0.trace.as_ref() {
        entry.set(
            "phases",
            crate::report::phase_rows_json(&pivot_trace::phase_table(trace)),
        );
    }
    entry
}

/// Serial → `-PP` speedups derivable from the executed algorithm list.
fn speedups_json(execs: &[Execution]) -> Json {
    let wall = |label: &str| {
        execs
            .iter()
            .find(|e| e.algo.label() == label)
            .map(|e| e.parties[0].train_wall_s)
    };
    let mut out = Json::obj();
    for (base, pp, key) in [
        ("Pivot-Basic", "Pivot-Basic-PP", "basic_pp_over_serial"),
        (
            "Pivot-Enhanced",
            "Pivot-Enhanced-PP",
            "enhanced_pp_over_serial",
        ),
    ] {
        if let (Some(b), Some(p)) = (wall(base), wall(pp)) {
            if p > 0.0 {
                out.set(key, b / p);
            }
        }
    }
    out
}

/// Build the full baseline record for one scenario run.
pub fn baseline_report(scenario: &Scenario, execs: &[Execution]) -> Json {
    let unix_time_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let threads = scenario.params.crypto_threads.max(1);
    Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with("kind", "perf-baseline")
        .with("tool", format!("pivot-cli {}", env!("CARGO_PKG_VERSION")))
        .with("unix_time_s", unix_time_s)
        .with("scenario", scenario.to_json())
        .with("seed", scenario.seed)
        .with(
            "algorithms",
            Json::Arr(execs.iter().map(algo_json).collect()),
        )
        .with("speedups", speedups_json(execs))
        .with(
            "micro",
            micro_json(
                scenario.params.keysize,
                threads,
                scenario.params.randomness_pool,
            ),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_benches_produce_positive_rates() {
        let j = micro_json(128, 2, 8);
        for path in [
            "encrypt.serial_ops_per_s",
            "encrypt.batch_ops_per_s",
            "partial_decrypt.batch_ops_per_s",
            "combine.batch_ops_per_s",
        ] {
            let v = j.path(path).unwrap().as_f64().unwrap();
            assert!(v > 0.0, "{path} = {v}");
        }
        assert!(j.path("pool.hit_rate").unwrap().as_f64().is_some());
    }
}
