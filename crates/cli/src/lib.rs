//! `pivot-cli`: the scenario-driven operational layer of the Pivot
//! reproduction.
//!
//! A *scenario file* (TOML or JSON, see [`scenario`]) declares one run —
//! dataset or synthesis parameters, party count, protocol parameters,
//! algorithm, LAN-simulation knobs — and the `pivot` binary executes it
//! and emits a machine-readable JSON [`report`]: per-stage wall-clock,
//! bytes sent/received per party, operation counts, and the test metric,
//! together with an echo of the scenario and seed so runs recorded months
//! apart stay comparable.
//!
//! Subcommands:
//! - `pivot train --scenario <file>` — train + evaluate, full report
//!   (all parties as threads of this process);
//! - `pivot predict --scenario <file>` — same run, prediction-latency
//!   focus (per-sample time, prediction-phase traffic);
//! - `pivot bench --scenario <file>` — a Figure-4-style sweep over one
//!   axis (`[sweep]` section, including `[network]` latency/bandwidth)
//!   × the listed algorithms;
//! - `pivot party --scenario <file> --id <N> --peers <a0,a1,…>` — run
//!   ONE party of the scenario over TCP, one process per client (the
//!   paper's deployment shape); reports match the threaded run
//!   bit-for-bit;
//! - `pivot trace <report-or-trace.json>` — print the per-phase
//!   round/byte/wall table of a traced run (`params.trace != "off"`), or
//!   validate a Chrome-trace export with `--check`.

pub mod baseline;
pub mod checkpoint;
pub mod json;
pub mod party;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod toml;
pub mod trace_cmd;
