//! JSON report construction.
//!
//! Reports are self-describing: every run embeds the effective scenario,
//! the seed, and the tool version, so results collected months apart stay
//! comparable (`schema_version` bumps on any incompatible shape change).

use crate::json::Json;
use crate::runner::Execution;
use crate::scenario::Scenario;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

pub const SCHEMA_VERSION: u64 = 1;

/// Default report path for a scenario file:
/// `<scenario-stem><suffix>-report.json` in the current directory (the
/// suffix distinguishes per-party reports, e.g. `-party2`).
pub fn default_report_path(scenario: &Path, suffix: &str) -> PathBuf {
    let stem = scenario
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "pivot".into());
    PathBuf::from(format!("{stem}{suffix}-report.json"))
}

fn header(command: &str, scenario: &Scenario) -> Json {
    let unix_time_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Json::obj()
        .with("schema_version", SCHEMA_VERSION)
        .with("tool", format!("pivot-cli {}", env!("CARGO_PKG_VERSION")))
        .with("command", command)
        .with("unix_time_s", unix_time_s)
        .with("scenario", scenario.to_json())
        .with("seed", scenario.seed)
}

/// Training-phase traffic of one party. One definition feeds the
/// per-party array of train/predict reports *and* the `pivot party`
/// report, so the cross-backend parity contract (distributed reports
/// comparable field-for-field with in-process ones) holds mechanically.
fn train_traffic_json(p: &crate::runner::PartyOutcome) -> Json {
    Json::obj()
        .with("bytes_sent", p.train_bytes_sent)
        .with("bytes_received", p.train_bytes_received)
        .with("messages_sent", p.train_messages_sent)
}

/// Prediction-phase traffic of one party (same contract as above).
fn predict_traffic_json(p: &crate::runner::PartyOutcome) -> Json {
    Json::obj()
        .with("bytes_sent", p.predict_bytes_sent)
        .with("bytes_received", p.predict_bytes_received)
}

/// Session-layer health of one party: whole-run dial/reconnect/replay
/// and fault-injection totals. All zeros in an undisturbed run — the
/// cross-backend parity contract extends to these (a transparently
/// recovered drop shows up here and *only* here).
fn session_json(p: &crate::runner::PartyOutcome) -> Json {
    Json::obj()
        .with("connect_retries", p.connect_retries)
        .with("reconnects", p.reconnects)
        .with("replayed_frames", p.replayed_frames)
        .with("rejoins", p.rejoins)
        .with("faults_injected", p.faults_injected)
}

/// The paper's four protocol stages, in seconds.
fn stages_json(stage_s: &[f64; 4]) -> Json {
    Json::obj()
        .with("local_computation", stage_s[0])
        .with("mpc_computation", stage_s[1])
        .with("model_update", stage_s[2])
        .with("prediction", stage_s[3])
}

fn party_json(exec: &Execution) -> Json {
    Json::Arr(
        exec.parties
            .iter()
            .map(|p| {
                Json::obj()
                    .with("party", p.party)
                    .with("train", train_traffic_json(p))
                    .with("predict", predict_traffic_json(p))
                    .with("session", session_json(p))
                    .with("stages_s", stages_json(&p.stage_s))
            })
            .collect(),
    )
}

fn counters_json(exec: &Execution) -> Json {
    let p0 = &exec.parties[0];
    // Field-wise cross-party aggregation: a default-initialized side (a
    // party that never entered the comparison pipeline, or a pre-PR-5
    // report read back with empty groups) contributes zeros instead of
    // erasing the other side's groups.
    let mut comparison_all = pivot_core::ComparisonCounters::default();
    let mut dealer_all = pivot_core::DealerPoolStats::default();
    for p in &exec.parties {
        comparison_all.merge(&p.comparison);
        dealer_all.merge(&p.dealer_pool);
    }
    Json::obj()
        .with("encryptions", p0.encryptions)
        .with("ciphertext_ops", p0.ciphertext_ops)
        .with("threshold_decryptions", p0.threshold_decryptions)
        .with("mpc_rounds", p0.mpc_rounds)
        .with("secure_mults", p0.secure_mults)
        .with("secure_comparisons", p0.secure_comparisons)
        .with("comparisons", comparisons_json(p0))
        .with(
            "comparisons_all_parties",
            Json::obj()
                .with("count", comparison_all.count)
                .with("online_rounds", comparison_all.online_rounds)
                .with("opened_elements", comparison_all.opened_elements)
                .with("dealer_precomputed", dealer_all.produced),
        )
        .with("split_stat_ciphertexts", p0.split_stat_ciphertexts)
        .with("packing", packing_json(p0))
        .with("randomness_pool", pool_json(&p0.pool))
        .with("verification", verification_json(&p0.verification))
        .with(
            "checkpoint",
            Json::obj()
                .with(
                    "written",
                    exec.parties
                        .iter()
                        .map(|p| p.checkpoints_written)
                        .sum::<u64>(),
                )
                .with(
                    "bytes",
                    exec.parties.iter().map(|p| p.checkpoint_bytes).sum::<u64>(),
                ),
        )
}

/// Malicious-model verification counters of one party: proof
/// generation/check volume, spot-check skip ratio, wire bytes the proof
/// bundles added, and verification wall time. All zeros under
/// `params.verification = "off"`.
pub(crate) fn verification_json(v: &pivot_core::VerificationCounters) -> Json {
    let checked = v.proofs_verified + v.proofs_skipped;
    Json::obj()
        .with("proofs_generated", v.proofs_generated)
        .with("proofs_verified", v.proofs_verified)
        .with("proofs_skipped", v.proofs_skipped)
        .with("proofs_rejected", v.proofs_rejected)
        .with("proof_bytes", v.proof_bytes)
        .with("wall_s", v.wall.as_secs_f64())
        .with(
            "verified_fraction",
            if checked > 0 {
                Json::Num(v.proofs_verified as f64 / checked as f64)
            } else {
                Json::Null
            },
        )
}

/// Per-phase aggregate rows of one party's trace: rounds, bytes, wall and
/// blocking-wait time per protocol phase. The counter columns bucket
/// *every* attributed byte/round, so their sums equal the party's
/// `NetStats` / `counters` totals exactly.
pub(crate) fn phase_rows_json(rows: &[pivot_trace::PhaseRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj()
                    .with("phase", r.phase.clone())
                    .with("spans", r.span_count)
                    .with("wall_s", r.wall_ns as f64 / 1e9)
                    .with("wait_s", r.wait_ns as f64 / 1e9)
                    .with("rounds", r.rounds)
                    .with("bytes_sent", r.sent_bytes)
                    .with("bytes_received", r.recv_bytes)
            })
            .collect(),
    )
}

/// The `trace` report section: per-party phase tables (present only when
/// the scenario ran with `params.trace != "off"`).
pub(crate) fn trace_json(exec: &Execution) -> Option<Json> {
    let tables: Vec<Json> = exec
        .parties
        .iter()
        .filter_map(|p| p.trace.as_ref())
        .map(|t| {
            Json::obj()
                .with("party", t.party)
                .with("level", t.level.as_str())
                .with("phases", phase_rows_json(&pivot_trace::phase_table(t)))
        })
        .collect();
    if tables.is_empty() {
        return None;
    }
    let mut section = Json::obj().with("per_party", Json::Arr(tables));
    if let Some(rt) = &exec.runtime_trace {
        section.set(
            "runtime",
            Json::obj()
                .with("background_spans", rt.spans.len() as u64)
                .with("gauge_samples", rt.gauges.len() as u64),
        );
    }
    Some(section)
}

/// Write the side-car trace exports next to a run's report: a Chrome
/// trace (`<report-stem>-trace.json`, loadable in Perfetto /
/// `chrome://tracing`) and a Prometheus text snapshot
/// (`<report-stem>-trace.prom`). No-op when the run was untraced.
pub fn write_trace_exports(out_path: &Path, exec: &Execution, quiet: bool) -> Result<(), String> {
    let traces: Vec<pivot_trace::PartyTrace> = exec
        .parties
        .iter()
        .filter_map(|p| p.trace.clone())
        .collect();
    if traces.is_empty() {
        return Ok(());
    }
    let stem = out_path.with_extension("");
    let stem = stem.to_string_lossy();
    let chrome_path = PathBuf::from(format!("{stem}-trace.json"));
    let prom_path = PathBuf::from(format!("{stem}-trace.prom"));
    let runtime = exec.runtime_trace.as_ref();
    std::fs::write(
        &chrome_path,
        pivot_trace::chrome_trace_json(&traces, runtime),
    )
    .map_err(|e| format!("cannot write {}: {e}", chrome_path.display()))?;
    std::fs::write(
        &prom_path,
        pivot_trace::prometheus_snapshot(&traces, runtime),
    )
    .map_err(|e| format!("cannot write {}: {e}", prom_path.display()))?;
    if !quiet {
        println!(
            "trace written to {} (open in https://ui.perfetto.dev) and {}",
            chrome_path.display(),
            prom_path.display()
        );
    }
    Ok(())
}

/// Comparison-pipeline telemetry of one party: what the gain pipeline's
/// secure comparisons actually paid in rounds, opened field elements, and
/// preprocessing material, with the per-width histogram and the offline
/// dealer-pool behavior.
pub(crate) fn comparisons_json(p: &crate::runner::PartyOutcome) -> Json {
    let c = &p.comparison;
    let mut widths = Json::obj();
    for &(k, n) in &c.widths {
        widths.set(&format!("{k}"), n);
    }
    let dp = &p.dealer_pool;
    Json::obj()
        .with("count", c.count)
        .with("online_rounds", c.online_rounds)
        .with("opened_elements", c.opened_elements)
        .with("beaver_triples", c.beaver_triples)
        .with("masked_bit_rows", c.masked_bit_rows)
        .with("masked_bits", c.masked_bits)
        .with("widths", widths)
        .with(
            "dealer_pool",
            Json::obj()
                .with("target", dp.target)
                .with("triple_hits", dp.triple_hits)
                .with("triple_misses", dp.triple_misses)
                .with("masked_hits", dp.masked_hits)
                .with("masked_misses", dp.masked_misses)
                .with("precomputed", dp.produced)
                .with(
                    "hit_rate",
                    match dp.hit_rate() {
                        Some(r) => Json::Num(r),
                        None => Json::Null,
                    },
                ),
        )
}

/// Ciphertext-packing behavior of one party: how many packed ciphertexts
/// were emitted, how many plaintext values they carried, and the slot
/// occupancy (values / capacity; null when nothing was packed).
fn packing_json(p: &crate::runner::PartyOutcome) -> Json {
    let (cts, values, capacity) = p.packed;
    Json::obj()
        .with("ciphertexts", cts)
        .with("values", values)
        .with("slot_capacity", capacity)
        .with(
            "occupancy",
            if capacity > 0 {
                Json::Num(values as f64 / capacity as f64)
            } else {
                Json::Null
            },
        )
        .with("stats_bytes_sent", p.stats_bytes_sent)
}

/// Offline randomness-pool behavior of one party (hit rate is null when
/// the pool never served a take — e.g. a pure-MPC baseline run).
pub(crate) fn pool_json(stats: &pivot_paillier::NonceStats) -> Json {
    Json::obj()
        .with("target", stats.target)
        .with("hits", stats.hits)
        .with("misses", stats.misses)
        .with("precomputed", stats.produced)
        .with(
            "hit_rate",
            match stats.hit_rate() {
                Some(r) => Json::Num(r),
                None => Json::Null,
            },
        )
}

fn dataset_json(exec: &Execution) -> Json {
    Json::obj()
        .with("train_samples", exec.train_samples)
        .with("test_samples", exec.test_samples)
        .with("features", exec.features)
        .with("task", format!("{:?}", exec.task))
}

fn model_json(exec: &Execution) -> Json {
    let p0 = &exec.parties[0];
    Json::obj()
        .with("internal_nodes", p0.internal_nodes)
        .with("depth", p0.tree_depth.map(|d| d as u64))
}

fn evaluation_json(exec: &Execution) -> Json {
    Json::obj()
        .with("metric", exec.metric_name)
        .with("value", exec.metric)
        .with("test_samples", exec.test_samples)
}

fn totals_json(exec: &Execution) -> Json {
    let total_sent: u64 = exec
        .parties
        .iter()
        .map(|p| p.train_bytes_sent + p.predict_bytes_sent)
        .sum();
    let total_msgs: u64 = exec.parties.iter().map(|p| p.train_messages_sent).sum();
    Json::obj()
        .with("bytes_sent_all_parties", total_sent)
        .with("train_messages_all_parties", total_msgs)
}

/// Report for `pivot train`.
pub fn train_report(scenario: &Scenario, exec: &Execution) -> Json {
    let p0 = &exec.parties[0];
    let mut report = header("train", scenario)
        .with("algorithm", exec.algo.label())
        .with("dataset", dataset_json(exec))
        .with(
            "timing",
            Json::obj()
                .with("wall_total_s", exec.wall_s)
                .with("train_s", p0.train_wall_s)
                .with("predict_s", p0.predict_wall_s)
                .with("stages_s", stages_json(&p0.stage_s)),
        )
        .with(
            "network",
            Json::obj()
                .with("per_party", party_json(exec))
                .with("totals", totals_json(exec)),
        )
        .with("counters", counters_json(exec))
        .with("model", model_json(exec))
        .with("evaluation", evaluation_json(exec));
    if let Some(trace) = trace_json(exec) {
        report.set("trace", trace);
    }
    report
}

/// Report for `pivot predict` (same run shape, prediction-centric fields).
pub fn predict_report(scenario: &Scenario, exec: &Execution) -> Json {
    let p0 = &exec.parties[0];
    let per_sample_s = if exec.test_samples > 0 {
        Json::Num(p0.predict_wall_s / exec.test_samples as f64)
    } else {
        Json::Null
    };
    let mut report = header("predict", scenario)
        .with("algorithm", exec.algo.label())
        .with("dataset", dataset_json(exec))
        .with(
            "timing",
            Json::obj()
                .with("wall_total_s", exec.wall_s)
                .with("train_s", p0.train_wall_s)
                .with("predict_s", p0.predict_wall_s)
                .with("predict_per_sample_s", per_sample_s),
        )
        .with(
            "network",
            Json::obj()
                .with("per_party", party_json(exec))
                .with("totals", totals_json(exec)),
        )
        .with("counters", counters_json(exec))
        .with("model", model_json(exec))
        .with("evaluation", evaluation_json(exec));
    if let Some(trace) = trace_json(exec) {
        report.set("trace", trace);
    }
    report
}

/// Report for `pivot party`: one party's view of a distributed TCP run.
///
/// Carries the same `network`/`counters`/`model`/`evaluation` shapes as
/// the train report (so tooling can diff a distributed run against the
/// in-process run party by party) plus the raw prediction vector, which
/// lets a harness assert that all `m` processes agree on the jointly
/// computed model output bit for bit.
pub fn party_report(scenario: &Scenario, party: usize, exec: &Execution) -> Json {
    let p = &exec.parties[0];
    let mut report = header("party", scenario)
        .with("algorithm", exec.algo.label())
        .with("party", party)
        .with("dataset", dataset_json(exec))
        .with(
            "timing",
            Json::obj()
                .with("wall_total_s", exec.wall_s)
                .with("train_s", p.train_wall_s)
                .with("predict_s", p.predict_wall_s)
                .with("stages_s", stages_json(&p.stage_s)),
        )
        .with(
            "network",
            Json::obj()
                .with("train", train_traffic_json(p))
                .with("predict", predict_traffic_json(p))
                .with("session", session_json(p)),
        )
        .with("counters", counters_json(exec))
        .with("model", model_json(exec))
        .with("evaluation", evaluation_json(exec))
        .with(
            "predictions",
            Json::Arr(p.predictions.iter().map(|&v| Json::Num(v)).collect()),
        );
    if let Some(trace) = trace_json(exec) {
        report.set("trace", trace);
    }
    report
}

/// Failure report for `pivot party`: written in place of the normal
/// report when the run dies on a transport failure, so a harness can
/// read *what* failed (kind, peer, direction, protocol phase, elapsed
/// wait) as data instead of scraping stderr. The scenario echo — which
/// includes the effective `connect_timeout_s` — rides along as in every
/// other report.
pub fn party_error_report(
    scenario: &Scenario,
    party: usize,
    err: &pivot_transport::TransportError,
    wall_s: f64,
) -> Json {
    let mut error = Json::obj()
        .with("kind", err.kind.as_str())
        .with("party", err.party as u64)
        .with("peer", err.peer.map(|p| p as u64))
        .with("direction", err.direction.map(|d| d.as_str()))
        .with("phase", err.phase.clone())
        .with("elapsed_s", err.elapsed.as_secs_f64())
        .with("detail", err.detail.clone())
        .with("message", err.to_string());
    // A resume gap names the first frame the retransmit ring could not
    // replay, so a harness can see how far eviction outran the peer.
    if let Some(seq) = err.missing_seq {
        error.set("missing_seq", seq);
    }
    header("party", scenario)
        .with("party", party)
        .with("status", "failed")
        .with("wall_total_s", wall_s)
        .with("error", error)
}

/// Failure report for `pivot party` when the crash-recovery plane failed:
/// an unreadable, corrupt, or mismatched checkpoint under `--resume`, or
/// a durable write failure mid-run (exit code 13 either way).
pub fn party_checkpoint_error_report(
    scenario: &Scenario,
    party: usize,
    err: &crate::checkpoint::CheckpointError,
    wall_s: f64,
) -> Json {
    header("party", scenario)
        .with("party", party)
        .with("status", "failed")
        .with("wall_total_s", wall_s)
        .with(
            "error",
            Json::obj()
                .with("kind", "checkpoint")
                .with("party", party as u64)
                .with("detail", format!("{err:?}"))
                .with("message", err.to_string()),
        )
}

/// Failure report for `pivot party` when the run died on a *protocol*
/// failure — a rejected zero-knowledge proof. Unlike a transport error
/// it names the accused cheater (`accused`) separately from the party
/// that observed the rejection, so a harness reads the attribution as
/// data.
pub fn party_protocol_error_report(
    scenario: &Scenario,
    party: usize,
    err: &pivot_transport::ProtocolError,
    wall_s: f64,
) -> Json {
    let pivot_transport::ProtocolError::ProofRejected {
        party: accused,
        observer,
        phase,
        proof_kind,
        detail,
    } = err;
    header("party", scenario)
        .with("party", party)
        .with("status", "failed")
        .with("wall_total_s", wall_s)
        .with(
            "error",
            Json::obj()
                .with("kind", "proof_rejected")
                .with("accused", *accused as u64)
                .with("observer", *observer as u64)
                .with("phase", phase.clone())
                .with("proof_kind", proof_kind.clone())
                .with("detail", detail.clone())
                .with("message", err.to_string()),
        )
}

/// Report for `pivot bench`: one entry per (axis value × algorithm).
pub fn bench_report(scenario: &Scenario, axis: &str, results: &[(usize, Execution)]) -> Json {
    let entries: Vec<Json> = results
        .iter()
        .map(|(value, exec)| {
            let p0 = &exec.parties[0];
            let mut entry = Json::obj()
                .with(axis, *value)
                .with("algorithm", exec.algo.label())
                .with("train_wall_s", p0.train_wall_s)
                .with("bytes_sent_party0", p0.train_bytes_sent)
                .with("stats_bytes_sent_party0", p0.stats_bytes_sent)
                .with(
                    "bytes_sent_all_parties",
                    exec.parties.iter().map(|p| p.train_bytes_sent).sum::<u64>(),
                )
                .with("internal_nodes", p0.internal_nodes)
                .with("counters", counters_json(exec));
            if let Some(trace) = p0.trace.as_ref() {
                entry.set("phases", phase_rows_json(&pivot_trace::phase_table(trace)));
            }
            entry
        })
        .collect();
    header("bench", scenario)
        .with("vary", axis)
        .with("results", Json::Arr(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PartyOutcome;
    use pivot_bench::Algo;
    use pivot_data::Task;

    fn fake_exec() -> Execution {
        let party = |id: usize| PartyOutcome {
            party: id,
            train_bytes_sent: 1000 + id as u64,
            train_bytes_received: 900,
            train_messages_sent: 10,
            predict_bytes_sent: 50,
            predict_bytes_received: 40,
            stage_s: [0.1, 0.2, 0.3, 0.05],
            train_wall_s: 0.6,
            predict_wall_s: 0.1,
            encryptions: 12,
            ciphertext_ops: 34,
            threshold_decryptions: 5,
            mpc_rounds: 7,
            secure_mults: 8,
            secure_comparisons: 9,
            comparison: pivot_core::ComparisonCounters {
                count: 9,
                online_rounds: 40,
                opened_elements: 300,
                beaver_triples: 120,
                masked_bit_rows: 9,
                masked_bits: 81,
                widths: vec![(9, 4), (45, 5)],
            },
            dealer_pool: pivot_core::DealerPoolStats {
                target: 64,
                triple_hits: 100,
                triple_misses: 20,
                masked_hits: 8,
                masked_misses: 1,
                produced: 128,
            },
            verification: pivot_core::VerificationCounters {
                proofs_generated: 20,
                proofs_verified: 5,
                proofs_skipped: 15,
                proofs_rejected: 0,
                proof_bytes: 4096,
                wall: std::time::Duration::from_millis(12),
            },
            split_stat_ciphertexts: 54,
            packed: (9, 57, 63),
            stats_bytes_sent: 640,
            pool: pivot_paillier::NonceStats {
                hits: 6,
                misses: 2,
                produced: 8,
                target: 16,
            },
            connect_retries: 1,
            reconnects: 2,
            replayed_frames: 3,
            rejoins: 1,
            faults_injected: 1,
            checkpoints_written: 2,
            checkpoint_bytes: 2048,
            internal_nodes: 3,
            tree_depth: Some(2),
            predictions: vec![0.0, 1.0],
            trace: None,
        };
        Execution {
            algo: Algo::PivotBasic,
            wall_s: 0.75,
            train_samples: 30,
            test_samples: 2,
            features: 4,
            task: Task::Classification { classes: 2 },
            parties: vec![party(0), party(1)],
            metric: Some(0.5),
            metric_name: "accuracy",
            runtime_trace: None,
        }
    }

    fn scenario() -> Scenario {
        let tmp =
            std::env::temp_dir().join(format!("pivot-report-test-{}.toml", std::process::id()));
        std::fs::write(&tmp, "name = \"report test\"\nparties = 2").unwrap();
        let s = Scenario::load(&tmp).unwrap();
        std::fs::remove_file(&tmp).ok();
        s
    }

    #[test]
    fn train_report_is_valid_json_with_required_fields() {
        let report = train_report(&scenario(), &fake_exec());
        let text = report.to_pretty();
        let parsed = crate::json::Json::parse(&text).unwrap();
        assert_eq!(parsed.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.get("command").unwrap().as_str(), Some("train"));
        assert_eq!(parsed.path("evaluation.value").unwrap().as_f64(), Some(0.5));
        assert!(
            parsed
                .path("timing.stages_s.mpc_computation")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        let per_party = parsed
            .path("network.per_party")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(per_party.len(), 2);
        assert_eq!(
            per_party[1].path("train.bytes_sent").unwrap().as_u64(),
            Some(1001)
        );
        assert_eq!(
            parsed.path("scenario.name").unwrap().as_str(),
            Some("report test")
        );
        assert_eq!(
            parsed
                .path("counters.threshold_decryptions")
                .unwrap()
                .as_u64(),
            Some(5)
        );
        assert_eq!(
            parsed
                .path("counters.randomness_pool.hits")
                .unwrap()
                .as_u64(),
            Some(6)
        );
        assert_eq!(
            parsed
                .path("counters.comparisons.opened_elements")
                .unwrap()
                .as_u64(),
            Some(300)
        );
        assert_eq!(
            parsed
                .path("counters.comparisons.widths.45")
                .unwrap()
                .as_u64(),
            Some(5)
        );
        assert_eq!(
            parsed
                .path("counters.comparisons.dealer_pool.triple_hits")
                .unwrap()
                .as_u64(),
            Some(100)
        );
        assert_eq!(
            parsed
                .path("counters.randomness_pool.hit_rate")
                .unwrap()
                .as_f64(),
            Some(0.75)
        );
        assert_eq!(
            parsed
                .path("counters.verification.proofs_generated")
                .unwrap()
                .as_u64(),
            Some(20)
        );
        assert_eq!(
            parsed
                .path("counters.verification.verified_fraction")
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
    }

    #[test]
    fn protocol_error_report_names_the_accused() {
        let err = pivot_transport::ProtocolError::ProofRejected {
            party: 1,
            observer: 0,
            phase: "stats".into(),
            proof_kind: "pohdp".into(),
            detail: "commit index 3".into(),
        };
        let report = party_protocol_error_report(&scenario(), 0, &err, 0.5);
        let parsed = crate::json::Json::parse(&report.to_pretty()).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("failed"));
        assert_eq!(
            parsed.path("error.kind").unwrap().as_str(),
            Some("proof_rejected")
        );
        assert_eq!(parsed.path("error.accused").unwrap().as_u64(), Some(1));
        assert_eq!(parsed.path("error.observer").unwrap().as_u64(), Some(0));
        assert_eq!(parsed.path("error.phase").unwrap().as_str(), Some("stats"));
        assert_eq!(
            parsed.path("error.proof_kind").unwrap().as_str(),
            Some("pohdp")
        );
    }

    #[test]
    fn bench_report_lists_every_point() {
        let results = vec![(2usize, fake_exec()), (3, fake_exec())];
        let report = bench_report(&scenario(), "parties", &results);
        let parsed = crate::json::Json::parse(&report.to_pretty()).unwrap();
        let entries = parsed.get("results").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].get("parties").unwrap().as_u64(), Some(3));
        assert!(
            entries[0]
                .path("counters.secure_mults")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
    }

    #[test]
    fn trace_section_appears_only_when_traced() {
        let scenario = scenario();
        let plain = train_report(&scenario, &fake_exec());
        assert!(plain.get("trace").is_none());

        let mut exec = fake_exec();
        exec.parties[0].trace = Some(pivot_trace::PartyTrace {
            party: 0,
            level: pivot_trace::TraceLevel::Phases,
            spans: vec![pivot_trace::SpanRecord {
                name: "stats".into(),
                phase: "stats",
                depth: 1,
                is_phase_root: true,
                start_ns: 10,
                end_ns: 110,
                sent_bytes: 64,
                recv_bytes: 32,
                wait_ns: 5,
                rounds: 2,
            }],
            gauges: Vec::new(),
        });
        let traced = train_report(&scenario, &exec);
        let parsed = crate::json::Json::parse(&traced.to_pretty()).unwrap();
        let tables = parsed.path("trace.per_party").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), 1);
        let rows = tables[0].get("phases").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("phase").unwrap().as_str(), Some("stats"));
        assert_eq!(rows[0].get("rounds").unwrap().as_u64(), Some(2));
        assert_eq!(rows[0].get("bytes_sent").unwrap().as_u64(), Some(64));
    }

    #[test]
    fn cross_party_counter_merge_is_field_wise() {
        // Party 1 reporting default-initialized groups must not erase
        // party 0's values in the aggregate.
        let mut exec = fake_exec();
        exec.parties[1].comparison = pivot_core::ComparisonCounters::default();
        exec.parties[1].dealer_pool = pivot_core::DealerPoolStats::default();
        let report = train_report(&scenario(), &exec);
        let parsed = crate::json::Json::parse(&report.to_pretty()).unwrap();
        assert_eq!(
            parsed
                .path("counters.comparisons_all_parties.online_rounds")
                .unwrap()
                .as_u64(),
            Some(40)
        );
        assert_eq!(
            parsed
                .path("counters.comparisons_all_parties.dealer_precomputed")
                .unwrap()
                .as_u64(),
            Some(128)
        );
    }

    #[test]
    fn predict_report_has_per_sample_latency() {
        let report = predict_report(&scenario(), &fake_exec());
        let v = report
            .path("timing.predict_per_sample_s")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((v - 0.05).abs() < 1e-12);
    }
}
