//! Scenario execution: SPMD protocol runs with per-stage timing and
//! per-party traffic accounting.

use crate::scenario::{ModelKind, ModelSpec, Scenario};
use pivot_bench::Algo;
use pivot_core::baselines::{npd_dt, spdz_dt};
use pivot_core::config::PivotParams;
use pivot_core::ensemble::{
    predict_gbdt_batch, predict_rf_batch, train_gbdt, train_rf, GbdtProtocolParams,
    RfProtocolParams,
};
use pivot_core::metrics::Stage;
use pivot_core::model::ConcealedTree;
use pivot_core::party::PartyContext;
use pivot_core::{predict_basic, predict_enhanced, train_basic, train_enhanced};
use pivot_data::{metrics, partition_vertically, Task, VerticalView};
use pivot_transport::{faulty_network, try_run_parties_on, Endpoint, Network};
use pivot_trees::DecisionTree;
use std::time::Instant;

/// Everything one party reports back from an SPMD run.
#[derive(Clone, Debug)]
pub struct PartyOutcome {
    pub party: usize,
    /// Training-phase traffic.
    pub train_bytes_sent: u64,
    pub train_bytes_received: u64,
    pub train_messages_sent: u64,
    /// Prediction-phase traffic (zero when no test samples).
    pub predict_bytes_sent: u64,
    pub predict_bytes_received: u64,
    /// Stage timers, in seconds: local, MPC, model update, prediction.
    pub stage_s: [f64; 4],
    pub train_wall_s: f64,
    pub predict_wall_s: f64,
    /// Paillier / MPC operation counts (the paper's Ce, Cd, Cs, Cc).
    pub encryptions: u64,
    pub ciphertext_ops: u64,
    pub threshold_decryptions: u64,
    pub mpc_rounds: u64,
    pub secure_mults: u64,
    pub secure_comparisons: u64,
    /// Comparison-pipeline telemetry: rounds, opened field elements,
    /// consumed preprocessing material, per-width histogram.
    pub comparison: pivot_core::ComparisonCounters,
    /// Offline dealer-pool behavior (timing-dependent, *not* part of the
    /// cross-backend parity contract).
    pub dealer_pool: pivot_core::DealerPoolStats,
    /// Malicious-model verification plane: proofs generated / verified /
    /// skipped / rejected, proof bytes, and verification wall time. All
    /// zeros when `params.verification = "off"`.
    pub verification: pivot_core::VerificationCounters,
    /// Pooled split-statistics ciphertexts (what packing divides).
    pub split_stat_ciphertexts: u64,
    /// Packed emissions: `(ciphertexts, values carried, slot capacity)`.
    pub packed: (u64, u64, u64),
    /// Bytes this party sent inside the split-statistics pipeline.
    pub stats_bytes_sent: u64,
    /// Offline randomness-pool behavior (timing-dependent, *not* part of
    /// the cross-backend parity contract).
    pub pool: pivot_paillier::NonceStats,
    /// Session-layer health over the whole run (these survive the
    /// between-phase stats reset): dial attempts beyond the first,
    /// sessions resumed after a connection loss, frames retransmitted
    /// from the ring during resumes, peers spliced back in after a full
    /// process restart, and scenario faults fired here.
    pub connect_retries: u64,
    pub reconnects: u64,
    pub replayed_frames: u64,
    pub rejoins: u64,
    pub faults_injected: u64,
    /// Crash-recovery checkpoints durably written by this party and their
    /// total encoded size (zero without a `[checkpoint]` section).
    pub checkpoints_written: u64,
    pub checkpoint_bytes: u64,
    /// Trained-model shape.
    pub internal_nodes: usize,
    pub tree_depth: Option<usize>,
    /// Test-set predictions (identical across parties by protocol).
    pub predictions: Vec<f64>,
    /// Span timeline + gauges when `params.trace` is on (`None` when
    /// tracing is off — the default).
    pub trace: Option<pivot_trace::PartyTrace>,
}

/// One full scenario execution.
#[derive(Clone, Debug)]
pub struct Execution {
    pub algo: Algo,
    pub wall_s: f64,
    pub train_samples: usize,
    pub test_samples: usize,
    pub features: usize,
    pub task: Task,
    pub parties: Vec<PartyOutcome>,
    /// Test metric: accuracy (classification) or MSE (regression); `None`
    /// when the scenario holds out no test data or prediction is skipped.
    pub metric: Option<f64>,
    pub metric_name: &'static str,
    /// Off-party-thread telemetry (worker-pool gauges, background dealer
    /// refills) drained from the process-global sink after the run.
    pub runtime_trace: Option<pivot_trace::RuntimeTrace>,
}

/// A checkpoint sink ready to install on a party, paired with the shared
/// handle the report plumbing reads counters (and the first write error)
/// from after the run.
pub struct CheckpointInstall {
    pub sink: Box<dyn pivot_core::checkpoint::CheckpointSink>,
    pub handle: crate::checkpoint::CheckpointHandle,
}

impl CheckpointInstall {
    /// The production sink for one party of `scenario`.
    pub fn for_party(scenario: &Scenario, party: usize) -> Option<CheckpointInstall> {
        let spec = scenario.checkpoint.as_ref()?;
        let sink = crate::checkpoint::CliCheckpointSink::new(
            std::path::PathBuf::from(&spec.dir),
            spec.every_levels,
            party as u64,
            scenario.parties as u64,
            crate::checkpoint::scenario_fingerprint(scenario),
        );
        let handle = sink.handle();
        Some(CheckpointInstall {
            sink: Box::new(sink),
            handle,
        })
    }
}

enum Trained {
    Plain(DecisionTree),
    Concealed(ConcealedTree),
    Gbdt(pivot_core::ensemble::GbdtModel),
    Rf(pivot_core::ensemble::RfModel),
}

impl Trained {
    fn internal_nodes(&self) -> usize {
        match self {
            Trained::Plain(t) => t.internal_count(),
            Trained::Concealed(t) => t.internal_count(),
            Trained::Gbdt(m) => m
                .forests
                .iter()
                .flatten()
                .map(DecisionTree::internal_count)
                .sum(),
            Trained::Rf(m) => m.trees.iter().map(DecisionTree::internal_count).sum(),
        }
    }

    fn depth(&self) -> Option<usize> {
        match self {
            Trained::Plain(t) => Some(t.depth()),
            // Concealed trees do not reveal their realized shape.
            Trained::Concealed(_) => None,
            Trained::Gbdt(m) => m.forests.iter().flatten().map(DecisionTree::depth).max(),
            Trained::Rf(m) => m.trees.iter().map(DecisionTree::depth).max(),
        }
    }
}

/// One party's full protocol run: train, then (unless `skip_prediction`)
/// jointly predict the test split. This is the body every backend shares —
/// `execute` calls it from `m` threads over in-process channels, and
/// `pivot party` calls it once per OS process over a TCP endpoint — so a
/// distributed run is byte-for-byte the run the threaded backend performs.
#[allow(clippy::too_many_arguments)]
pub fn run_party_protocol(
    ep: &Endpoint,
    view: VerticalView,
    test_view: &VerticalView,
    params: &PivotParams,
    model_spec: &ModelSpec,
    algo: Algo,
    skip_prediction: bool,
    checkpoint: Option<CheckpointInstall>,
) -> PartyOutcome {
    // A no-op at the default `TraceLevel::Off`; otherwise this thread
    // records spans until the matching `finish()` below.
    pivot_trace::install(ep.id(), params.trace);
    // Pipelined scheduling turns on transport-level frame coalescing.
    // Every party takes the same branch (params are shared), keeping the
    // wire format symmetric.
    if params.scheduling == pivot_core::Scheduling::Pipelined {
        ep.set_coalescing(true);
    }
    // Checkpoints snapshot the *inbound transcript*, so recording must
    // start before the first setup exchange ever touches the endpoint
    // (idempotent when `--resume` already enabled it to preload replay).
    let checkpoint_handle = checkpoint.as_ref().map(|c| c.handle.clone());
    if checkpoint.is_some() {
        ep.enable_transcript();
    }
    let mut ctx = PartyContext::setup(ep, view, params.clone());
    ctx.checkpoint = checkpoint.map(|c| c.sink);

    let train_start = Instant::now();
    let model = match (&model_spec.kind, algo) {
        (ModelKind::Gbdt, _) => Trained::Gbdt(train_gbdt(
            &mut ctx,
            &GbdtProtocolParams {
                rounds: model_spec.rounds,
                learning_rate: model_spec.learning_rate,
            },
        )),
        (ModelKind::RandomForest, _) => Trained::Rf(train_rf(
            &mut ctx,
            &RfProtocolParams {
                trees: model_spec.trees,
                sample_fraction: model_spec.sample_fraction,
                bootstrap_seed: params.dealer_seed,
            },
        )),
        (ModelKind::DecisionTree, Algo::PivotBasic | Algo::PivotBasicPp) => {
            Trained::Plain(train_basic::train(&mut ctx))
        }
        (ModelKind::DecisionTree, Algo::PivotEnhanced | Algo::PivotEnhancedPp) => {
            Trained::Concealed(train_enhanced::train(&mut ctx))
        }
        (ModelKind::DecisionTree, Algo::SpdzDt) => Trained::Plain(spdz_dt::train(&mut ctx)),
        (ModelKind::DecisionTree, Algo::NpdDt) => Trained::Plain(npd_dt::train(&mut ctx)),
    };
    let train_wall_s = train_start.elapsed().as_secs_f64();

    // Settle any staged frames so training traffic is attributed to the
    // training counters before the reset below (no-op when coalescing is
    // off or the staging buffers are empty).
    ctx.ep.flush();
    let stats = ctx.ep.stats();
    let train_bytes_sent = stats.bytes_sent();
    let train_bytes_received = stats.bytes_received();
    let train_messages_sent = stats.messages_sent();
    stats.reset();

    let predict_start = Instant::now();
    let predictions = if skip_prediction || test_view.num_samples() == 0 {
        Vec::new()
    } else {
        let _predict = pivot_trace::phase_span("predict");
        let local: Vec<Vec<f64>> = (0..test_view.num_samples())
            .map(|i| test_view.features[i].clone())
            .collect();
        match &model {
            Trained::Plain(tree) => predict_basic::predict_batch(&mut ctx, tree, &local),
            Trained::Concealed(tree) => predict_enhanced::predict_batch(&mut ctx, tree, &local),
            Trained::Gbdt(gbdt) => predict_gbdt_batch(&mut ctx, gbdt, &local),
            Trained::Rf(rf) => predict_rf_batch(&mut ctx, rf, &local),
        }
    };
    let predict_wall_s = predict_start.elapsed().as_secs_f64();

    let (mpc_rounds, secure_mults, secure_comparisons, _openings) =
        ctx.engine.counters().snapshot();
    let comparison = ctx.engine.comparison_snapshot();
    let dealer_pool = ctx.engine.dealer_pool_stats();
    let pool = ctx.nonces.stats();
    let trace = pivot_trace::finish();
    PartyOutcome {
        party: ctx.id(),
        train_bytes_sent,
        train_bytes_received,
        train_messages_sent,
        predict_bytes_sent: stats.bytes_sent(),
        predict_bytes_received: stats.bytes_received(),
        stage_s: [
            ctx.metrics
                .stage_time(Stage::LocalComputation)
                .as_secs_f64(),
            ctx.metrics.stage_time(Stage::MpcComputation).as_secs_f64(),
            ctx.metrics.stage_time(Stage::ModelUpdate).as_secs_f64(),
            ctx.metrics.stage_time(Stage::Prediction).as_secs_f64(),
        ],
        train_wall_s,
        predict_wall_s,
        encryptions: ctx.metrics.encryptions(),
        ciphertext_ops: ctx.metrics.ciphertext_ops(),
        threshold_decryptions: ctx.metrics.threshold_decryptions(),
        mpc_rounds,
        secure_mults,
        secure_comparisons,
        comparison,
        dealer_pool,
        verification: ctx.metrics.verification(),
        split_stat_ciphertexts: ctx.metrics.split_stat_ciphertexts(),
        packed: ctx.metrics.packed(),
        stats_bytes_sent: ctx.metrics.stats_bytes_sent(),
        pool,
        connect_retries: stats.connect_retries(),
        reconnects: stats.reconnects(),
        replayed_frames: stats.replayed_frames(),
        rejoins: stats.rejoins(),
        faults_injected: stats.faults_injected(),
        checkpoints_written: checkpoint_handle.as_ref().map_or(0, |h| h.written()),
        checkpoint_bytes: checkpoint_handle.as_ref().map_or(0, |h| h.bytes()),
        internal_nodes: model.internal_nodes(),
        tree_depth: model.depth(),
        predictions,
        trace,
    }
}

/// Pre-flight checks + dataset/parameter construction shared by the
/// threaded runner and `pivot party`.
pub fn prepare(
    scenario: &Scenario,
    algo: Algo,
) -> Result<(pivot_data::Dataset, pivot_data::Dataset, PivotParams), String> {
    scenario.validate()?;
    let dataset = scenario.build_dataset()?;
    let m = scenario.parties;
    if dataset.num_features() < m {
        return Err(format!(
            "dataset has {} features, fewer than {m} parties — every party needs \
             at least one column",
            dataset.num_features()
        ));
    }
    let (train_set, test_set) = dataset.train_test_split(scenario.data.test_fraction);
    let params = scenario.pivot_params(algo);
    // Surface invalid parameter combinations as errors, not thread panics.
    let n = train_set.num_samples();
    let validation = std::panic::catch_unwind(|| params.assert_valid(n));
    if validation.is_err() {
        return Err(format!(
            "invalid parameters for n={n} (keysize {}, depth {}): see message above",
            params.keysize, params.tree.max_depth
        ));
    }
    Ok((train_set, test_set, params))
}

/// Test metric over the jointly computed predictions (all parties hold
/// identical prediction vectors by protocol, and — datasets being
/// derived deterministically from the scenario seed — identical truth).
pub fn compute_metric(task: Task, preds: &[f64], truth: &[f64]) -> Option<f64> {
    if preds.is_empty() {
        return None;
    }
    Some(match task {
        Task::Classification { .. } => metrics::accuracy(preds, truth),
        Task::Regression => metrics::mse(preds, truth),
    })
}

/// Run one scenario end to end: train on every party thread, then (unless
/// `skip_prediction`) jointly predict the held-out test split.
///
/// Transport failures (a wedged or crashed party, an injected
/// `crash_party` fault) do not panic the process: every party's outcome
/// is collected, and the error lists *all* failed parties with their
/// structured failure (kind, peer, phase, elapsed).
pub fn execute(
    scenario: &Scenario,
    algo: Algo,
    skip_prediction: bool,
) -> Result<Execution, String> {
    // Re-check invariants: callers may hand in programmatically built
    // scenarios (e.g. sweep points) that never went through parsing.
    let (train_set, test_set, params) = prepare(scenario, algo)?;
    let m = scenario.parties;
    let train_part = partition_vertically(&train_set, m, 0);
    let test_part = partition_vertically(&test_set, m, 0);
    let model_spec = scenario.model.clone();
    let plan = scenario.fault_plan()?;
    if plan.has_kill() {
        return Err(
            "faults.plan: kill_party needs the process-per-party backend \
             (`pivot party --supervise`) — the in-process runner cannot SIGKILL \
             and relaunch one of its own threads"
                .into(),
        );
    }
    let net = scenario.net_config();
    let endpoints = if plan.is_empty() {
        Network::with_config(m, net).into_endpoints()
    } else {
        faulty_network(m, net, &plan)
    };

    let start = Instant::now();
    let results = try_run_parties_on(endpoints, |ep| {
        let view = train_part.views[ep.id()].clone();
        let test_view = &test_part.views[ep.id()];
        let checkpoint = CheckpointInstall::for_party(scenario, ep.id());
        run_party_protocol(
            &ep,
            view,
            test_view,
            &params,
            &model_spec,
            algo,
            skip_prediction,
            checkpoint,
        )
    });
    let wall_s = start.elapsed().as_secs_f64();

    let failures: Vec<String> = results
        .iter()
        .filter_map(|r| r.as_ref().err())
        .map(|e| e.to_string())
        .collect();
    if !failures.is_empty() {
        return Err(format!(
            "{} of {m} parties failed: {}",
            failures.len(),
            failures.join("; ")
        ));
    }
    let outcomes: Vec<PartyOutcome> = results.into_iter().map(|r| r.unwrap()).collect();

    // Drain the process-global runtime sink (worker gauges, background
    // refill spans). Empty when tracing is off.
    let runtime = pivot_trace::take_runtime();
    let runtime_trace = (!runtime.is_empty()).then_some(runtime);

    let task = train_set.task();
    let metric = compute_metric(task, &outcomes[0].predictions, test_set.labels());
    let metric_name = metric_name_for(task);

    Ok(Execution {
        algo,
        wall_s,
        train_samples: train_set.num_samples(),
        test_samples: test_set.num_samples(),
        features: train_set.num_features(),
        task,
        parties: outcomes,
        metric,
        metric_name,
        runtime_trace,
    })
}

pub(crate) fn metric_name_for(task: Task) -> &'static str {
    match task {
        Task::Classification { .. } => "accuracy",
        Task::Regression => "mse",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario(tag: &str, extra: &str) -> Scenario {
        let text = format!(
            "seed = 11\nparties = 2\n[data]\nkind = \"synthetic-classification\"\n\
             samples = 40\nfeatures_per_party = 2\nclasses = 2\n[params]\n\
             max_depth = 2\nmax_splits = 3\nkeysize = 128\n{extra}"
        );
        let tmp =
            std::env::temp_dir().join(format!("pivot-cli-test-{}-{tag}.toml", std::process::id()));
        std::fs::write(&tmp, text).unwrap();
        let s = Scenario::load(&tmp).unwrap();
        std::fs::remove_file(&tmp).ok();
        s
    }

    #[test]
    fn basic_execution_produces_metric_and_traffic() {
        let s = tiny_scenario("basic", "");
        let exec = execute(&s, Algo::PivotBasic, false).unwrap();
        assert_eq!(exec.parties.len(), 2);
        assert!(exec.test_samples > 0);
        let m = exec.metric.expect("test split exists");
        assert!((0.0..=1.0).contains(&m), "accuracy {m}");
        let p0 = &exec.parties[0];
        assert!(p0.train_bytes_sent > 0);
        assert!(p0.predict_bytes_sent > 0);
        assert!(p0.threshold_decryptions > 0);
        assert!(p0.internal_nodes >= 1);
        assert_eq!(p0.tree_depth, Some(p0.tree_depth.unwrap().min(2)));
        // All parties agree on the predictions.
        assert_eq!(exec.parties[0].predictions, exec.parties[1].predictions);
    }

    #[test]
    fn bench_mode_skips_prediction() {
        let s = tiny_scenario("benchmode", "");
        let exec = execute(&s, Algo::NpdDt, true).unwrap();
        assert!(exec.metric.is_none());
        assert_eq!(exec.parties[0].predict_bytes_sent, 0);
        assert!(exec.parties[0].train_bytes_sent > 0);
    }

    #[test]
    fn injected_drop_keeps_results_bit_identical() {
        let clean = execute(&tiny_scenario("dropclean", ""), Algo::PivotBasic, false).unwrap();
        let faulty = execute(
            &tiny_scenario(
                "dropfault",
                "[faults]\nplan = [\"drop_link 0-1 at_bytes=4096\"]\nseed = 5\n",
            ),
            Algo::PivotBasic,
            false,
        )
        .unwrap();
        // A transparently recovered drop changes nothing observable about
        // the protocol: same predictions, same metric, same traffic.
        assert_eq!(clean.parties[0].predictions, faulty.parties[0].predictions);
        assert_eq!(clean.metric, faulty.metric);
        assert_eq!(
            clean.parties[0].train_bytes_sent,
            faulty.parties[0].train_bytes_sent
        );
        // ...but the session-health counters show the recovery happened.
        let p0 = &faulty.parties[0];
        assert!(p0.faults_injected >= 1, "fault fired");
        assert!(p0.reconnects >= 1 && p0.replayed_frames >= 1, "recovered");
        assert_eq!(clean.parties[0].faults_injected, 0);
    }

    #[test]
    fn crash_party_fails_the_run_with_a_structured_error() {
        let s = tiny_scenario(
            "crashfault",
            "[faults]\nplan = [\"crash_party 1 at_round=1\"]\n\
             [network]\nrecv_timeout_s = 0.5\n",
        );
        let err = execute(&s, Algo::PivotBasic, false).unwrap_err();
        assert!(err.contains("parties failed"), "{err}");
        assert!(err.contains("injected_crash"), "{err}");
        assert!(err.contains("crash_party 1"), "{err}");
    }

    #[test]
    fn csv_with_fewer_features_than_parties_rejected() {
        let csv =
            std::env::temp_dir().join(format!("pivot-cli-test-{}-narrow.csv", std::process::id()));
        std::fs::write(&csv, "f0,label\n1.0,0\n2.0,1\n3.0,0\n4.0,1\n").unwrap();
        let mut s = tiny_scenario("narrowcsv", "");
        s.data.kind = crate::scenario::DataKind::Csv;
        s.data.path = Some(csv.to_string_lossy().into_owned());
        let err = execute(&s, Algo::PivotBasic, true).unwrap_err();
        std::fs::remove_file(&csv).ok();
        assert!(err.contains("features"), "{err}");
    }
}
