//! Scheduling parity: `scheduling = "pipelined"` must release the same
//! model, predictions, and test metric as `scheduling = "sequential"` —
//! while spending measurably fewer protocol rounds — for the basic,
//! enhanced(-PP), and GBDT pipelines at m = 3, both in-process and over
//! real loopback TCP processes.
//!
//! `scheduling = "sequential"` itself stays bit-identical to the
//! pre-scheduler transcript (covered by `batch_parity.rs` /
//! `comparison_parity.rs`); what this file pins down is that the
//! level-wise round compaction is a pure re-ordering of the same
//! protocol messages.

use pivot_bench::Algo;
use pivot_cli::json::Json;
use pivot_cli::runner::{execute, Execution};
use pivot_cli::scenario::Scenario;
use pivot_transport::tcp::loopback_peers;
use std::path::PathBuf;
use std::process::{Child, Command};

fn scenario(tag: &str, body: &str) -> Scenario {
    let path = std::env::temp_dir().join(format!(
        "pivot-scheduling-parity-{}-{tag}.toml",
        std::process::id()
    ));
    std::fs::write(&path, body).unwrap();
    let s = Scenario::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    s
}

fn run_pair(base: &str, tag: &str, algo: Algo) -> (Execution, Execution) {
    let seq = execute(
        &scenario(
            &format!("{tag}-seq"),
            &format!("{base}scheduling = \"sequential\"\n"),
        ),
        algo,
        false,
    )
    .unwrap();
    let pipe = execute(
        &scenario(
            &format!("{tag}-pipe"),
            &format!("{base}scheduling = \"pipelined\"\n"),
        ),
        algo,
        false,
    )
    .unwrap();
    (seq, pipe)
}

/// The pipelined run must release the same model and metric; the
/// transcript (round structure, staging bytes) legitimately differs.
fn assert_model_parity(seq: &Execution, pipe: &Execution) {
    assert_eq!(seq.metric, pipe.metric, "test metric");
    for (s, p) in seq.parties.iter().zip(&pipe.parties) {
        assert_eq!(
            s.predictions, p.predictions,
            "party {} predictions",
            s.party
        );
        assert_eq!(
            s.internal_nodes, p.internal_nodes,
            "party {} model",
            s.party
        );
        assert_eq!(s.tree_depth, p.tree_depth, "party {} depth", s.party);
    }
}

/// Training-phase rounds attributed to the gain pipeline (split
/// statistics → conversion → gain → argmax), from party 0's phase table.
/// Requires `trace = "phases"` in the scenario.
fn gain_rounds(exec: &Execution) -> u64 {
    let trace = exec.parties[0]
        .trace
        .as_ref()
        .expect("scenario must set trace = \"phases\"");
    pivot_trace::phase_table(trace)
        .iter()
        .filter(|row| row.phase == "gain")
        .map(|row| row.rounds)
        .sum()
}

fn assert_round_compaction(seq: &Execution, pipe: &Execution, min_gain_ratio: f64) {
    let (seq_total, pipe_total) = (seq.parties[0].mpc_rounds, pipe.parties[0].mpc_rounds);
    assert!(
        pipe_total < seq_total,
        "pipelined must lower total rounds ({pipe_total} vs {seq_total})"
    );
    let (seq_gain, pipe_gain) = (gain_rounds(seq), gain_rounds(pipe));
    assert!(
        seq_gain as f64 >= min_gain_ratio * pipe_gain as f64,
        "gain-phase rounds must drop >= {min_gain_ratio}x ({seq_gain} vs {pipe_gain})"
    );
}

#[test]
fn basic_pipelined_matches_sequential() {
    let base = "seed = 4242\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 36\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n\
         trace = \"phases\"\n";
    let (seq, pipe) = run_pair(base, "basic", Algo::PivotBasic);
    assert_model_parity(&seq, &pipe);
    assert_round_compaction(&seq, &pipe, 2.0);
}

#[test]
fn enhanced_pp_pipelined_matches_sequential() {
    // Enhanced-PP with an offline dealer pool: besides model parity and
    // the >=2x gain-phase compaction, the level-wide refill points must
    // keep the dealer-pool hit rate no worse than the sequential run's.
    // The pool only feeds the bounded-width comparison streams, so the
    // scenario runs with `comparison_bits = "auto"`. Depth 3 gives the
    // burst-sized barrier refills two warm levels to amortize the
    // level-1 cold start.
    let base = "seed = 99\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 30\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 3\nmax_splits = 3\nkeysize = 256\n\
         crypto_threads = 4\nrandomness_pool = 64\nparallel_decrypt = true\n\
         comparison_bits = \"auto\"\ndealer_pool = 256\ntrace = \"phases\"\n";
    let (seq, pipe) = run_pair(base, "enhanced", Algo::PivotEnhancedPp);
    assert_model_parity(&seq, &pipe);
    assert_round_compaction(&seq, &pipe, 2.0);
    let seq_rate = seq.parties[0].dealer_pool.hit_rate();
    let pipe_rate = pipe.parties[0].dealer_pool.hit_rate();
    let (seq_rate, pipe_rate) = (
        seq_rate.expect("dealer pool active"),
        pipe_rate.expect("dealer pool active"),
    );
    // Hit rates depend on background-worker timing, so under a loaded
    // test host the two runs can legitimately differ by a few percent.
    // The tolerance only needs to catch a real refill regression (the
    // fixed-target bug this pins collapsed the rate to ~0.04).
    assert!(
        pipe_rate >= seq_rate - 0.05,
        "pipelined dealer-pool hit rate regressed ({pipe_rate:.3} vs {seq_rate:.3})"
    );
}

#[test]
fn gbdt_pipelined_matches_sequential() {
    // Two boosting rounds of residual trees: the per-tree gain pipeline
    // compacts round-for-round like the plain basic protocol, and the
    // clamped secure softmax must not move any released probability.
    let base = "seed = 11\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 24\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         test_fraction = 0.2\n\
         [model]\nkind = \"gbdt\"\nrounds = 2\nlearning_rate = 0.5\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n\
         trace = \"phases\"\n";
    let (seq, pipe) = run_pair(base, "gbdt", Algo::PivotBasic);
    assert_model_parity(&seq, &pipe);
    assert_round_compaction(&seq, &pipe, 2.0);
}

// ---------------------------------------------------------------------
// TCP loopback: the pipelined scheduler must survive real process and
// socket boundaries — same coalesced frames, same released artifacts.
// ---------------------------------------------------------------------

fn pivot_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pivot")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pivot-sched-tcp-{}-{name}", std::process::id()))
}

fn spawn_party(scenario: &str, id: usize, peers: &[String], out: &str) -> Child {
    Command::new(pivot_bin())
        .args([
            "party",
            "--scenario",
            scenario,
            "--id",
            &id.to_string(),
            "--peers",
            &peers.join(","),
            "--out",
            out,
            "--quiet",
        ])
        .spawn()
        .expect("spawn pivot party")
}

fn run_train(scenario: &str, out: &str) {
    let result = Command::new(pivot_bin())
        .args(["train", "--scenario", scenario, "--out", out, "--quiet"])
        .output()
        .expect("spawn pivot train");
    assert!(
        result.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&result.stderr)
    );
}

#[test]
fn tcp_pipelined_parties_reproduce_in_process_run() {
    let m = 3;
    let scenario_path = temp_path("pipelined.toml");
    std::fs::write(
        &scenario_path,
        r#"
name = "tcp pipelined parity"
seed = 4242
parties = 3
algorithm = "pivot-basic"

[data]
kind = "synthetic-classification"
samples = 36
features_per_party = 2
classes = 2
flip_y = 0.05
test_fraction = 0.2

[params]
max_depth = 2
max_splits = 3
keysize = 128
scheduling = "pipelined"
"#,
    )
    .unwrap();
    let scenario_str = scenario_path.to_str().unwrap();

    let train_out = temp_path("pipelined-train.json");
    run_train(scenario_str, train_out.to_str().unwrap());
    let in_process = Json::parse(&std::fs::read_to_string(&train_out).unwrap()).unwrap();
    let expect_metric = in_process.path("evaluation.value").unwrap().as_f64();
    let expect_nodes = in_process.path("model.internal_nodes").unwrap().as_u64();
    let per_party = in_process
        .path("network.per_party")
        .unwrap()
        .as_array()
        .unwrap();

    let peers = loopback_peers(m);
    let party_outs: Vec<PathBuf> = (0..m)
        .map(|i| temp_path(&format!("pipelined-party{i}.json")))
        .collect();
    let children: Vec<Child> = (0..m)
        .map(|i| spawn_party(scenario_str, i, &peers, party_outs[i].to_str().unwrap()))
        .collect();
    for (i, child) in children.into_iter().enumerate() {
        let status = child.wait_with_output().expect("party process");
        assert!(status.status.success(), "party {i} failed");
    }

    let mut all_predictions = Vec::new();
    for (i, out) in party_outs.iter().enumerate() {
        let report = Json::parse(&std::fs::read_to_string(out).unwrap())
            .unwrap_or_else(|e| panic!("party {i} report unparseable: {e}"));
        assert_eq!(
            report.path("evaluation.value").unwrap().as_f64(),
            expect_metric,
            "party {i} metric"
        );
        assert_eq!(
            report.path("model.internal_nodes").unwrap().as_u64(),
            expect_nodes,
            "party {i} model"
        );
        // Coalescing is transport-internal: the payload byte accounting
        // over TCP must equal the in-process backend's, field for field.
        for phase in ["train", "predict"] {
            for field in ["bytes_sent", "bytes_received"] {
                assert_eq!(
                    report.path(&format!("network.{phase}.{field}")).unwrap(),
                    per_party[i].path(&format!("{phase}.{field}")).unwrap(),
                    "party {i} {phase}.{field}"
                );
            }
        }
        all_predictions.push(report.get("predictions").unwrap().clone());
        std::fs::remove_file(out).ok();
    }
    for (i, preds) in all_predictions.iter().enumerate() {
        assert_eq!(preds, &all_predictions[0], "party {i} predictions differ");
        assert!(!preds.as_array().unwrap().is_empty());
    }
    std::fs::remove_file(&train_out).ok();
    std::fs::remove_file(&scenario_path).ok();
}
