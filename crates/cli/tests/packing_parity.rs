//! End-to-end packed-vs-unpacked training parity: `packing = "auto"` must
//! train the same tree (argmax parity) and produce the same test metric as
//! `packing = "off"` — while pooling measurably fewer split-statistics
//! ciphertexts — for both protocols at m = 3.
//!
//! `packing = "off"` itself is covered by `batch_parity.rs`: it stays
//! bit-identical to the pre-packing transcript.

use pivot_bench::Algo;
use pivot_cli::runner::{execute, Execution};
use pivot_cli::scenario::Scenario;

fn scenario(tag: &str, body: &str) -> Scenario {
    let path = std::env::temp_dir().join(format!(
        "pivot-packing-parity-{}-{tag}.toml",
        std::process::id()
    ));
    std::fs::write(&path, body).unwrap();
    let s = Scenario::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    s
}

/// The packed run must release the same model and metric; the transcript
/// (bytes, ciphertext counts) legitimately differs.
fn assert_model_parity(off: &Execution, auto: &Execution) {
    assert_eq!(off.metric, auto.metric, "test metric");
    for (o, a) in off.parties.iter().zip(&auto.parties) {
        assert_eq!(
            o.predictions, a.predictions,
            "party {} predictions",
            o.party
        );
        assert_eq!(
            o.internal_nodes, a.internal_nodes,
            "party {} model",
            o.party
        );
        assert_eq!(o.tree_depth, a.tree_depth, "party {} depth", o.party);
    }
    let o = &off.parties[0];
    let a = &auto.parties[0];
    assert!(
        a.split_stat_ciphertexts < o.split_stat_ciphertexts,
        "packing must pool fewer split-stat ciphertexts ({} vs {})",
        a.split_stat_ciphertexts,
        o.split_stat_ciphertexts
    );
    assert_eq!(o.packed, (0, 0, 0), "off run emits no packed ciphertexts");
    let (cts, values, capacity) = a.packed;
    assert!(cts > 0 && values > cts, "packed counters populated");
    assert!(values <= capacity, "occupancy is a fraction");
    assert!(
        a.stats_bytes_sent < o.stats_bytes_sent,
        "packing must shrink split-statistics traffic ({} vs {})",
        a.stats_bytes_sent,
        o.stats_bytes_sent
    );
}

fn run_pair(base: &str, tag: &str, algo: Algo) -> (Execution, Execution) {
    let off = execute(
        &scenario(&format!("{tag}-off"), &format!("{base}packing = \"off\"\n")),
        algo,
        false,
    )
    .unwrap();
    let auto = execute(
        &scenario(
            &format!("{tag}-auto"),
            &format!("{base}packing = \"auto\"\n"),
        ),
        algo,
        false,
    )
    .unwrap();
    (off, auto)
}

#[test]
fn basic_packed_training_matches_unpacked() {
    // keysize 128 admits two 63-bit slots (m = 3): the stride of 3 spans
    // two chunks, covering the chunked-stride path end to end.
    let base = "seed = 4242\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 36\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n";
    let (off, auto) = run_pair(base, "basic", Algo::PivotBasic);
    assert_model_parity(&off, &auto);
}

#[test]
fn enhanced_packed_training_matches_unpacked() {
    // Enhanced at keysize 256: the Eqn-10 slack widens the audited slot to
    // ~68 bits, leaving 3 slots — stride 3 packs into one ciphertext per
    // split. flip_y keeps internal nodes impure so every argmax has a
    // margin over the ±1-ulp truncation noise (see the core parity tests).
    let base = "seed = 99\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 30\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 256\n\
         crypto_threads = 4\nrandomness_pool = 64\nparallel_decrypt = true\n";
    let (off, auto) = run_pair(base, "enhanced", Algo::PivotEnhanced);
    assert_model_parity(&off, &auto);
}

#[test]
fn explicit_slot_count_is_honoured() {
    // packing = 2 forces two slots even when auto would pick more; the
    // model still matches and the occupancy echoes the narrower layout.
    let base = "seed = 7\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 30\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 256\n";
    let off = execute(
        &scenario("slots-off", &format!("{base}packing = \"off\"\n")),
        Algo::PivotBasic,
        false,
    )
    .unwrap();
    let two = execute(
        &scenario("slots-two", &format!("{base}packing = 2\n")),
        Algo::PivotBasic,
        false,
    )
    .unwrap();
    assert_model_parity(&off, &two);
    // A slot count beyond the audited capacity must fail fast.
    let s = scenario("slots-nine", &format!("{base}packing = 9\n"));
    let err = execute(&s, Algo::PivotBasic, false).unwrap_err();
    assert!(err.contains("invalid parameters"), "{err}");
}
