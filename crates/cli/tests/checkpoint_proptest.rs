//! Property tests for the durable checkpoint codec: hostile bytes —
//! truncated, bit-flipped, version-skewed — must surface a typed
//! [`CheckpointError`], never a panic; and every well-formed
//! `CheckpointFile` round-trips bit for bit. A deterministic tail pins
//! the same round-trip on *real* checkpoint files written by all three
//! trainers (basic, enhanced-PP, and the GBDT ensemble).

use pivot_bench::Algo;
use pivot_cli::checkpoint::{
    decode_checkpoint, encode_checkpoint, fnv1a64, CheckpointError, CheckpointFile, CKPT_VERSION,
};
use pivot_cli::runner::execute;
use pivot_cli::scenario::Scenario;
use pivot_core::checkpoint::StateCursors;
use proptest::prelude::*;

/// Assemble a checkpoint file from independently generated parts (the
/// offline proptest shim has no tuple strategies).
fn build_file(
    party: u64,
    ordinal: u64,
    level: u64,
    fingerprint: u64,
    cursors: [u64; 6],
    peer_frames: Vec<Vec<Vec<u8>>>,
) -> CheckpointFile {
    let [mpc_rounds, secure_mults, secure_comparisons, nonces_drawn, dealer_rows, bytes_sent] =
        cursors;
    CheckpointFile {
        party,
        parties: peer_frames.len() as u64 + 1,
        ordinal,
        level,
        fingerprint,
        cursors: StateCursors {
            mpc_rounds,
            secure_mults,
            secure_comparisons,
            nonces_drawn,
            dealer_rows,
            bytes_sent,
        },
        peers: peer_frames
            .into_iter()
            .enumerate()
            .map(|(i, frames)| (i as u64, frames))
            .collect(),
    }
}

fn arb_cursors() -> impl Strategy<Value = [u64; 6]> {
    proptest::collection::vec(any::<u64>(), 6..7).prop_map(|v| {
        let mut a = [0u64; 6];
        a.copy_from_slice(&v);
        a
    })
}

fn arb_peer_frames() -> impl Strategy<Value = Vec<Vec<Vec<u8>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 0..6),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every well-formed checkpoint file round-trips bit for bit: the
    /// decoded struct re-encodes to the identical byte string.
    #[test]
    fn checkpoint_files_round_trip(
        party in 0u64..4,
        ordinal in 1u64..64,
        level in 0u64..16,
        fingerprint in any::<u64>(),
        cursors in arb_cursors(),
        peer_frames in arb_peer_frames(),
    ) {
        let file = build_file(party, ordinal, level, fingerprint, cursors, peer_frames);
        let bytes = encode_checkpoint(&file);
        let back = decode_checkpoint(&bytes).expect("valid file decodes");
        prop_assert_eq!(&back, &file);
        prop_assert_eq!(encode_checkpoint(&back), bytes);
    }

    /// The decoder is total: any byte string either decodes or returns a
    /// typed [`CheckpointError`] — it never panics.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_checkpoint(&bytes);
    }

    /// Strictly truncating a valid checkpoint always yields a typed
    /// error — a torn write can never silently decode as an older or
    /// shorter checkpoint.
    #[test]
    fn truncated_checkpoints_are_rejected(
        cursors in arb_cursors(),
        peer_frames in arb_peer_frames(),
        cut in any::<u16>(),
    ) {
        let file = build_file(1, 3, 2, 77, cursors, peer_frames);
        let bytes = encode_checkpoint(&file);
        let cut = cut as usize % bytes.len();
        prop_assert!(decode_checkpoint(&bytes[..cut]).is_err());
    }

    /// Flipping any bit anywhere in a valid checkpoint is caught: the
    /// whole-file checksum covers magic, version, and body, and the
    /// checksum field itself cannot be flipped consistently.
    #[test]
    fn corrupted_checkpoints_are_rejected(
        cursors in arb_cursors(),
        peer_frames in arb_peer_frames(),
        flip_at in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let file = build_file(0, 5, 1, 123, cursors, peer_frames);
        let mut bytes = encode_checkpoint(&file);
        let i = flip_at as usize % bytes.len();
        bytes[i] ^= xor;
        prop_assert!(decode_checkpoint(&bytes).is_err());
    }

    /// A checkpoint from a different format version is rejected as
    /// [`CheckpointError::VersionSkew`] even when its checksum is
    /// internally consistent — skew is diagnosed, not mistaken for
    /// corruption.
    #[test]
    fn version_skew_is_typed(
        cursors in arb_cursors(),
        peer_frames in arb_peer_frames(),
        skew in 1u32..1000,
    ) {
        let file = build_file(2, 9, 4, 55, cursors, peer_frames);
        let mut bytes = encode_checkpoint(&file);
        let found = CKPT_VERSION.wrapping_add(skew);
        bytes[4..8].copy_from_slice(&found.to_le_bytes());
        // Recompute the trailing checksum so only the version disagrees.
        let body_end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        match decode_checkpoint(&bytes) {
            Err(CheckpointError::VersionSkew { found: f, expected }) => {
                prop_assert_eq!(f, found);
                prop_assert_eq!(expected, CKPT_VERSION);
            }
            other => prop_assert!(false, "expected VersionSkew, got {:?}", other),
        }
    }
}

/// Real checkpoint files from all three trainers round-trip bit for bit
/// through the codec and carry non-trivial state cursors.
#[test]
fn trainer_checkpoints_round_trip() {
    let trainers: [(&str, Algo, &str); 3] = [
        (
            "basic",
            Algo::PivotBasic,
            "[data]\nkind = \"synthetic-classification\"\nsamples = 32\n\
             features_per_party = 2\nclasses = 2\ntest_fraction = 0.25\n",
        ),
        (
            "enhanced",
            Algo::PivotEnhancedPp,
            "[data]\nkind = \"synthetic-classification\"\nsamples = 32\n\
             features_per_party = 2\nclasses = 2\ntest_fraction = 0.25\n",
        ),
        (
            "gbdt",
            Algo::PivotEnhancedPp,
            "[data]\nkind = \"synthetic-regression\"\nsamples = 32\n\
             features_per_party = 2\ntest_fraction = 0.25\n\
             [model]\nkind = \"gbdt\"\nrounds = 2\n",
        ),
    ];
    for (tag, algo, body) in trainers {
        let dir =
            std::env::temp_dir().join(format!("pivot-ckpt-prop-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let toml = format!(
            "name = \"ckpt round-trip {tag}\"\nseed = 99\nparties = 2\n{body}\
             [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n\
             scheduling = \"pipelined\"\n\
             [checkpoint]\nevery_levels = 1\ndir = \"{}\"\n",
            dir.display()
        );
        let path =
            std::env::temp_dir().join(format!("pivot-ckpt-prop-{}-{tag}.toml", std::process::id()));
        std::fs::write(&path, &toml).unwrap();
        let scenario = Scenario::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        execute(&scenario, algo, true).unwrap_or_else(|e| panic!("{tag} run failed: {e}"));

        let mut saw = 0;
        for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{tag} dir: {e}")) {
            let p = entry.unwrap().path();
            let bytes = std::fs::read(&p).unwrap();
            let file = decode_checkpoint(&bytes)
                .unwrap_or_else(|e| panic!("{tag} {} undecodable: {e}", p.display()));
            assert_eq!(encode_checkpoint(&file), bytes, "{tag} round-trip");
            assert!(file.cursors.mpc_rounds > 0, "{tag} cursors are live");
            assert!(
                file.peers.iter().any(|(_, frames)| !frames.is_empty()),
                "{tag} transcript captured"
            );
            saw += 1;
        }
        assert!(saw >= 2, "{tag} wrote checkpoints for both parties: {saw}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
