//! Distributed-mode integration tests: spawn `m` real `pivot party`
//! processes on loopback TCP and assert the run reproduces the
//! in-process `pivot train` report — same model shape, same metric, same
//! per-party byte counts, bit for bit.

use pivot_cli::json::Json;
use pivot_transport::tcp::loopback_peers;
use std::path::PathBuf;
use std::process::{Child, Command};

fn pivot_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pivot")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pivot-tcp-it-{}-{name}", std::process::id()))
}

fn spawn_party(scenario: &str, id: usize, peers: &[String], out: &str) -> Child {
    Command::new(pivot_bin())
        .args([
            "party",
            "--scenario",
            scenario,
            "--id",
            &id.to_string(),
            "--peers",
            &peers.join(","),
            "--out",
            out,
            "--quiet",
        ])
        .spawn()
        .expect("spawn pivot party")
}

fn run_train(scenario: &str, out: &str) {
    let result = Command::new(pivot_bin())
        .args(["train", "--scenario", scenario, "--out", out, "--quiet"])
        .output()
        .expect("spawn pivot train");
    assert!(
        result.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&result.stderr)
    );
}

/// Train `scenario` once in-process and once as `m` TCP processes, then
/// assert the per-party reports agree with the in-process report.
fn assert_tcp_matches_in_process(tag: &str, scenario_path: &str, m: usize) {
    let train_out = temp_path(&format!("{tag}-train.json"));
    run_train(scenario_path, train_out.to_str().unwrap());
    let in_process = Json::parse(&std::fs::read_to_string(&train_out).unwrap()).unwrap();

    let peers = loopback_peers(m);
    let party_outs: Vec<PathBuf> = (0..m)
        .map(|i| temp_path(&format!("{tag}-party{i}.json")))
        .collect();
    let children: Vec<Child> = (0..m)
        .map(|i| spawn_party(scenario_path, i, &peers, party_outs[i].to_str().unwrap()))
        .collect();
    for (i, child) in children.into_iter().enumerate() {
        let status = child.wait_with_output().expect("party process");
        assert!(status.status.success(), "party {i} failed");
    }

    let per_party = in_process
        .path("network.per_party")
        .unwrap()
        .as_array()
        .unwrap();
    let expect_metric = in_process.path("evaluation.value").unwrap().as_f64();
    let expect_nodes = in_process.path("model.internal_nodes").unwrap().as_u64();
    let mut all_predictions = Vec::new();
    for (i, out) in party_outs.iter().enumerate() {
        let report = Json::parse(&std::fs::read_to_string(out).unwrap())
            .unwrap_or_else(|e| panic!("party {i} report unparseable: {e}"));
        assert_eq!(report.get("command").unwrap().as_str(), Some("party"));
        assert_eq!(report.get("party").unwrap().as_u64(), Some(i as u64));
        // Metric and model shape: identical to the in-process run.
        assert_eq!(
            report.path("evaluation.value").unwrap().as_f64(),
            expect_metric,
            "party {i} metric"
        );
        assert_eq!(
            report.path("model.internal_nodes").unwrap().as_u64(),
            expect_nodes,
            "party {i} model"
        );
        // Per-party traffic: byte counts over TCP must equal the
        // in-process backend's, field for field (payload accounting is
        // backend-independent; framing is transport-internal).
        for phase in ["train", "predict"] {
            for field in ["bytes_sent", "bytes_received"] {
                assert_eq!(
                    report.path(&format!("network.{phase}.{field}")).unwrap(),
                    per_party[i].path(&format!("{phase}.{field}")).unwrap(),
                    "party {i} {phase}.{field}"
                );
            }
        }
        all_predictions.push(report.get("predictions").unwrap().clone());
        std::fs::remove_file(out).ok();
    }
    // Every process agrees on the jointly computed predictions.
    for (i, preds) in all_predictions.iter().enumerate() {
        assert_eq!(preds, &all_predictions[0], "party {i} predictions differ");
        assert!(!preds.as_array().unwrap().is_empty());
    }
    std::fs::remove_file(&train_out).ok();
}

#[test]
fn tcp_parties_reproduce_in_process_basic_run() {
    // The shipped basic-protocol example scenario, all 3 parties as
    // separate OS processes.
    let scenario = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/classification.toml");
    assert_tcp_matches_in_process("basic", scenario.to_str().unwrap(), 3);
}

#[test]
fn tcp_parties_reproduce_in_process_enhanced_run() {
    // Enhanced protocol (§5): concealed splits/labels exercise the
    // TPHE↔MPC conversion traffic over real sockets.
    let scenario = temp_path("enhanced.toml");
    std::fs::write(
        &scenario,
        r#"
name = "tcp enhanced parity"
seed = 31
parties = 2
algorithm = "pivot-enhanced"

[data]
kind = "synthetic-classification"
samples = 40
features_per_party = 2
classes = 2
test_fraction = 0.2

[params]
max_depth = 2
max_splits = 3
keysize = 192
"#,
    )
    .unwrap();
    assert_tcp_matches_in_process("enhanced", scenario.to_str().unwrap(), 2);
    std::fs::remove_file(&scenario).ok();
}

#[test]
fn party_rejects_bad_invocations() {
    let scenario = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/classification.toml");
    let scenario = scenario.to_str().unwrap();

    // Wrong peer count for the scenario's party count.
    let r = Command::new(pivot_bin())
        .args([
            "party",
            "--scenario",
            scenario,
            "--id",
            "0",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2",
        ])
        .output()
        .unwrap();
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("3 parties"));

    // Party id out of range.
    let r = Command::new(pivot_bin())
        .args([
            "party",
            "--scenario",
            scenario,
            "--id",
            "7",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2,127.0.0.1:3",
        ])
        .output()
        .unwrap();
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("out of range"));

    // Missing --peers.
    let r = Command::new(pivot_bin())
        .args(["party", "--scenario", scenario, "--id", "0"])
        .output()
        .unwrap();
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("--peers"));
}
