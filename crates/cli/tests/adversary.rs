//! Malicious-model integration tests: the verification plane end to end.
//!
//! Three contracts are pinned here:
//!
//! 1. **Honest runs are free of false positives** — the spot-checked
//!    baseline scenario trains to the *same model and metric* as its
//!    verification-off twin (proofs ride alongside the transcript, they
//!    never perturb it), reports `proofs_rejected = 0`, and checks about
//!    the configured fraction of generated proofs.
//! 2. **Tampering is attributed in-process** — the threaded runner's
//!    error names the accused party and the phase where its published
//!    ciphertext stopped matching its proof.
//! 3. **Tampering is attributed over TCP** — real `pivot party`
//!    processes all die with exit code 12 and a structured error report
//!    naming the accused cheater (not the observer that happened to
//!    catch it).

use pivot_bench::Algo;
use pivot_cli::json::Json;
use pivot_cli::runner::execute;
use pivot_cli::scenario::Scenario;
use pivot_transport::tcp::loopback_peers;
use std::path::PathBuf;
use std::process::{Child, Command};

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pivot-adv-it-{}-{name}", std::process::id()))
}

fn baseline_scenario_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/verification_baseline.toml")
}

/// The baseline scenario with `[params] verification` overridden and an
/// optional `[adversary]` section appended, written to a temp file.
fn variant(name: &str, verification: &str, tamper: Option<&str>) -> PathBuf {
    let text = std::fs::read_to_string(baseline_scenario_path()).unwrap();
    let mut text = text.replace(
        "verification = \"spot(0.25)\"",
        &format!("verification = \"{verification}\""),
    );
    if let Some(tamper) = tamper {
        text.push_str(&format!("\n[adversary]\ntamper = \"{tamper}\"\n"));
    }
    let path = temp_path(&format!("{name}.toml"));
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn honest_spot_checked_run_matches_verification_off() {
    let spot = Scenario::load(&baseline_scenario_path()).unwrap();
    let off_path = variant("honest-off", "off", None);
    let off = Scenario::load(&off_path).unwrap();

    let checked = execute(&spot, Algo::PivotBasic, false).unwrap();
    let plain = execute(&off, Algo::PivotBasic, false).unwrap();

    // Identical model and predictions: verification is a pure overlay.
    assert_eq!(checked.metric, plain.metric);
    assert_eq!(
        checked.parties[0].internal_nodes,
        plain.parties[0].internal_nodes
    );
    assert_eq!(checked.parties[0].predictions, plain.parties[0].predictions);

    for (i, p) in checked.parties.iter().enumerate() {
        let v = &p.verification;
        assert!(v.proofs_generated > 0, "party {i} generated no proofs");
        assert_eq!(v.proofs_rejected, 0, "party {i} false positive");
        assert!(v.proofs_verified > 0, "party {i} checked nothing");
        // Spot(0.25): the seeded selection checks roughly a quarter of
        // the commits every observer sees. Wide tolerance — the sample
        // is small — but 25% must be distinguishable from 0% and 100%.
        let seen = (v.proofs_verified + v.proofs_skipped) as f64;
        let frac = v.proofs_verified as f64 / seen;
        assert!(
            (0.05..=0.60).contains(&frac),
            "party {i} verified fraction {frac}"
        );
    }
    // Verification-off runs generate nothing.
    let v = &plain.parties[0].verification;
    assert_eq!(v.proofs_generated + v.proofs_verified + v.proofs_skipped, 0);

    std::fs::remove_file(&off_path).ok();
}

#[test]
fn threaded_runner_names_the_tampering_party() {
    let path = variant(
        "tamper-threaded",
        "spot(1.0)",
        Some("party 1 phase=stats index=0"),
    );
    let s = Scenario::load(&path).unwrap();
    let err = execute(&s, Algo::PivotBasic, true).unwrap_err();
    assert!(
        err.contains("party 1 proof rejected"),
        "error does not accuse party 1: {err}"
    );
    assert!(err.contains("phase stats"), "error names no phase: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tcp_parties_exit_12_and_report_the_accused() {
    let path = variant(
        "tamper-tcp",
        "spot(1.0)",
        Some("party 1 phase=stats index=0"),
    );
    let m = 3;
    let peers = loopback_peers(m);
    let outs: Vec<PathBuf> = (0..m)
        .map(|i| temp_path(&format!("tamper-party{i}.json")))
        .collect();
    let children: Vec<Child> = (0..m)
        .map(|i| {
            Command::new(env!("CARGO_BIN_EXE_pivot"))
                .args([
                    "party",
                    "--scenario",
                    path.to_str().unwrap(),
                    "--id",
                    &i.to_string(),
                    "--peers",
                    &peers.join(","),
                    "--out",
                    outs[i].to_str().unwrap(),
                    "--quiet",
                ])
                .spawn()
                .expect("spawn pivot party")
        })
        .collect();

    // Every party receives the tampered commit bundle before any check
    // runs, so all of them reject locally and exit 12 — including the
    // tamperer, whose own published ciphertext fails its proof.
    for (i, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("party process");
        assert_eq!(
            out.status.code(),
            Some(12),
            "party {i}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    for (i, out) in outs.iter().enumerate() {
        let report = Json::parse(&std::fs::read_to_string(out).unwrap())
            .unwrap_or_else(|e| panic!("party {i} report unparseable: {e}"));
        assert_eq!(report.get("status").unwrap().as_str(), Some("failed"));
        assert_eq!(
            report.path("error.kind").unwrap().as_str(),
            Some("proof_rejected")
        );
        // Attribution: the *accused* is the tamperer, whoever observed it.
        assert_eq!(report.path("error.accused").unwrap().as_u64(), Some(1));
        assert_eq!(
            report.path("error.observer").unwrap().as_u64(),
            Some(i as u64)
        );
        assert_eq!(report.path("error.phase").unwrap().as_str(), Some("stats"));
        assert!(report.path("error.proof_kind").unwrap().as_str().is_some());
        // The scenario echo records what was injected, for auditability.
        assert_eq!(
            report.path("scenario.adversary.tamper").unwrap().as_str(),
            Some("party 1 phase=stats index=0")
        );
        std::fs::remove_file(out).ok();
    }
    std::fs::remove_file(&path).ok();
}
