//! Chaos integration tests: real `pivot party` processes on loopback
//! TCP with a deterministic `[faults]` plan.
//!
//! Two contracts are pinned here:
//!
//! 1. **Transparent recovery** — a mid-training link drop is invisible
//!    to the protocol: the distributed run's model, metric, predictions,
//!    and payload byte counts are bit-identical to a *fault-free*
//!    in-process run of the same scenario, and the recovery shows up
//!    only in the report's `network.session` counters.
//! 2. **Failures are data** — a `crash_party` fault kills one process
//!    with exit code 11 and a structured error report; every surviving
//!    party exits 10 (not 0, not a panic) with its own structured report
//!    naming the failure kind, peer, phase, and elapsed wait.

use pivot_cli::json::Json;
use pivot_transport::tcp::loopback_peers;
use std::path::PathBuf;
use std::process::{Child, Command};

fn pivot_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pivot")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pivot-fault-it-{}-{name}", std::process::id()))
}

fn spawn_party(scenario: &str, id: usize, peers: &[String], out: &str) -> Child {
    Command::new(pivot_bin())
        .args([
            "party",
            "--scenario",
            scenario,
            "--id",
            &id.to_string(),
            "--peers",
            &peers.join(","),
            "--out",
            out,
            "--quiet",
        ])
        .spawn()
        .expect("spawn pivot party")
}

fn run_train(scenario: &str, out: &str) {
    let result = Command::new(pivot_bin())
        .args(["train", "--scenario", scenario, "--out", out, "--quiet"])
        .output()
        .expect("spawn pivot train");
    assert!(
        result.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&result.stderr)
    );
}

#[test]
fn injected_tcp_drop_recovers_bit_identically() {
    let chaos = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios/fault_baseline.toml");
    let chaos_text = std::fs::read_to_string(&chaos).unwrap();
    let m = 3;

    // Fault-free twin: the same scenario with the [faults] section
    // stripped, run on the in-process backend. This is the strong form
    // of the parity gate — faulty TCP against fault-free threads.
    let clean = temp_path("clean.toml");
    // Split at the section header itself (line start), not at the first
    // mention of "[faults]" — the scenario's comments use that string.
    let clean_text = chaos_text
        .split("\n[faults]")
        .next()
        .expect("scenario has a [faults] section");
    assert!(clean_text.contains("[network]"), "strip kept the config");
    std::fs::write(&clean, clean_text).unwrap();
    let train_out = temp_path("clean-train.json");
    run_train(clean.to_str().unwrap(), train_out.to_str().unwrap());
    let baseline = Json::parse(&std::fs::read_to_string(&train_out).unwrap()).unwrap();
    let per_party = baseline
        .path("network.per_party")
        .unwrap()
        .as_array()
        .unwrap();

    let peers = loopback_peers(m);
    let party_outs: Vec<PathBuf> = (0..m)
        .map(|i| temp_path(&format!("chaos-party{i}.json")))
        .collect();
    let children: Vec<Child> = (0..m)
        .map(|i| {
            spawn_party(
                chaos.to_str().unwrap(),
                i,
                &peers,
                party_outs[i].to_str().unwrap(),
            )
        })
        .collect();
    for (i, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("party process");
        assert!(
            out.status.success(),
            "party {i} failed despite recoverable fault: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let mut all_predictions = Vec::new();
    for (i, out) in party_outs.iter().enumerate() {
        let report = Json::parse(&std::fs::read_to_string(out).unwrap())
            .unwrap_or_else(|e| panic!("party {i} report unparseable: {e}"));
        // Model, metric, and traffic: bit-identical to the fault-free run.
        assert_eq!(
            report.path("evaluation.value").unwrap().as_f64(),
            baseline.path("evaluation.value").unwrap().as_f64(),
            "party {i} metric"
        );
        assert_eq!(
            report.path("model.internal_nodes").unwrap().as_u64(),
            baseline.path("model.internal_nodes").unwrap().as_u64(),
            "party {i} model"
        );
        for phase in ["train", "predict"] {
            for field in ["bytes_sent", "bytes_received"] {
                assert_eq!(
                    report.path(&format!("network.{phase}.{field}")).unwrap(),
                    per_party[i].path(&format!("{phase}.{field}")).unwrap(),
                    "party {i} {phase}.{field}"
                );
            }
        }
        all_predictions.push(report.get("predictions").unwrap().clone());

        // The recovery is visible in the session counters — and only on
        // party 0, the lower id of the dropped link (it injects, severs,
        // and redials; the protocol transcript stays symmetric).
        let session = |field: &str| {
            report
                .path(&format!("network.session.{field}"))
                .unwrap()
                .as_u64()
                .unwrap()
        };
        if i == 0 {
            assert!(session("faults_injected") >= 1, "party 0 fired the fault");
            assert!(session("reconnects") >= 1, "party 0 resumed the session");
            assert!(session("replayed_frames") >= 1, "party 0 replayed frames");
        }
        std::fs::remove_file(out).ok();
    }
    for (i, preds) in all_predictions.iter().enumerate() {
        assert_eq!(preds, &all_predictions[0], "party {i} predictions differ");
        assert!(!preds.as_array().unwrap().is_empty());
    }
    std::fs::remove_file(&train_out).ok();
    std::fs::remove_file(&clean).ok();
}

#[test]
fn crash_party_kills_the_run_with_structured_reports() {
    let scenario = temp_path("crash.toml");
    std::fs::write(
        &scenario,
        r#"
name = "chaos crash"
seed = 13
parties = 2
algorithm = "pivot-basic"

[data]
kind = "synthetic-classification"
samples = 40
features_per_party = 2
classes = 2
test_fraction = 0.2

[params]
max_depth = 2
max_splits = 3
keysize = 128

[network]
# Tight liveness budgets so the surviving party fails fast.
recv_timeout_s = 2
connect_timeout_s = 2

[faults]
plan = ["crash_party 1 at_bytes=1"]
"#,
    )
    .unwrap();

    let peers = loopback_peers(2);
    let outs: Vec<PathBuf> = (0..2)
        .map(|i| temp_path(&format!("crash-party{i}.json")))
        .collect();
    let children: Vec<Child> = (0..2)
        .map(|i| {
            spawn_party(
                scenario.to_str().unwrap(),
                i,
                &peers,
                outs[i].to_str().unwrap(),
            )
        })
        .collect();
    let statuses: Vec<_> = children
        .into_iter()
        .map(|c| c.wait_with_output().expect("party process"))
        .collect();

    // The crashed party exits 11 (its own injected crash); the survivor
    // exits 10 (transport failure). Nobody exits 0, nobody panics.
    assert_eq!(statuses[1].status.code(), Some(11), "crashed party");
    assert_eq!(statuses[0].status.code(), Some(10), "surviving party");

    // Both wrote structured error reports instead of result reports.
    let crashed = Json::parse(&std::fs::read_to_string(&outs[1]).unwrap()).unwrap();
    assert_eq!(crashed.get("status").unwrap().as_str(), Some("failed"));
    assert_eq!(
        crashed.path("error.kind").unwrap().as_str(),
        Some("injected_crash")
    );
    assert_eq!(crashed.path("error.party").unwrap().as_u64(), Some(1));
    assert!(crashed
        .path("error.detail")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("crash_party 1"));

    let survivor = Json::parse(&std::fs::read_to_string(&outs[0]).unwrap()).unwrap();
    assert_eq!(survivor.get("status").unwrap().as_str(), Some("failed"));
    let kind = survivor.path("error.kind").unwrap().as_str().unwrap();
    assert!(
        kind == "timeout" || kind == "disconnected",
        "survivor kind {kind}"
    );
    assert_eq!(survivor.path("error.peer").unwrap().as_u64(), Some(1));
    assert!(survivor.path("error.phase").unwrap().as_str().is_some());
    assert!(survivor.path("error.elapsed_s").unwrap().as_f64().unwrap() > 0.0);
    // The scenario echo makes the liveness budget auditable from the
    // report alone.
    assert_eq!(
        survivor
            .path("scenario.network.connect_timeout_s")
            .unwrap()
            .as_f64(),
        Some(2.0)
    );

    for p in outs.iter().chain([&scenario]) {
        std::fs::remove_file(p).ok();
    }
}
