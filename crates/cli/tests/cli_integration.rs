//! End-to-end tests of the `pivot` binary: spawn the real executable on
//! tiny scenarios and validate the emitted JSON reports.

use pivot_cli::json::Json;
use std::path::PathBuf;
use std::process::{Command, Output};

fn pivot_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pivot")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pivot-cli-it-{}-{name}", std::process::id()))
}

fn run_pivot(args: &[&str]) -> Output {
    Command::new(pivot_bin())
        .args(args)
        .output()
        .expect("spawn pivot binary")
}

const TINY_TRAIN: &str = r#"
name = "integration tiny train"
seed = 17
parties = 3
algorithm = "pivot-basic"

[data]
kind = "synthetic-classification"
samples = 45
features_per_party = 2
classes = 2
test_fraction = 0.2

[params]
max_depth = 2
max_splits = 3
keysize = 128
"#;

#[test]
fn train_writes_parseable_report_with_timings_and_netstats() {
    let scenario = temp_path("train.toml");
    let out = temp_path("train-report.json");
    std::fs::write(&scenario, TINY_TRAIN).unwrap();

    let result = run_pivot(&[
        "train",
        "--scenario",
        scenario.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );

    let text = std::fs::read_to_string(&out).unwrap();
    let report = Json::parse(&text).expect("report must be valid JSON");

    // Scenario echo + seed.
    assert_eq!(report.get("command").unwrap().as_str(), Some("train"));
    assert_eq!(report.get("seed").unwrap().as_u64(), Some(17));
    assert_eq!(report.path("scenario.parties").unwrap().as_u64(), Some(3));
    assert_eq!(
        report.path("scenario.data.kind").unwrap().as_str(),
        Some("synthetic-classification")
    );

    // Per-stage wall clock.
    for stage in [
        "local_computation",
        "mpc_computation",
        "model_update",
        "prediction",
    ] {
        let v = report
            .path(&format!("timing.stages_s.{stage}"))
            .unwrap_or_else(|| panic!("missing stage {stage}"))
            .as_f64()
            .unwrap();
        assert!(v >= 0.0);
    }
    assert!(
        report
            .path("timing.wall_total_s")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );

    // NetStats per party: 3 entries, each with nonzero training traffic.
    let per_party = report
        .path("network.per_party")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(per_party.len(), 3);
    for (i, p) in per_party.iter().enumerate() {
        assert_eq!(p.get("party").unwrap().as_u64(), Some(i as u64));
        assert!(p.path("train.bytes_sent").unwrap().as_u64().unwrap() > 0);
        assert!(p.path("train.bytes_received").unwrap().as_u64().unwrap() > 0);
    }

    // Evaluation: accuracy on the held-out split.
    assert_eq!(
        report.path("evaluation.metric").unwrap().as_str(),
        Some("accuracy")
    );
    let acc = report.path("evaluation.value").unwrap().as_f64().unwrap();
    assert!((0.0..=1.0).contains(&acc), "accuracy {acc}");
    assert!(
        report
            .path("evaluation.test_samples")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    // Protocol counters present and plausible.
    assert!(
        report
            .path("counters.threshold_decryptions")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    assert!(
        report
            .path("counters.secure_comparisons")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );

    std::fs::remove_file(&scenario).ok();
    std::fs::remove_file(&out).ok();
}

#[test]
fn json_scenarios_are_accepted() {
    let scenario = temp_path("train.json");
    let out = temp_path("json-report.json");
    std::fs::write(
        &scenario,
        r#"{
            "name": "integration json scenario",
            "seed": 23,
            "parties": 2,
            "algorithm": "npd-dt",
            "data": {"kind": "synthetic-classification", "samples": 40,
                     "features_per_party": 2, "test_fraction": 0.2},
            "params": {"max_depth": 2, "max_splits": 3, "keysize": 128}
        }"#,
    )
    .unwrap();

    let result = run_pivot(&[
        "train",
        "--scenario",
        scenario.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let report = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.get("seed").unwrap().as_u64(), Some(23));
    assert_eq!(report.get("algorithm").unwrap().as_str(), Some("NPD-DT"));

    std::fs::remove_file(&scenario).ok();
    std::fs::remove_file(&out).ok();
}

#[test]
fn bench_sweep_reports_every_point() {
    let scenario = temp_path("sweep.toml");
    let out = temp_path("sweep-report.json");
    std::fs::write(
        &scenario,
        r#"
name = "integration sweep"
seed = 29
algorithms = ["npd-dt"]

[data]
kind = "synthetic-classification"
samples = 40
features_per_party = 2
test_fraction = 0.2

[params]
max_depth = 2
max_splits = 3
keysize = 128

[sweep]
vary = "parties"
values = [2, 3]
"#,
    )
    .unwrap();

    let result = run_pivot(&[
        "bench",
        "--scenario",
        scenario.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        result.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&result.stderr)
    );
    let report = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.get("vary").unwrap().as_str(), Some("parties"));
    let entries = report.get("results").unwrap().as_array().unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].get("parties").unwrap().as_u64(), Some(2));
    assert_eq!(entries[1].get("parties").unwrap().as_u64(), Some(3));
    for e in entries {
        assert!(e.get("train_wall_s").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.get("bytes_sent_party0").unwrap().as_u64().unwrap() > 0);
    }

    std::fs::remove_file(&scenario).ok();
    std::fs::remove_file(&out).ok();
}

#[test]
fn bad_inputs_fail_with_nonzero_exit() {
    // Missing scenario file.
    let r = run_pivot(&["train", "--scenario", "/nonexistent/s.toml"]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("cannot read"));

    // Unknown algorithm.
    let scenario = temp_path("bad-algo.toml");
    std::fs::write(&scenario, "algorithm = \"quantum\"").unwrap();
    let r = run_pivot(&["train", "--scenario", scenario.to_str().unwrap()]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("quantum"));
    std::fs::remove_file(&scenario).ok();

    // Typo'd key.
    let scenario = temp_path("bad-key.toml");
    std::fs::write(&scenario, "[params]\nmax_dept = 3").unwrap();
    let r = run_pivot(&["train", "--scenario", scenario.to_str().unwrap()]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("max_dept"));
    std::fs::remove_file(&scenario).ok();

    // bench without a sweep.
    let scenario = temp_path("no-sweep.toml");
    std::fs::write(&scenario, "[data]\nkind = \"synthetic-classification\"").unwrap();
    let r = run_pivot(&["bench", "--scenario", scenario.to_str().unwrap()]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("sweep"));
    std::fs::remove_file(&scenario).ok();

    // Unknown flag.
    let r = run_pivot(&["train", "--scenari", "x.toml"]);
    assert!(!r.status.success());
}

#[test]
fn help_and_version_succeed() {
    let r = run_pivot(&["--help"]);
    assert!(r.status.success());
    let help = String::from_utf8_lossy(&r.stdout);
    assert!(help.contains("train"));
    assert!(help.contains("--scenario"));

    let r = run_pivot(&["--version"]);
    assert!(r.status.success());
    assert!(String::from_utf8_lossy(&r.stdout).contains("pivot-cli"));
}

#[test]
fn example_scenarios_parse() {
    // Keep the shipped examples loadable (they are exercised end-to-end in
    // docs/CI; here we at least guarantee they parse and validate).
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/scenarios exists") {
        let path = entry.unwrap().path();
        if path
            .extension()
            .map(|e| e == "toml" || e == "json")
            .unwrap_or(false)
        {
            pivot_cli::scenario::Scenario::load(&path)
                .unwrap_or_else(|e| panic!("{} fails to load: {e}", path.display()));
            seen += 1;
        }
    }
    assert!(
        seen >= 3,
        "expected at least 3 example scenarios, found {seen}"
    );
}
