//! Trace-overhead guard: tracing is *observability*, never protocol.
//!
//! Three contracts, per ISSUE PR 6:
//! 1. `trace = "off"` (and the default, which is off) leaves the
//!    transcript bit-identical — same bytes, messages, op counts, model,
//!    and predictions as a build that never heard of tracing.
//! 2. `trace = "full"` perturbs nothing observable: model, metric, and
//!    traffic equal the untraced run exactly (only wall clocks may move).
//! 3. The phase table is *complete*: per party, the rounds column sums to
//!    `mpc_rounds` and the byte columns sum to the train + predict
//!    NetStats totals — no round or byte escapes attribution.

use pivot_bench::Algo;
use pivot_cli::runner::{execute, Execution};
use pivot_cli::scenario::Scenario;

fn scenario(tag: &str, body: &str) -> Scenario {
    let path = std::env::temp_dir().join(format!(
        "pivot-trace-parity-{}-{tag}.toml",
        std::process::id()
    ));
    std::fs::write(&path, body).unwrap();
    let s = Scenario::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    s
}

const BASE: &str = "seed = 31337\nparties = 3\n\
     [data]\nkind = \"synthetic-classification\"\nsamples = 30\n\
     features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
     [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n";

fn run_with(tag: &str, trace_line: &str, algo: Algo) -> Execution {
    execute(&scenario(tag, &format!("{BASE}{trace_line}")), algo, false).unwrap()
}

/// Everything deterministic a run exposes — traffic, op counts, model,
/// predictions. Wall clocks and pool hit rates are timing-dependent and
/// deliberately excluded.
fn assert_transcript_identical(a: &Execution, b: &Execution, what: &str) {
    assert_eq!(a.metric, b.metric, "{what}: metric");
    for (x, y) in a.parties.iter().zip(&b.parties) {
        let p = x.party;
        assert_eq!(
            x.predictions, y.predictions,
            "{what}: party {p} predictions"
        );
        assert_eq!(
            x.internal_nodes, y.internal_nodes,
            "{what}: party {p} model"
        );
        assert_eq!(x.tree_depth, y.tree_depth, "{what}: party {p} depth");
        assert_eq!(
            (
                x.train_bytes_sent,
                x.train_bytes_received,
                x.train_messages_sent
            ),
            (
                y.train_bytes_sent,
                y.train_bytes_received,
                y.train_messages_sent
            ),
            "{what}: party {p} train traffic"
        );
        assert_eq!(
            (x.predict_bytes_sent, x.predict_bytes_received),
            (y.predict_bytes_sent, y.predict_bytes_received),
            "{what}: party {p} predict traffic"
        );
        assert_eq!(
            (x.encryptions, x.threshold_decryptions, x.mpc_rounds),
            (y.encryptions, y.threshold_decryptions, y.mpc_rounds),
            "{what}: party {p} op counts"
        );
        assert_eq!(
            (
                x.secure_mults,
                x.secure_comparisons,
                x.split_stat_ciphertexts
            ),
            (
                y.secure_mults,
                y.secure_comparisons,
                y.split_stat_ciphertexts
            ),
            "{what}: party {p} protocol counters"
        );
        assert_eq!(
            x.stats_bytes_sent, y.stats_bytes_sent,
            "{what}: party {p} stats traffic"
        );
    }
}

#[test]
fn trace_off_is_bit_identical_to_default() {
    for (algo, tag) in [(Algo::PivotBasic, "basic"), (Algo::PivotEnhancedPp, "epp")] {
        let default = run_with(&format!("default-{tag}"), "", algo);
        let off = run_with(&format!("off-{tag}"), "trace = \"off\"\n", algo);
        assert_transcript_identical(&default, &off, tag);
        for e in [&default, &off] {
            assert!(
                e.parties.iter().all(|p| p.trace.is_none()),
                "{tag}: untraced runs carry no trace"
            );
            assert!(e.runtime_trace.is_none(), "{tag}: no runtime trace");
        }
    }
}

#[test]
fn full_tracing_never_perturbs_the_protocol() {
    for (algo, tag) in [(Algo::PivotBasic, "basic"), (Algo::PivotEnhancedPp, "epp")] {
        let off = run_with(&format!("p-off-{tag}"), "trace = \"off\"\n", algo);
        let full = run_with(&format!("p-full-{tag}"), "trace = \"full\"\n", algo);
        assert_transcript_identical(&off, &full, tag);
        assert!(
            full.parties.iter().all(|p| p.trace.is_some()),
            "{tag}: full tracing records every party"
        );
    }
}

#[test]
fn phase_table_accounts_for_every_round_and_byte() {
    // Both granularities must attribute *everything*: fine spans re-bucket
    // counters inside their enclosing phase, so the column sums are
    // invariant across "phases" and "full".
    for (line, tag) in [
        ("trace = \"phases\"\n", "phases"),
        ("trace = \"full\"\n", "full"),
    ] {
        let exec = run_with(&format!("sum-{tag}"), line, Algo::PivotEnhancedPp);
        for p in &exec.parties {
            let trace = p.trace.as_ref().expect("traced run");
            let rows = pivot_trace::phase_table(trace);
            for row in &rows {
                assert!(
                    pivot_trace::PHASES.contains(&row.phase.as_str()),
                    "{tag}: unknown phase {:?}",
                    row.phase
                );
            }
            let rounds: u64 = rows.iter().map(|r| r.rounds).sum();
            let sent: u64 = rows.iter().map(|r| r.sent_bytes).sum();
            let recv: u64 = rows.iter().map(|r| r.recv_bytes).sum();
            assert_eq!(
                rounds, p.mpc_rounds,
                "{tag}: party {} rounds attribution",
                p.party
            );
            assert_eq!(
                sent,
                p.train_bytes_sent + p.predict_bytes_sent,
                "{tag}: party {} sent-byte attribution",
                p.party
            );
            assert_eq!(
                recv,
                p.train_bytes_received + p.predict_bytes_received,
                "{tag}: party {} recv-byte attribution",
                p.party
            );
            // Named protocol phases actually ran — the table is not one
            // big "other" bucket.
            let named: Vec<&str> = rows
                .iter()
                .filter(|r| r.phase != "other")
                .map(|r| r.phase.as_str())
                .collect();
            for expect in [
                "setup",
                "stats",
                "conversion",
                "gain",
                "split_reveal",
                "predict",
            ] {
                assert!(
                    named.contains(&expect),
                    "{tag}: party {} phase table misses {expect:?} ({named:?})",
                    p.party
                );
            }
        }
        // The Chrome export of the same run passes its own checker (the
        // CI smoke gate uses the identical validation path).
        let traces: Vec<_> = exec
            .parties
            .iter()
            .filter_map(|p| p.trace.clone())
            .collect();
        let json = pivot_trace::chrome_trace_json(&traces, exec.runtime_trace.as_ref());
        let path = std::env::temp_dir().join(format!(
            "pivot-trace-parity-chrome-{}-{tag}.json",
            std::process::id()
        ));
        std::fs::write(&path, &json).unwrap();
        pivot_cli::trace_cmd::run(&pivot_cli::trace_cmd::TraceArgs {
            input: path.clone(),
            check: true,
            diff: None,
        })
        .unwrap();
        std::fs::remove_file(&path).ok();
    }
}
