//! The batched-crypto determinism contract, end to end: a `-PP` run
//! (shared worker pool, 4 threads, warm offline randomness pool) must
//! reproduce the serial run **bit for bit** — same trained model, same
//! test metric and predictions, same per-party byte counts — under the
//! same scenario seed, for both protocols with m = 3 parties.
//!
//! This is what lets the paper's Figure-4/5 `-PP` curves be read as pure
//! wall-clock effects: the protocol transcript is unchanged.

use pivot_bench::Algo;
use pivot_cli::runner::{execute, Execution};
use pivot_cli::scenario::Scenario;

fn scenario(tag: &str, body: &str) -> Scenario {
    let path = std::env::temp_dir().join(format!(
        "pivot-batch-parity-{}-{tag}.toml",
        std::process::id()
    ));
    std::fs::write(&path, body).unwrap();
    let s = Scenario::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    s
}

/// Assert two executions are transcript-identical (everything except wall
/// clocks and the timing-dependent pool counters).
fn assert_transcript_identical(serial: &Execution, parallel: &Execution) {
    assert_eq!(serial.parties.len(), parallel.parties.len());
    assert_eq!(serial.metric, parallel.metric, "test metric");
    for (s, p) in serial.parties.iter().zip(&parallel.parties) {
        assert_eq!(
            s.predictions, p.predictions,
            "party {} predictions",
            s.party
        );
        assert_eq!(
            s.internal_nodes, p.internal_nodes,
            "party {} model",
            s.party
        );
        assert_eq!(s.tree_depth, p.tree_depth, "party {} depth", s.party);
        assert_eq!(
            (
                s.train_bytes_sent,
                s.train_bytes_received,
                s.train_messages_sent
            ),
            (
                p.train_bytes_sent,
                p.train_bytes_received,
                p.train_messages_sent
            ),
            "party {} training traffic",
            s.party
        );
        assert_eq!(
            (s.predict_bytes_sent, s.predict_bytes_received),
            (p.predict_bytes_sent, p.predict_bytes_received),
            "party {} prediction traffic",
            s.party
        );
        assert_eq!(
            (s.encryptions, s.ciphertext_ops, s.threshold_decryptions),
            (p.encryptions, p.ciphertext_ops, p.threshold_decryptions),
            "party {} crypto op counts",
            s.party
        );
        assert_eq!(
            (s.mpc_rounds, s.secure_mults, s.secure_comparisons),
            (p.mpc_rounds, p.secure_mults, p.secure_comparisons),
            "party {} MPC op counts",
            s.party
        );
    }
}

#[test]
fn basic_pp_is_bit_identical_to_serial() {
    let s = scenario(
        "basic",
        "seed = 1234\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 48\n\
         features_per_party = 2\nclasses = 2\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n\
         crypto_threads = 4\nrandomness_pool = 64\n",
    );
    let serial = execute(&s, Algo::PivotBasic, false).unwrap();
    let parallel = execute(&s, Algo::PivotBasicPp, false).unwrap();
    assert_transcript_identical(&serial, &parallel);
    // The parallel run actually exercised the batched path.
    assert!(serial.parties[0].threshold_decryptions > 0);
    assert_eq!(serial.parties[0].pool.target, 0, "serial pool disabled");
    assert_eq!(
        parallel.parties[0].pool.target, 64,
        "pool enabled under -PP"
    );
    let pool = &parallel.parties[0].pool;
    assert!(
        pool.hits + pool.misses > 0,
        "-PP run drew nonces through the pool"
    );
}

#[test]
fn enhanced_pp_is_bit_identical_to_serial() {
    let s = scenario(
        "enhanced",
        "seed = 777\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 40\n\
         features_per_party = 2\nclasses = 2\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 192\n\
         crypto_threads = 4\nrandomness_pool = 64\n",
    );
    let serial = execute(&s, Algo::PivotEnhanced, false).unwrap();
    let parallel = execute(&s, Algo::PivotEnhancedPp, false).unwrap();
    assert_transcript_identical(&serial, &parallel);
    assert!(serial.parties[0].threshold_decryptions > 0);
}

#[test]
fn regression_gbdt_pp_is_bit_identical_to_serial() {
    // Ensembles ride the basic protocol; cover the regression label-mask
    // path (mul_plain_batch + rerandomize_batch) and residual updates.
    let s = scenario(
        "gbdt",
        "seed = 42\nparties = 3\n\
         [data]\nkind = \"synthetic-regression\"\nsamples = 40\n\
         features_per_party = 2\n\
         [model]\nkind = \"gbdt\"\nrounds = 2\nlearning_rate = 0.5\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n\
         crypto_threads = 4\nrandomness_pool = 32\n",
    );
    let serial = execute(&s, Algo::PivotBasic, false).unwrap();
    let parallel = execute(&s, Algo::PivotBasicPp, false).unwrap();
    assert_transcript_identical(&serial, &parallel);
}
