//! End-to-end bounded-vs-full comparison parity: `comparison_bits =
//! "auto"` must release the same model, predictions, and metric as
//! `"full"` (comparisons stay exact, so every argmax is range-invariant)
//! while opening measurably fewer field elements in measurably fewer
//! comparison rounds — the PR-5 acceptance shape, for both protocols.
//!
//! `comparison_bits = "full"` itself is the PR-3/PR-4 path: the legacy
//! BitLT, the legacy single-stream dealer, and full-width masks are only
//! reachable through it, and `batch_parity.rs` / `packing_parity.rs` keep
//! asserting that path's transcript invariants.

use pivot_bench::Algo;
use pivot_cli::runner::{execute, Execution};
use pivot_cli::scenario::Scenario;

fn scenario(tag: &str, body: &str) -> Scenario {
    let path = std::env::temp_dir().join(format!(
        "pivot-comparison-parity-{}-{tag}.toml",
        std::process::id()
    ));
    std::fs::write(&path, body).unwrap();
    let s = Scenario::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    s
}

/// The bounded run must release the same model and metric; the comparison
/// transcript must shrink by the acceptance margins (opened ≥2×, rounds
/// ≥3×) with fewer total bytes on the wire.
fn assert_parity_and_reduction(full: &Execution, auto: &Execution) {
    assert_eq!(full.metric, auto.metric, "test metric");
    for (f, a) in full.parties.iter().zip(&auto.parties) {
        assert_eq!(
            f.predictions, a.predictions,
            "party {} predictions",
            f.party
        );
        assert_eq!(
            f.internal_nodes, a.internal_nodes,
            "party {} model",
            f.party
        );
        assert_eq!(f.tree_depth, a.tree_depth, "party {} depth", f.party);
    }
    let f = &full.parties[0].comparison;
    let a = &auto.parties[0].comparison;
    assert_eq!(f.count, a.count, "same number of secure comparisons");
    assert!(
        f.opened_elements >= 2 * a.opened_elements,
        "comparison openings must drop >=2x: full {} vs auto {}",
        f.opened_elements,
        a.opened_elements
    );
    assert!(
        f.online_rounds >= 3 * a.online_rounds,
        "comparison rounds must drop >=3x: full {} vs auto {}",
        f.online_rounds,
        a.online_rounds
    );
    assert!(
        f.masked_bits >= 2 * a.masked_bits,
        "masked-bit consumption must drop >=2x: full {} vs auto {}",
        f.masked_bits,
        a.masked_bits
    );
    // The full run compares at exactly int_bits. The auto run derives
    // per-site widths; only comparisons without a provable range (the
    // enhanced prediction's feature-vs-threshold tests) may stay at 45.
    assert_eq!(f.widths.len(), 1, "full uses one width: {:?}", f.widths);
    assert_eq!(f.widths[0].0, 45);
    let bounded: u64 = a
        .widths
        .iter()
        .filter(|&&(k, _)| k < 45)
        .map(|&(_, n)| n)
        .sum();
    let unbounded: u64 = a
        .widths
        .iter()
        .filter(|&&(k, _)| k >= 45)
        .map(|&(_, n)| n)
        .sum();
    assert!(
        bounded > 10 * unbounded,
        "bounded widths must dominate: {:?}",
        a.widths
    );
    assert!(a.widths.len() > 1, "auto derives per-site widths");
    assert!(
        auto.parties[0].train_bytes_sent < full.parties[0].train_bytes_sent,
        "bounded comparisons must shrink total training traffic ({} vs {})",
        auto.parties[0].train_bytes_sent,
        full.parties[0].train_bytes_sent
    );
}

fn run_pair(base: &str, tag: &str, algo: Algo) -> (Execution, Execution) {
    let full = execute(
        &scenario(
            &format!("{tag}-full"),
            &format!("{base}comparison_bits = \"full\"\n"),
        ),
        algo,
        false,
    )
    .unwrap();
    let auto = execute(
        &scenario(
            &format!("{tag}-auto"),
            &format!("{base}comparison_bits = \"auto\"\n"),
        ),
        algo,
        false,
    )
    .unwrap();
    (full, auto)
}

/// `comparison_bits = "full"` IS the pre-PR-5 path: a run with the
/// explicit knob must be byte-for-byte the run without it (model, metric,
/// predictions, per-party traffic, comparison transcript). Together with
/// `batch_parity.rs` / `packing_parity.rs` — which exercise that default —
/// this pins the PR-3/PR-4 transcript reproduction.
#[test]
fn explicit_full_is_bit_identical_to_default() {
    let base = "seed = 4242\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 36\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n";
    let default = execute(&scenario("default", base), Algo::PivotBasic, false).unwrap();
    let full = execute(
        &scenario(
            "explicit-full",
            &format!("{base}comparison_bits = \"full\"\n"),
        ),
        Algo::PivotBasic,
        false,
    )
    .unwrap();
    assert_eq!(default.metric, full.metric);
    for (d, f) in default.parties.iter().zip(&full.parties) {
        assert_eq!(d.predictions, f.predictions, "party {}", d.party);
        assert_eq!(d.internal_nodes, f.internal_nodes);
        assert_eq!(d.train_bytes_sent, f.train_bytes_sent, "party {}", d.party);
        assert_eq!(d.train_messages_sent, f.train_messages_sent);
        assert_eq!(d.predict_bytes_sent, f.predict_bytes_sent);
        assert_eq!(d.comparison, f.comparison, "comparison transcript");
    }
}

#[test]
fn basic_bounded_comparisons_match_full() {
    // flip_y keeps internal nodes impure so every argmax has a margin far
    // above the ±1-ulp truncation realignment between the two dealers.
    let base = "seed = 4242\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 36\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n";
    let (full, auto) = run_pair(base, "basic", Algo::PivotBasic);
    assert_parity_and_reduction(&full, &auto);
}

#[test]
fn enhanced_bounded_comparisons_match_full() {
    // Enhanced adds the one-hot/PIR comparisons (shared-mask pairs) and
    // the block-only reveal to the bounded surface; run under -PP so the
    // offline dealer pool is exercised end to end.
    let base = "seed = 99\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 30\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 256\n\
         crypto_threads = 4\nrandomness_pool = 64\ndealer_pool = 128\n\
         parallel_decrypt = true\n";
    let (full, auto) = run_pair(base, "enhanced", Algo::PivotEnhanced);
    assert_parity_and_reduction(&full, &auto);
    // Full mode never touches the pool; the bounded -PP run must have
    // served at least part of its preprocessing from precompute.
    let f = &full.parties[0].dealer_pool;
    let a = &auto.parties[0].dealer_pool;
    assert_eq!(f.target, 0, "full mode keeps the legacy dealer: {f:?}");
    assert_eq!(a.target, 128);
    assert!(
        a.triple_hits + a.triple_misses > 0 && a.masked_hits + a.masked_misses > 0,
        "bounded mode draws from the split streams: {a:?}"
    );
}

#[test]
fn width_floor_sits_between_full_and_auto() {
    let base = "seed = 7\nparties = 2\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 30\n\
         features_per_party = 2\nclasses = 2\nflip_y = 0.05\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n";
    let (full, auto) = run_pair(base, "floor", Algo::PivotBasic);
    let floored = execute(
        &scenario("floor-30", &format!("{base}comparison_bits = 30\n")),
        Algo::PivotBasic,
        false,
    )
    .unwrap();
    assert_eq!(full.metric, floored.metric);
    assert_eq!(full.parties[0].predictions, floored.parties[0].predictions);
    let f = full.parties[0].comparison.opened_elements;
    let m = floored.parties[0].comparison.opened_elements;
    let a = auto.parties[0].comparison.opened_elements;
    assert!(
        a < m && m < f,
        "floor sits between: auto {a} < floor {m} < full {f}"
    );
    assert!(
        floored.parties[0]
            .comparison
            .widths
            .iter()
            .all(|&(k, _)| k >= 30),
        "floor raises every width: {:?}",
        floored.parties[0].comparison.widths
    );
}

/// Range-invariance proof on a *near-tie* scenario: at depth 4 with thin
/// nodes this seed's gains carry sub-ulp margins, so the split-stream
/// dealer's ±1-ulp truncation realignment may legitimately resolve an
/// argmax differently from `"full"` (the PR-4 packing caveat). The widths
/// themselves never change a comparison: a width floor of `int_bits`
/// (full-width comparisons on the bounded machinery) must reproduce the
/// `"auto"` run — model, metric, and predictions — exactly.
#[test]
fn widths_never_flip_a_comparison_even_on_near_ties() {
    let base = "seed = 0xBE7C4\nparties = 3\n\
         [data]\nkind = \"synthetic-classification\"\nsamples = 120\n\
         features_per_party = 2\nclasses = 2\n\
         [params]\nmax_depth = 4\nmax_splits = 4\nkeysize = 256\n";
    let auto = execute(
        &scenario("ties-auto", &format!("{base}comparison_bits = \"auto\"\n")),
        Algo::PivotBasic,
        false,
    )
    .unwrap();
    let floored = execute(
        &scenario("ties-floor45", &format!("{base}comparison_bits = 45\n")),
        Algo::PivotBasic,
        false,
    )
    .unwrap();
    assert_eq!(auto.metric, floored.metric);
    for (a, f) in auto.parties.iter().zip(&floored.parties) {
        assert_eq!(a.predictions, f.predictions, "party {}", a.party);
        assert_eq!(a.internal_nodes, f.internal_nodes);
        assert_eq!(a.tree_depth, f.tree_depth);
    }
    // Same comparisons, narrower transcript.
    let a = &auto.parties[0].comparison;
    let f = &floored.parties[0].comparison;
    assert_eq!(a.count, f.count);
    assert!(a.opened_elements < f.opened_elements);
}

/// GBDT residual trees train on residuals that can exceed the ±1
/// normalized-label contract, so their gain argmax must keep the full
/// fixed-point width even under `"auto"` (`gain_width`'s `task_override`
/// gate) — while the count-based comparisons stay bounded.
#[test]
fn gbdt_residual_gain_argmax_keeps_full_width() {
    let base = "seed = 13\nparties = 2\n\
         [data]\nkind = \"synthetic-regression\"\nsamples = 40\n\
         features_per_party = 2\n\
         [model]\nkind = \"gbdt\"\nrounds = 3\nlearning_rate = 0.5\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n";
    let (full, auto) = run_pair(base, "gbdt", Algo::PivotBasic);
    for (f, a) in full.parties.iter().zip(&auto.parties) {
        assert_eq!(f.internal_nodes, a.internal_nodes, "model shape");
        for (x, y) in f.predictions.iter().zip(&a.predictions) {
            assert!(
                (x - y).abs() < 1e-3,
                "gbdt predictions diverged: {x} vs {y}"
            );
        }
    }
    let widths = &auto.parties[0].comparison.widths;
    let at_full: u64 = widths
        .iter()
        .filter(|&&(k, _)| k == 45)
        .map(|&(_, n)| n)
        .sum();
    let bounded: u64 = widths
        .iter()
        .filter(|&&(k, _)| k < 45)
        .map(|&(_, n)| n)
        .sum();
    assert!(
        at_full > 0,
        "residual gain argmax must stay at int_bits: {widths:?}"
    );
    assert!(
        bounded > 0,
        "count-based comparisons must stay bounded: {widths:?}"
    );
    assert!(
        auto.parties[0].comparison.opened_elements < full.parties[0].comparison.opened_elements,
        "bounded count comparisons still shrink the transcript"
    );
}

#[test]
fn bounded_regression_gbdt_leaves_match_within_ulp() {
    // Regression exercises recip_vec_int's Goldschmidt tail and the
    // fixed-point leaf means; leaves may shift by the documented ±1-ulp
    // truncation realignment, so compare predictions with a tolerance.
    let base = "seed = 11\nparties = 2\n\
         [data]\nkind = \"synthetic-regression\"\nsamples = 40\n\
         features_per_party = 2\n\
         [params]\nmax_depth = 2\nmax_splits = 3\nkeysize = 128\n";
    let (full, auto) = run_pair(base, "regression", Algo::PivotBasic);
    for (f, a) in full.parties.iter().zip(&auto.parties) {
        assert_eq!(f.internal_nodes, a.internal_nodes, "model shape");
        for (x, y) in f.predictions.iter().zip(&a.predictions) {
            assert!(
                (x - y).abs() < 1e-4,
                "regression predictions diverged: {x} vs {y}"
            );
        }
    }
    let f = &full.parties[0].comparison;
    let a = &auto.parties[0].comparison;
    assert!(f.opened_elements >= 2 * a.opened_elements);
}
