//! Crash-recovery integration tests: a real `pivot party` process is
//! SIGKILLed mid-training and relaunched with `--resume`, and the run
//! must complete **bit-identical** to a fault-free run.
//!
//! Contracts pinned here:
//!
//! 1. **Durable resume** — with a `[checkpoint]` section, the supervisor
//!    (`--supervise`) kills party 1 once its level-2 checkpoint lands on
//!    disk, waits `restart_after_ms`, and relaunches it with `--resume`.
//!    The relaunched process replays its recorded inbound transcript
//!    through the deterministic protocol and rejoins the live mesh; the
//!    final model, metric, predictions, and payload byte counts match a
//!    fault-free in-process run exactly. Survivors park at the barrier
//!    (liveness watchdog) and record `session.rejoins >= 1`.
//! 2. **Misuse is typed** — `--resume` without a `[checkpoint]` section
//!    is a usage error (exit 1), not a panic or a silent fresh start.

use pivot_cli::json::Json;
use pivot_transport::tcp::loopback_peers;
use std::path::PathBuf;
use std::process::{Child, Command};

fn pivot_bin() -> &'static str {
    env!("CARGO_BIN_EXE_pivot")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pivot-crash-it-{}-{name}", std::process::id()))
}

fn spawn_party(scenario: &str, id: usize, peers: &[String], out: &str, supervise: bool) -> Child {
    let mut cmd = Command::new(pivot_bin());
    cmd.args([
        "party",
        "--scenario",
        scenario,
        "--id",
        &id.to_string(),
        "--peers",
        &peers.join(","),
        "--out",
        out,
        "--quiet",
    ]);
    if supervise {
        cmd.arg("--supervise");
    }
    cmd.spawn().expect("spawn pivot party")
}

fn run_train(scenario: &str, out: &str) {
    let result = Command::new(pivot_bin())
        .args(["train", "--scenario", scenario, "--out", out, "--quiet"])
        .output()
        .expect("spawn pivot train");
    assert!(
        result.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&result.stderr)
    );
}

/// The chaos scenario, parameterised on the checkpoint directory so the
/// fault-free twin can checkpoint into its own scratch space without
/// clobbering the supervised run's files.
fn scenario_text(ckpt_dir: &str) -> String {
    format!(
        r#"
name = "crash-recovery chaos baseline (kill party 1 at level 2)"
seed = 1031
parties = 3
algorithm = "pivot-enhanced-pp"

[data]
kind = "synthetic-classification"
samples = 60
features_per_party = 2
classes = 2
class_sep = 1.5
test_fraction = 0.25

[params]
max_depth = 4
max_splits = 3
min_samples = 2
keysize = 128
scheduling = "pipelined"

[checkpoint]
every_levels = 1
dir = "{ckpt_dir}"

[network]
recv_timeout_s = 120
connect_timeout_s = 30
heartbeat_s = 0.2
rejoin_deadline_s = 60

[faults]
plan = ["kill_party 1 at_level=2 restart_after_ms=500"]
seed = 1031
"#
    )
}

#[test]
fn sigkill_at_level_barrier_resumes_bit_identically() {
    let m = 3;
    let ckpt_dir = temp_path("ckpt-chaos");
    let clean_ckpt_dir = temp_path("ckpt-clean");
    std::fs::remove_dir_all(&ckpt_dir).ok();
    std::fs::remove_dir_all(&clean_ckpt_dir).ok();

    let chaos = temp_path("kill.toml");
    let chaos_text = scenario_text(ckpt_dir.to_str().unwrap());
    std::fs::write(&chaos, &chaos_text).unwrap();

    // Fault-free twin: the same scenario minus [faults], checkpointing
    // into its own directory, run on the in-process backend. This is the
    // strong form of the parity gate — SIGKILL-and-resume TCP against
    // fault-free threads.
    let clean = temp_path("kill-clean.toml");
    let clean_text = chaos_text
        .split("\n[faults]")
        .next()
        .expect("scenario has a [faults] section")
        .replace(ckpt_dir.to_str().unwrap(), clean_ckpt_dir.to_str().unwrap());
    assert!(clean_text.contains("[checkpoint]"), "strip kept the config");
    std::fs::write(&clean, &clean_text).unwrap();
    let train_out = temp_path("kill-clean-train.json");
    run_train(clean.to_str().unwrap(), train_out.to_str().unwrap());
    let baseline = Json::parse(&std::fs::read_to_string(&train_out).unwrap()).unwrap();
    let per_party = baseline
        .path("network.per_party")
        .unwrap()
        .as_array()
        .unwrap();

    let peers = loopback_peers(m);
    let party_outs: Vec<PathBuf> = (0..m)
        .map(|i| temp_path(&format!("kill-party{i}.json")))
        .collect();
    // Party 1 runs under the supervisor, which SIGKILLs it once its
    // level-2 checkpoint is durable and relaunches it with --resume.
    let children: Vec<Child> = (0..m)
        .map(|i| {
            spawn_party(
                chaos.to_str().unwrap(),
                i,
                &peers,
                party_outs[i].to_str().unwrap(),
                i == 1,
            )
        })
        .collect();
    for (i, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("party process");
        assert!(
            out.status.success(),
            "party {i} failed despite checkpointed kill: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    let mut all_predictions = Vec::new();
    for (i, out) in party_outs.iter().enumerate() {
        let report = Json::parse(&std::fs::read_to_string(out).unwrap())
            .unwrap_or_else(|e| panic!("party {i} report unparseable: {e}"));
        // Model, metric, and traffic: bit-identical to the fault-free
        // run. The restarted party recomputes from genesis against its
        // recorded transcript, so even its byte counters land exactly on
        // the fault-free totals.
        assert_eq!(
            report.path("evaluation.value").unwrap().as_f64(),
            baseline.path("evaluation.value").unwrap().as_f64(),
            "party {i} metric"
        );
        assert_eq!(
            report.path("model.internal_nodes").unwrap().as_u64(),
            baseline.path("model.internal_nodes").unwrap().as_u64(),
            "party {i} model"
        );
        for phase in ["train", "predict"] {
            for field in ["bytes_sent", "bytes_received"] {
                assert_eq!(
                    report.path(&format!("network.{phase}.{field}")).unwrap(),
                    per_party[i].path(&format!("{phase}.{field}")).unwrap(),
                    "party {i} {phase}.{field}"
                );
            }
        }
        all_predictions.push(report.get("predictions").unwrap().clone());

        let session = |field: &str| {
            report
                .path(&format!("network.session.{field}"))
                .unwrap()
                .as_u64()
                .unwrap()
        };
        if i != 1 {
            // Survivors parked at the barrier and spliced the restarted
            // peer back in.
            assert!(session("rejoins") >= 1, "party {i} spliced the rejoin");
        }
        // Every party checkpointed (the supervisor gates the kill on the
        // level-2 file existing, so at least two barriers committed).
        assert!(
            report
                .path("counters.checkpoint.written")
                .unwrap()
                .as_u64()
                .unwrap()
                >= 2,
            "party {i} checkpoints"
        );
        std::fs::remove_file(out).ok();
    }
    for (i, preds) in all_predictions.iter().enumerate() {
        assert_eq!(preds, &all_predictions[0], "party {i} predictions differ");
        assert!(!preds.as_array().unwrap().is_empty());
    }

    // The checkpoint directory holds pruned, versioned files — at most
    // two per party (keep-last-2), named for barrier ordinal and level.
    let mut files: Vec<String> = std::fs::read_dir(&ckpt_dir)
        .expect("checkpoint dir exists")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no checkpoint files written");
    for p in 0..m {
        let mine = files
            .iter()
            .filter(|f| f.starts_with(&format!("party{p}-")) && f.ends_with(".ckpt"))
            .count();
        assert!(
            (1..=2).contains(&mine),
            "party {p} kept {mine} checkpoints: {files:?}"
        );
    }

    std::fs::remove_dir_all(&ckpt_dir).ok();
    std::fs::remove_dir_all(&clean_ckpt_dir).ok();
    std::fs::remove_file(&train_out).ok();
    std::fs::remove_file(&chaos).ok();
    std::fs::remove_file(&clean).ok();
}

#[test]
fn resume_without_checkpoint_section_is_a_usage_error() {
    let scenario = temp_path("no-ckpt.toml");
    std::fs::write(
        &scenario,
        r#"
name = "no checkpoint section"
seed = 5
parties = 2
algorithm = "pivot-basic"

[data]
kind = "synthetic-classification"
samples = 40
features_per_party = 2
classes = 2
test_fraction = 0.2

[params]
max_depth = 2
max_splits = 3
keysize = 128
"#,
    )
    .unwrap();

    let out = Command::new(pivot_bin())
        .args([
            "party",
            "--scenario",
            scenario.to_str().unwrap(),
            "--id",
            "0",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2",
            "--resume",
            "--quiet",
        ])
        .output()
        .expect("spawn pivot party");
    assert_eq!(out.status.code(), Some(1), "usage error expected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[checkpoint]"),
        "stderr names the missing section: {stderr}"
    );

    std::fs::remove_file(&scenario).ok();
}
