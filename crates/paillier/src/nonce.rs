//! Offline randomness pool: precomputed Paillier nonce powers.
//!
//! Every online Paillier encryption pays one full `r^N mod N²`
//! exponentiation — by far its dominant cost. Those powers are *input
//! independent*: they can be precomputed during idle phases (keygen/setup,
//! the network waits between threshold-decryption rounds) by background
//! workers, turning an online `encrypt` into one modular multiplication
//! plus a binomial add.
//!
//! # Determinism contract
//!
//! The pool owns a seeded RNG — the party's dedicated *nonce stream* — and
//! draws `r` values from it **in a single defined order** under one lock:
//! refills draw in FIFO order and consumers pop in FIFO order, so the i-th
//! nonce handed out is always the i-th draw of the stream, whether it was
//! precomputed by a background worker or computed inline on a miss. A run
//! with the pool disabled (`target = 0`) therefore produces bit-identical
//! ciphertexts to a run with any pool size, and the parallel `-PP` path
//! stays byte-identical to the serial path.

use crate::PublicKey;
use pivot_bignum::{rng as brng, BigUint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Counters describing how the pool behaved during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NonceStats {
    /// Takes served by an already-computed precomputed power.
    pub hits: u64,
    /// Takes that had to compute (or wait for) the power online.
    pub misses: u64,
    /// Powers precomputed by background workers.
    pub produced: u64,
    /// Configured pool size (0 = offline precomputation disabled).
    pub target: u64,
}

impl NonceStats {
    /// Hit rate in `[0, 1]`, or `None` when nothing was taken.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// One queued nonce power, filled asynchronously by a worker — or
/// *stolen* by the consumer: if the background job has not started when
/// the slot is taken, the consumer grabs the drawn `r` and computes
/// `r^N` inline rather than waiting behind the worker queue (a take must
/// never cost more than one exponentiation).
enum SlotState {
    /// `r` drawn, background job not started yet (stealable).
    Pending(BigUint),
    /// A thread is computing `r^N` right now.
    Computing,
    /// Ready for pickup: the power and the raw nonce it was derived from
    /// (kept so witness retention can hand `r` to ZKP provers).
    Done(BigUint, BigUint),
}

struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

struct PoolState {
    /// The party's nonce stream; every `r` is drawn from here under the
    /// state lock, in refill/inline order.
    rng: StdRng,
    /// Precomputed (or in-flight) nonce powers in draw order.
    queue: VecDeque<Arc<Slot>>,
}

/// Per-party pool of precomputed Paillier nonce powers `r^N mod N²`.
pub struct NoncePool {
    pk: PublicKey,
    state: Mutex<PoolState>,
    /// Desired number of precomputed powers; 0 disables background work
    /// entirely (every take computes inline from the same stream).
    target: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    produced: AtomicU64,
    /// When set, every take also appends the *raw* nonce `r` to the
    /// witness log (in take order) so ZKP provers can open the
    /// ciphertexts built from this stream. Retention never changes the
    /// drawn values — the determinism contract is untouched.
    retain: std::sync::atomic::AtomicBool,
    witnesses: Mutex<Vec<BigUint>>,
}

impl NoncePool {
    /// Create a pool over `pk` with its own seeded nonce stream.
    pub fn new(pk: PublicKey, seed: u64, target: usize) -> Arc<NoncePool> {
        Arc::new(NoncePool {
            pk,
            state: Mutex::new(PoolState {
                rng: StdRng::seed_from_u64(seed),
                queue: VecDeque::new(),
            }),
            target,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            produced: AtomicU64::new(0),
            retain: std::sync::atomic::AtomicBool::new(false),
            witnesses: Mutex::new(Vec::new()),
        })
    }

    /// Toggle witness retention: while on, [`Self::take`] logs each raw
    /// nonce `r` (take order) for [`Self::drain_witnesses`].
    pub fn retain_witnesses(&self, on: bool) {
        self.retain.store(on, Ordering::Relaxed);
    }

    /// Drain the retained raw nonces logged since the previous drain, in
    /// take order.
    pub fn drain_witnesses(&self) -> Vec<BigUint> {
        std::mem::take(&mut *self.witnesses.lock().expect("nonce pool poisoned"))
    }

    fn log_witness(&self, r: &BigUint) {
        if self.retain.load(Ordering::Relaxed) {
            self.witnesses
                .lock()
                .expect("nonce pool poisoned")
                .push(r.clone());
        }
    }

    /// Configured pool size.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Counters snapshot.
    pub fn stats(&self) -> NonceStats {
        NonceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            produced: self.produced.load(Ordering::Relaxed),
            target: self.target as u64,
        }
    }

    /// Top the pool back up to `target` using background workers. Cheap to
    /// call opportunistically (no-ops when the pool is full or disabled);
    /// call it during idle phases — after setup, before a blocking
    /// network exchange — so the exponentiations overlap the wait.
    pub fn refill(self: &Arc<Self>) {
        if self.target == 0 {
            return;
        }
        // Draw the r values under the state lock so the stream order is
        // defined, then farm the exponentiations out. Jobs hold only a
        // Weak pool reference: dropping the pool (end of a party run)
        // turns any still-queued backlog into no-ops instead of letting
        // it burn workers under the next timed run.
        let mut work: Vec<Arc<Slot>> = Vec::new();
        {
            let mut st = self.state.lock().expect("nonce pool poisoned");
            while st.queue.len() < self.target {
                let r = brng::gen_coprime(&mut st.rng, self.pk.n());
                let slot = Arc::new(Slot {
                    state: Mutex::new(SlotState::Pending(r)),
                    done: Condvar::new(),
                });
                st.queue.push_back(Arc::clone(&slot));
                work.push(slot);
            }
        }
        for slot in work {
            let weak = Arc::downgrade(self);
            pivot_runtime::global().spawn(move || {
                let Some(pool) = weak.upgrade() else { return };
                let r = {
                    let mut state = slot.state.lock().expect("slot poisoned");
                    match std::mem::replace(&mut *state, SlotState::Computing) {
                        SlotState::Pending(r) => r,
                        // Stolen by the consumer (or already finished):
                        // nothing left to do; restore what we displaced.
                        other => {
                            *state = other;
                            return;
                        }
                    }
                };
                let rn = pool.pk.pow_n(&r);
                *slot.state.lock().expect("slot poisoned") = SlotState::Done(rn, r);
                slot.done.notify_all();
                pool.produced.fetch_add(1, Ordering::Relaxed);
            });
        }
    }

    /// Take the next nonce power `r^N mod N²` from the stream.
    pub fn take(self: &Arc<Self>) -> BigUint {
        let out = self.take_inner();
        // Periodic hit-rate gauge for the trace timeline (the counters
        // themselves are wall-clock dependent and never part of the
        // determinism contract — only the drawn values are).
        if pivot_trace::enabled() {
            let total = self.hits.load(Ordering::Relaxed) + self.misses.load(Ordering::Relaxed);
            if total % 64 == 1 {
                if let Some(rate) = self.stats().hit_rate() {
                    pivot_trace::gauge("nonce_pool_hit_rate", rate);
                }
            }
        }
        out
    }

    fn take_inner(self: &Arc<Self>) -> BigUint {
        let slot = {
            let mut st = self.state.lock().expect("nonce pool poisoned");
            match st.queue.pop_front() {
                Some(slot) => Ok(slot),
                // Queue empty: draw the next r inline, same stream order.
                None => Err(brng::gen_coprime(&mut st.rng, self.pk.n())),
            }
        };
        match slot {
            Ok(slot) => {
                let mut state = slot.state.lock().expect("slot poisoned");
                match std::mem::replace(&mut *state, SlotState::Computing) {
                    SlotState::Done(rn, r) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.log_witness(&r);
                        rn
                    }
                    SlotState::Pending(r) => {
                        // Background job hasn't started: steal it and
                        // compute inline (the job will see `Computing`
                        // and bail). Bounds the miss cost to one pow —
                        // no waiting behind the worker queue.
                        drop(state);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        self.log_witness(&r);
                        self.pk.pow_n(&r)
                    }
                    SlotState::Computing => {
                        // A worker is mid-exponentiation: wait for it.
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        loop {
                            match std::mem::replace(&mut *state, SlotState::Computing) {
                                SlotState::Done(rn, r) => {
                                    self.log_witness(&r);
                                    break rn;
                                }
                                _ => {
                                    state = slot.done.wait(state).expect("slot poisoned");
                                }
                            }
                        }
                    }
                }
            }
            Err(r) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.log_witness(&r);
                self.pk.pow_n(&r)
            }
        }
    }

    /// Block until every currently queued precomputation has finished —
    /// a benchmarking helper separating the offline fill cost from the
    /// online (one-multiplication) encryption cost. Consumes nothing.
    pub fn wait_ready(&self) {
        let slots: Vec<Arc<Slot>> = {
            let st = self.state.lock().expect("nonce pool poisoned");
            st.queue.iter().map(Arc::clone).collect()
        };
        for slot in slots {
            let mut state = slot.state.lock().expect("slot poisoned");
            while !matches!(*state, SlotState::Done(..)) {
                state = slot.done.wait(state).expect("slot poisoned");
            }
        }
    }

    /// Take `k` nonce powers in stream order, then schedule a background
    /// top-up so the next batch finds the pool warm.
    pub fn take_many(self: &Arc<Self>, k: usize) -> Vec<BigUint> {
        let out = (0..k).map(|_| self.take()).collect();
        self.refill();
        out
    }

    /// The public key this pool serves.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn pk() -> PublicKey {
        fixtures::threshold_keys(3, 128).pk
    }

    #[test]
    fn pooled_and_inline_streams_are_identical() {
        // Same seed, pool on vs off: identical nonce-power sequences —
        // the determinism contract behind serial/parallel parity.
        let inline = NoncePool::new(pk(), 42, 0);
        let pooled = NoncePool::new(pk(), 42, 8);
        pooled.refill();
        for _ in 0..20 {
            assert_eq!(inline.take(), pooled.take());
        }
        let stats = pooled.stats();
        assert!(stats.hits + stats.misses == 20);
        assert_eq!(inline.stats().hits, 0);
    }

    #[test]
    fn take_many_matches_repeated_take() {
        let a = NoncePool::new(pk(), 7, 4);
        let b = NoncePool::new(pk(), 7, 4);
        let many = a.take_many(6);
        let singles: Vec<BigUint> = (0..6).map(|_| b.take()).collect();
        assert_eq!(many, singles);
    }

    #[test]
    fn disabled_pool_reports_only_misses() {
        let p = NoncePool::new(pk(), 1, 0);
        p.refill(); // no-op
        let _ = p.take();
        let stats = p.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.produced, 0);
        assert_eq!(stats.hit_rate(), Some(0.0));
    }

    #[test]
    fn retained_witnesses_open_the_delivered_powers() {
        // With retention on, the i-th drained witness r must satisfy
        // r^N = the i-th delivered power — across hit, steal and inline
        // paths — and retention must not perturb the stream.
        let key = pk();
        let plain = NoncePool::new(key.clone(), 5, 4);
        let retaining = NoncePool::new(key.clone(), 5, 4);
        retaining.retain_witnesses(true);
        retaining.refill(); // mix of worker-filled and inline takes
        let mut powers = Vec::new();
        for _ in 0..6 {
            let rn = retaining.take();
            assert_eq!(rn, plain.take(), "retention changed the stream");
            powers.push(rn);
        }
        let witnesses = retaining.drain_witnesses();
        assert_eq!(witnesses.len(), 6);
        for (r, rn) in witnesses.iter().zip(&powers) {
            assert_eq!(&key.pow_n(r), rn);
        }
        assert!(retaining.drain_witnesses().is_empty(), "drain must clear");
        retaining.retain_witnesses(false);
        let _ = retaining.take();
        assert!(
            retaining.drain_witnesses().is_empty(),
            "retention off logs nothing"
        );
        assert!(
            plain.drain_witnesses().is_empty(),
            "default pool logs nothing"
        );
    }

    #[test]
    fn encryption_with_pool_matches_rng_path() {
        // encrypt via pool nonces == encrypt via an identically seeded RNG.
        let key = pk();
        let pool = NoncePool::new(key.clone(), 99, 4);
        pool.refill();
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..8u64 {
            let x = BigUint::from_u64(i * 13);
            let direct = key.encrypt(&x, &mut rng);
            let via_pool = key.encrypt_with_rn(&x, &pool.take());
            assert_eq!(direct, via_pool, "nonce {i}");
        }
    }
}
