//! Threshold Paillier cryptosystem for the Pivot reproduction.
//!
//! The original Pivot implementation uses the `libhcs` C library; this crate
//! is a from-scratch Rust replacement implementing the same scheme:
//!
//! * Plain Paillier (`Gen`, `Enc`, `Dec`) over `Z_{N²}` with `g = N + 1`
//!   ([`keygen`], [`PublicKey::encrypt`], [`PrivateKey::decrypt`]).
//! * The additive homomorphisms of the paper's §2.1 — Eqn (1) ciphertext
//!   addition, Eqn (2) plaintext multiplication, Eqn (3) dot products — on
//!   [`Ciphertext`] and the vector helpers in [`vector`].
//! * The **full-threshold variant** (Fouque–Poupard–Stern / Damgård–Jurik
//!   style) used throughout Pivot: a trusted dealer Shamir-shares the secret
//!   exponent `β·M` so that decryption requires *all* `m` partial
//!   decryptions ([`threshold`]).
//! * Signed fixed-point plaintext encoding ([`encoding`]) matching the
//!   paper's "fixed-point integer representation" of float data.
//!
//! Key sizes follow the paper: 1024-bit `N` for efficiency experiments,
//! 512-bit for accuracy experiments; tests use smaller fixture keys from
//! [`fixtures`] to stay fast.

pub mod batch;
mod ciphertext;
pub mod encoding;
pub mod fixtures;
mod keygen;
pub mod nonce;
pub mod packing;
mod public;
pub mod threshold;
pub mod vector;
mod wire_impls;

pub use ciphertext::Ciphertext;
pub use keygen::{keygen, keypair_from_primes, KeyPair, PrivateKey};
pub use nonce::{NoncePool, NonceStats};
pub use packing::SlotCodec;
pub use public::PublicKey;
pub use threshold::{threshold_keygen, PartialDecryption, SecretKeyShare, ThresholdKeyPair};
