//! Deterministic key fixtures for tests and benchmarks.
//!
//! Safe-prime generation dominates threshold keygen cost, so tests share a
//! process-wide cache of safe primes per bit width (seeded deterministically
//! for reproducibility) and derive fresh threshold shares from them cheaply.

use crate::threshold::{threshold_from_safe_primes, ThresholdKeyPair};
use pivot_bignum::{prime, BigUint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type PrimeCache = Mutex<HashMap<u32, Arc<(BigUint, BigUint)>>>;

fn prime_cache() -> &'static PrimeCache {
    static CACHE: OnceLock<PrimeCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A deterministic pair of distinct safe primes with `bits/2` bits each,
/// cached per process.
pub fn safe_primes(n_bits: u32) -> Arc<(BigUint, BigUint)> {
    let mut cache = prime_cache().lock().expect("prime cache poisoned");
    Arc::clone(cache.entry(n_bits).or_insert_with(|| {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ n_bits as u64);
        let p = prime::gen_safe_prime(&mut rng, n_bits / 2);
        let q = loop {
            let q = prime::gen_safe_prime(&mut rng, n_bits.div_ceil(2));
            if q != p {
                break q;
            }
        };
        Arc::new((p, q))
    }))
}

/// Deterministic full-threshold key material for `m` parties with an
/// `n_bits` modulus (threshold = m, as Pivot requires).
pub fn threshold_keys(m: usize, n_bits: u32) -> ThresholdKeyPair {
    threshold_keys_with_threshold(m, m, n_bits)
}

/// Deterministic threshold key material with an explicit threshold `t`.
pub fn threshold_keys_with_threshold(m: usize, t: usize, n_bits: u32) -> ThresholdKeyPair {
    let primes = safe_primes(n_bits);
    let mut rng = StdRng::seed_from_u64(0xBEEF ^ (m as u64) << 8 ^ t as u64);
    loop {
        if let Some(kp) = threshold_from_safe_primes(&mut rng, &primes.0, &primes.1, m, t) {
            return kp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = threshold_keys(3, 128);
        let b = threshold_keys(3, 128);
        assert_eq!(a.pk.n(), b.pk.n());
    }

    #[test]
    fn fixture_keys_decrypt() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = threshold_keys(4, 128);
        let x = BigUint::from_u64(2026);
        let c = kp.pk.encrypt(&x, &mut rng);
        let partials: Vec<_> = kp.shares.iter().map(|s| s.partial_decrypt(&c)).collect();
        assert_eq!(kp.combiner.combine(&partials), x);
    }

    #[test]
    fn different_party_counts_share_modulus() {
        // Same primes, different sharing — cheap keygen across m.
        let a = threshold_keys(2, 128);
        let b = threshold_keys(5, 128);
        assert_eq!(a.pk.n(), b.pk.n());
        assert_eq!(a.shares.len(), 2);
        assert_eq!(b.shares.len(), 5);
    }
}
