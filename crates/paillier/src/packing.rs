//! Ciphertext packing à la SecureBoost+: many small plaintext *slots* in
//! one Paillier plaintext.
//!
//! A [`SlotCodec`] divides the plaintext space `Z_N` into `slots`
//! contiguous bit-fields of `slot_bits` each. Values packed into disjoint
//! slots ride one ciphertext through every additive homomorphic operation:
//! ciphertext addition adds slot-wise, multiplication by a shared scalar
//! scales every slot, and multiplication by `2^(slot_bits·k)` *shifts* a
//! ciphertext's payload up by `k` slots — which is how independently
//! computed packed values merge into one ciphertext without decryption.
//!
//! Correctness rests entirely on a **no-carry budget**: the caller must
//! guarantee that every slot's accumulated value stays below
//! `2^slot_bits` over the packed ciphertext's whole life (sums of
//! statistics, the Algorithm-2 signedness offset, every party's conversion
//! mask). The protocol derives `slot_bits` from that worst case in
//! `pivot_core::config` and the codec asserts individual inputs fit;
//! overflow of the *accumulated* sum cannot be detected under encryption,
//! which is why the bound is enforced at configuration-validation time.
//!
//! Signed values use **offset encoding**: a slot stores
//! `x + 2^offset_bits` with `|x| < 2^offset_bits`, so negatives never wrap
//! mod `N`. The offset is deliberately narrower than the slot: homomorphic
//! sums accumulate one offset *unit* per offset-encoded operand (and
//! `mul_plain` by `c` scales the unit count by `c`), and the accumulated
//! `units · 2^offset_bits` must fit the same no-carry budget.
//! [`SlotCodec::unpack_signed`] takes the final unit count and removes it
//! after decryption.

use crate::batch;
use crate::{Ciphertext, NoncePool, PublicKey};
use pivot_bignum::BigUint;
use std::sync::Arc;

/// Slot layout over the Paillier plaintext space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotCodec {
    slot_bits: u32,
    slots: usize,
    offset_bits: u32,
}

impl SlotCodec {
    /// A codec with `slots` fields of `slot_bits` each and the default
    /// signedness offset `2^(slot_bits−1)` (full-range signed slots; only
    /// safe when at most one offset unit ever accumulates). The caller is
    /// responsible for `slots · slot_bits` fitting the plaintext space —
    /// [`SlotCodec::max_slots`] gives the capacity.
    pub fn new(slot_bits: u32, slots: usize) -> SlotCodec {
        assert!(slot_bits >= 2, "slots must hold more than a bit");
        Self::with_offset(slot_bits, slots, slot_bits - 1)
    }

    /// A codec with an explicit offset width: signed payloads are bounded
    /// by `2^offset_bits`, leaving `slot_bits − offset_bits` headroom bits
    /// for offset-unit accumulation and carry-free slot sums.
    pub fn with_offset(slot_bits: u32, slots: usize, offset_bits: u32) -> SlotCodec {
        assert!(slots >= 1, "need at least one slot");
        assert!(
            offset_bits < slot_bits,
            "offset 2^{offset_bits} must fit the {slot_bits}-bit slot"
        );
        SlotCodec {
            slot_bits,
            slots,
            offset_bits,
        }
    }

    /// How many `slot_bits`-wide slots fit a `keysize`-bit modulus. One
    /// bit is reserved so the packed plaintext stays strictly below
    /// `2^(keysize−1) ≤ N` (the modulus may have exactly `keysize` bits).
    pub fn max_slots(keysize: u32, slot_bits: u32) -> usize {
        (keysize.saturating_sub(1) / slot_bits) as usize
    }

    /// Bits per slot.
    pub fn slot_bits(&self) -> u32 {
        self.slot_bits
    }

    /// Slots per ciphertext.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The offset-encoding constant `2^offset_bits`.
    pub fn offset(&self) -> BigUint {
        BigUint::pow2(self.offset_bits)
    }

    /// The public shift factor `2^(slot_bits·slot)`: `mul_plain` by this
    /// moves a packed payload up by `slot` slots.
    pub fn shift_factor(&self, slot: usize) -> BigUint {
        assert!(slot < self.slots, "shift beyond the slot capacity");
        BigUint::pow2(self.slot_bits * slot as u32)
    }

    /// Pack non-negative values (each `< 2^slot_bits`) into one plaintext,
    /// value `i` in slot `i`.
    pub fn pack(&self, values: &[BigUint]) -> BigUint {
        assert!(
            values.len() <= self.slots,
            "{} values exceed {} slots",
            values.len(),
            self.slots
        );
        let mut acc = BigUint::zero();
        for v in values.iter().rev() {
            assert!(
                v.bits() <= self.slot_bits,
                "slot value of {} bits exceeds the {}-bit slot",
                v.bits(),
                self.slot_bits
            );
            acc = &acc.shl_bits(self.slot_bits) + v;
        }
        acc
    }

    /// Unpack the first `count` slots of a decrypted plaintext.
    pub fn unpack(&self, packed: &BigUint, count: usize) -> Vec<BigUint> {
        assert!(count <= self.slots, "unpacking beyond the slot capacity");
        let mut rest = packed.clone();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let high = rest.shr_bits(self.slot_bits);
            out.push(&rest - &high.shl_bits(self.slot_bits));
            rest = high;
        }
        out
    }

    /// Pack signed values via offset encoding (`x + 2^offset_bits` per
    /// slot, one offset unit each). Magnitudes must stay below
    /// `2^offset_bits`.
    pub fn pack_signed(&self, values: &[i64]) -> BigUint {
        let offset = self.offset();
        let encoded: Vec<BigUint> = values
            .iter()
            .map(|&v| {
                let mag = BigUint::from_u64(v.unsigned_abs());
                assert!(
                    mag < offset,
                    "signed value {v} overflows the 2^{} offset range",
                    self.offset_bits
                );
                if v >= 0 {
                    &offset + &mag
                } else {
                    &offset - &mag
                }
            })
            .collect();
        self.pack(&encoded)
    }

    /// Unpack `count` offset-encoded slots carrying `offset_units`
    /// accumulated offsets each (1 after a pack, `k` after summing `k`
    /// offset-encoded operands, `k·c` after `mul_plain` by scalar `c`).
    pub fn unpack_signed(&self, packed: &BigUint, count: usize, offset_units: u64) -> Vec<i128> {
        let offset = &BigUint::from_u64(offset_units) * &self.offset();
        self.unpack(packed, count)
            .into_iter()
            .map(|slot| {
                if slot >= offset {
                    (&slot - &offset).to_u128().expect("slot fits u128") as i128
                } else {
                    -((&offset - &slot).to_u128().expect("slot fits u128") as i128)
                }
            })
            .collect()
    }

    /// Encrypt packed rows in one batch on the shared worker pool (nonce
    /// powers from the party's offline pool, stream order).
    pub fn encrypt_rows(
        &self,
        pk: &PublicKey,
        rows: &[Vec<BigUint>],
        nonces: &Arc<NoncePool>,
        threads: usize,
    ) -> Vec<Ciphertext> {
        let packed: Vec<BigUint> = rows.iter().map(|r| self.pack(r)).collect();
        batch::encrypt_batch(pk, &packed, nonces, threads)
    }
}

/// Element-wise addition of packed ciphertext vectors (slot-wise plaintext
/// addition; the caller's no-carry budget must cover the sums).
pub fn add_packed(pk: &PublicKey, a: &[Ciphertext], b: &[Ciphertext]) -> Vec<Ciphertext> {
    assert_eq!(a.len(), b.len(), "dimension mismatch in packed add");
    a.iter().zip(b).map(|(x, y)| pk.add(x, y)).collect()
}

/// Multiply every packed ciphertext by one shared plaintext scalar: every
/// slot of every element scales by `k` (offset units scale by `k` too).
pub fn mul_plain_packed(
    pk: &PublicKey,
    cts: &[Ciphertext],
    k: &BigUint,
    threads: usize,
) -> Vec<Ciphertext> {
    pivot_runtime::global().map(threads, cts, |c| pk.mul_plain(c, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::threshold::ThresholdKeyPair;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> ThresholdKeyPair {
        fixtures::threshold_keys(3, 128)
    }

    fn decrypt(kp: &ThresholdKeyPair, c: &Ciphertext) -> BigUint {
        let partials: Vec<_> = kp.shares.iter().map(|s| s.partial_decrypt(c)).collect();
        kp.combiner.combine(&partials)
    }

    #[test]
    fn pack_unpack_round_trip() {
        let codec = SlotCodec::new(20, 5);
        let values: Vec<BigUint> = [7u64, 0, (1 << 20) - 1, 42, 1]
            .iter()
            .map(|&v| BigUint::from_u64(v))
            .collect();
        let packed = codec.pack(&values);
        assert_eq!(codec.unpack(&packed, 5), values);
        // Partial unpack reads a prefix.
        assert_eq!(codec.unpack(&packed, 2), values[..2].to_vec());
    }

    #[test]
    fn max_slots_reserves_a_bit() {
        assert_eq!(SlotCodec::max_slots(256, 63), 4);
        assert_eq!(SlotCodec::max_slots(128, 63), 2);
        assert_eq!(SlotCodec::max_slots(64, 63), 1);
        assert_eq!(SlotCodec::max_slots(63, 63), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_slot_value_rejected() {
        SlotCodec::new(8, 4).pack(&[BigUint::from_u64(256)]);
    }

    #[test]
    fn homomorphic_slotwise_addition_and_shift() {
        let kp = keys();
        let codec = SlotCodec::new(16, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let a = codec.pack(&[1u64, 2, 3].map(BigUint::from_u64));
        let b = codec.pack(&[10u64, 20, 30].map(BigUint::from_u64));
        let ca = kp.pk.encrypt(&a, &mut rng);
        let cb = kp.pk.encrypt(&b, &mut rng);
        let sum = add_packed(&kp.pk, std::slice::from_ref(&ca), &[cb])[0].clone();
        assert_eq!(
            codec.unpack(&decrypt(&kp, &sum), 3),
            [11u64, 22, 33].map(BigUint::from_u64)
        );
        // mul_plain by the shift factor moves the payload up by one slot.
        let shifted = kp.pk.mul_plain(&ca, &codec.shift_factor(1));
        assert_eq!(
            codec.unpack(&decrypt(&kp, &shifted), 4),
            [0u64, 1, 2, 3].map(BigUint::from_u64)
        );
    }

    #[test]
    fn shared_scalar_scales_every_slot() {
        let kp = keys();
        let codec = SlotCodec::new(24, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let ct = kp
            .pk
            .encrypt(&codec.pack(&[5u64, 0, 99].map(BigUint::from_u64)), &mut rng);
        let scaled = mul_plain_packed(&kp.pk, &[ct], &BigUint::from_u64(1000), 2)[0].clone();
        assert_eq!(
            codec.unpack(&decrypt(&kp, &scaled), 3),
            [5000u64, 0, 99_000].map(BigUint::from_u64)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Signed slots through pack → homomorphic add + mul_plain →
        /// unpack. Budget: payloads |x|, |y| < 2^13 = offset, scalar
        /// c ≤ 16, so a slot accumulates at most
        /// 2c·2^13 + |x+y|·c < 2^19 + 2^18 < 2^20 — carry-free in 20-bit
        /// slots with 6 headroom bits over the offset.
        #[test]
        fn signed_slots_survive_homomorphic_linear_ops(
            xs in proptest::collection::vec(-8191i64..=8191, 1..5),
            ys in proptest::collection::vec(-8191i64..=8191, 1..5),
            c in 1u64..=16,
        ) {
            let codec = SlotCodec::with_offset(20, 4, 13);
            let k = xs.len().min(ys.len());
            let kp = keys();
            let mut rng = StdRng::seed_from_u64(11);
            let ca = kp.pk.encrypt(&codec.pack_signed(&xs[..k]), &mut rng);
            let cb = kp.pk.encrypt(&codec.pack_signed(&ys[..k]), &mut rng);
            let sum = kp.pk.add(&ca, &cb);
            let scaled = kp.pk.mul_plain(&sum, &BigUint::from_u64(c));
            let opened = decrypt(&kp, &scaled);
            let decoded = codec.unpack_signed(&opened, k, 2 * c);
            for i in 0..k {
                prop_assert_eq!(decoded[i], ((xs[i] + ys[i]) as i128) * c as i128);
            }
        }

        /// Plain (unsigned) pack → unpack round trip at arbitrary widths,
        /// including values exactly at the slot bound.
        #[test]
        fn pack_round_trips(w in 4u32..=64, raw in proptest::collection::vec(any::<u64>(), 1..7)) {
            let codec = SlotCodec::new(w, 6);
            let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
            let vals: Vec<BigUint> = raw.iter().map(|&v| BigUint::from_u64(v & mask)).collect();
            let packed = codec.pack(&vals);
            prop_assert_eq!(codec.unpack(&packed, vals.len()), vals);
        }

        /// Signed pack → unpack round trip with negatives near the bound
        /// (`±(2^(w−1) − 1)` is reachable and must survive).
        #[test]
        fn signed_pack_round_trips(w in 8u32..=63, raw in proptest::collection::vec(any::<i64>(), 1..7)) {
            let codec = SlotCodec::new(w, 6);
            let bound = 1i128 << (w - 1);
            let vals: Vec<i64> = raw
                .iter()
                .map(|&v| ((v as i128).rem_euclid(2 * bound - 1) - (bound - 1)) as i64)
                .collect();
            let packed = codec.pack_signed(&vals);
            let back = codec.unpack_signed(&packed, vals.len(), 1);
            for (a, b) in vals.iter().zip(&back) {
                prop_assert_eq!(*a as i128, *b);
            }
        }
    }
}
