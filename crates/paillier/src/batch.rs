//! Batched homomorphic operations over the shared worker pool.
//!
//! Every bulk Paillier operation of the protocols — encrypting indicator
//! vectors, masking, plaintext multiplication, partial decryption,
//! combination — is embarrassingly parallel across ciphertexts. These
//! entry points run them on the process-wide [`pivot_runtime`] worker pool
//! with a caller-supplied thread budget (`crypto_threads`; pass 1 for the
//! serial path) and draw encryption nonces from a party's [`NoncePool`] in
//! stream order, so the parallel output is **bit-identical** to the serial
//! output under the same seed.

use crate::nonce::NoncePool;
use crate::threshold::{Combiner, PartialDecryption, SecretKeyShare};
use crate::{Ciphertext, PublicKey};
use pivot_bignum::BigUint;
use std::sync::Arc;

/// Encrypt a batch of plaintexts. Nonce powers come from the pool (one
/// per value, stream order), so the online cost per ciphertext is one
/// modular multiplication.
pub fn encrypt_batch(
    pk: &PublicKey,
    values: &[BigUint],
    nonces: &Arc<NoncePool>,
    threads: usize,
) -> Vec<Ciphertext> {
    let rns = nonces.take_many(values.len());
    let items: Vec<(&BigUint, BigUint)> = values.iter().zip(rns).collect();
    pivot_runtime::global().map(threads, &items, |(x, rn)| pk.encrypt_with_rn(x, rn))
}

/// Re-randomize a batch of ciphertexts (one pool nonce each).
pub fn rerandomize_batch(
    pk: &PublicKey,
    cts: &[Ciphertext],
    nonces: &Arc<NoncePool>,
    threads: usize,
) -> Vec<Ciphertext> {
    let rns = nonces.take_many(cts.len());
    let items: Vec<(&Ciphertext, BigUint)> = cts.iter().zip(rns).collect();
    pivot_runtime::global().map(threads, &items, |(c, rn)| pk.rerandomize_with_rn(c, rn))
}

/// Element-wise binary masking (the serial `vector::mask_binary`): kept
/// entries are re-randomized, dropped entries become fresh encryptions of
/// zero. One pool nonce per element, in element order — exactly the draw
/// order of the serial path.
pub fn mask_binary_batch(
    pk: &PublicKey,
    cts: &[Ciphertext],
    mask: &[bool],
    nonces: &Arc<NoncePool>,
    threads: usize,
) -> Vec<Ciphertext> {
    assert_eq!(cts.len(), mask.len(), "dimension mismatch in mask");
    let rns = nonces.take_many(cts.len());
    let items: Vec<(&Ciphertext, bool, BigUint)> = cts
        .iter()
        .zip(mask)
        .zip(rns)
        .map(|((c, &keep), rn)| (c, keep, rn))
        .collect();
    pivot_runtime::global().map(threads, &items, |(c, keep, rn)| {
        if *keep {
            pk.rerandomize_with_rn(c, rn)
        } else {
            pk.encrypt_with_rn(&BigUint::zero(), rn)
        }
    })
}

/// Batched plaintext multiplication `[kᵢ·xᵢ]` (no randomness involved).
pub fn mul_plain_batch(
    pk: &PublicKey,
    cts: &[Ciphertext],
    ks: &[BigUint],
    threads: usize,
) -> Vec<Ciphertext> {
    assert_eq!(cts.len(), ks.len(), "dimension mismatch in mul_plain");
    let items: Vec<(&Ciphertext, &BigUint)> = cts.iter().zip(ks).collect();
    pivot_runtime::global().map(threads, &items, |(c, k)| pk.mul_plain(c, k))
}

/// Batched partial decryption — the paper's `-PP` knob (§8.3).
pub fn partial_decrypt_batch(
    share: &SecretKeyShare,
    cts: &[Ciphertext],
    threads: usize,
) -> Vec<PartialDecryption> {
    pivot_runtime::global().map(threads, cts, |ct| share.partial_decrypt(ct))
}

/// Batched combination: `partials[i]` holds the partial decryptions of
/// ciphertext `i` (one per party). Each combination runs the simultaneous
/// multi-exponentiation path of [`Combiner::combine`].
pub fn combine_batch(
    combiner: &Combiner,
    partials: &[Vec<PartialDecryption>],
    threads: usize,
) -> Vec<BigUint> {
    pivot_runtime::global().map(threads, partials, |parts| combiner.combine(parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::threshold::ThresholdKeyPair;
    use crate::vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keys() -> ThresholdKeyPair {
        fixtures::threshold_keys(3, 128)
    }

    fn nums(vals: &[u64]) -> Vec<BigUint> {
        vals.iter().map(|&v| BigUint::from_u64(v)).collect()
    }

    /// The core parity contract: every batch API at any thread count
    /// produces bit-identical ciphertexts to the serial path under the
    /// same nonce-stream seed.
    #[test]
    fn batch_apis_match_serial_bit_for_bit() {
        let kp = keys();
        let values = nums(&[0, 1, 7, 123, 99999, 5, 0, 42]);
        let mask: Vec<bool> = values.iter().map(|v| !v.is_zero()).collect();

        for threads in [1usize, 4] {
            // Serial reference: the plain RNG-driven entry points.
            let mut rng = StdRng::seed_from_u64(2024);
            let serial_enc = vector::encrypt_vec(&kp.pk, &values, &mut rng);
            let serial_masked = vector::mask_binary(&kp.pk, &serial_enc, &mask, &mut rng);
            let serial_rerand: Vec<Ciphertext> = serial_enc
                .iter()
                .map(|c| kp.pk.rerandomize(c, &mut rng))
                .collect();

            // Batched path: pool seeded identically, same draw order.
            let pool = NoncePool::new(kp.pk.clone(), 2024, if threads > 1 { 8 } else { 0 });
            pool.refill();
            let batch_enc = encrypt_batch(&kp.pk, &values, &pool, threads);
            let batch_masked = mask_binary_batch(&kp.pk, &batch_enc, &mask, &pool, threads);
            let batch_rerand = rerandomize_batch(&kp.pk, &batch_enc, &pool, threads);

            assert_eq!(batch_enc, serial_enc, "encrypt_batch threads={threads}");
            assert_eq!(batch_masked, serial_masked, "mask_binary threads={threads}");
            assert_eq!(batch_rerand, serial_rerand, "rerandomize threads={threads}");
        }
    }

    #[test]
    fn mul_plain_batch_matches_serial() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(9);
        let enc = vector::encrypt_vec(&kp.pk, &nums(&[1, 2, 3, 4]), &mut rng);
        let ks = nums(&[10, 0, 1, 7]);
        let serial: Vec<Ciphertext> = enc
            .iter()
            .zip(&ks)
            .map(|(c, k)| kp.pk.mul_plain(c, k))
            .collect();
        assert_eq!(mul_plain_batch(&kp.pk, &enc, &ks, 4), serial);
    }

    #[test]
    fn batched_threshold_decryption_round_trips() {
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(31);
        let values = nums(&[0, 1, 4096, 31337]);
        let cts = vector::encrypt_vec(&kp.pk, &values, &mut rng);

        // Every party partial-decrypts the batch in parallel…
        let all_partials: Vec<Vec<PartialDecryption>> = kp
            .shares
            .iter()
            .map(|s| partial_decrypt_batch(s, &cts, 4))
            .collect();
        // …then the per-ciphertext columns are combined in parallel.
        let per_ct: Vec<Vec<PartialDecryption>> = (0..cts.len())
            .map(|i| all_partials.iter().map(|p| p[i].clone()).collect())
            .collect();
        assert_eq!(combine_batch(&kp.combiner, &per_ct, 4), values);
        // Parallel partials equal serial partials element-wise.
        for (s, batch) in kp.shares.iter().zip(&all_partials) {
            for (ct, part) in cts.iter().zip(batch) {
                assert_eq!(s.partial_decrypt(ct).value, part.value);
            }
        }
    }

    #[test]
    fn dot_plain_multiexp_matches_decryption() {
        // dot_plain now routes through Montgomery::multi_pow; check the
        // homomorphic identity end to end with mixed weights.
        let kp = keys();
        let mut rng = StdRng::seed_from_u64(77);
        let plain = nums(&[3, 0, 1, 250, 17]);
        let weights = nums(&[9, 5, 1, 0, 100_000]);
        let enc = vector::encrypt_vec(&kp.pk, &plain, &mut rng);
        let dot = vector::dot_plain(&kp.pk, &enc, &weights);
        let partials: Vec<PartialDecryption> =
            kp.shares.iter().map(|s| s.partial_decrypt(&dot)).collect();
        let expect: u64 = 3 * 9 + 1 + 17 * 100_000;
        assert_eq!(kp.combiner.combine(&partials), BigUint::from_u64(expect));
    }
}
