//! Wire-codec implementations so ciphertexts and partial decryptions can
//! cross the party network.

use crate::threshold::PartialDecryption;
use crate::Ciphertext;
use pivot_bignum::BigUint;
use pivot_transport::wire::{Wire, WireError};

impl Wire for Ciphertext {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.raw().encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Ciphertext::from_raw(BigUint::decode(buf)?))
    }
}

impl Wire for PartialDecryption {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.index.encode(buf);
        self.value.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(PartialDecryption {
            index: usize::decode(buf)?,
            value: BigUint::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ciphertext_round_trip() {
        let c = Ciphertext::from_raw(BigUint::from_hex("deadbeef123456").unwrap());
        let encoded = c.to_wire();
        assert_eq!(Ciphertext::from_wire(&encoded).unwrap(), c);
    }

    #[test]
    fn partial_decryption_round_trip() {
        let p = PartialDecryption {
            index: 3,
            value: BigUint::from_u64(999),
        };
        let encoded = p.to_wire();
        let back = PartialDecryption::from_wire(&encoded).unwrap();
        assert_eq!(back.index, 3);
        assert_eq!(back.value, BigUint::from_u64(999));
    }
}
