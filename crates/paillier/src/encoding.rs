//! Signed fixed-point encoding of real values into the Paillier plaintext
//! space, matching the paper's "we convert the floating point datasets into
//! fixed-point integer representation" (§8).
//!
//! A real `x` is encoded as `round(x · 2^f) mod N`; negative values wrap to
//! the upper half of `Z_N`, and decoding treats anything above `N/2` as
//! negative. After a homomorphic multiplication by another encoded value the
//! scale doubles — [`FixedPointCodec::decode_f64_scaled`] takes the scale
//! level explicitly.

use crate::PublicKey;
use pivot_bignum::BigUint;

/// Default number of fractional bits used across the Pivot reproduction.
pub const DEFAULT_PRECISION: u32 = 16;

/// Encoder/decoder between `f64`/`i64` and `Z_N`.
#[derive(Clone)]
pub struct FixedPointCodec {
    n: BigUint,
    half_n: BigUint,
    /// Fractional bits.
    pub precision: u32,
}

impl FixedPointCodec {
    /// Codec bound to a public key's plaintext space.
    pub fn new(pk: &PublicKey, precision: u32) -> Self {
        FixedPointCodec {
            n: pk.n().clone(),
            half_n: pk.half_n().clone(),
            precision,
        }
    }

    /// Codec with the default precision.
    pub fn with_default(pk: &PublicKey) -> Self {
        Self::new(pk, DEFAULT_PRECISION)
    }

    /// Encode a signed integer (no fractional scaling).
    pub fn encode_i64(&self, v: i64) -> BigUint {
        if v >= 0 {
            BigUint::from_u64(v as u64)
        } else {
            &self.n - &BigUint::from_u64(v.unsigned_abs())
        }
    }

    /// Decode to a signed integer (values above `N/2` are negative).
    pub fn decode_i64(&self, v: &BigUint) -> i64 {
        if v > &self.half_n {
            let mag = &self.n - v;
            -(mag.to_u64().expect("magnitude fits i64") as i64)
        } else {
            v.to_u64().expect("value fits i64") as i64
        }
    }

    /// Decode to a signed i128 (for products of two encoded i64).
    pub fn decode_i128(&self, v: &BigUint) -> i128 {
        if v > &self.half_n {
            let mag = &self.n - v;
            -(mag.to_u128().expect("magnitude fits i128") as i128)
        } else {
            v.to_u128().expect("value fits i128") as i128
        }
    }

    /// Encode a real with `precision` fractional bits.
    pub fn encode_f64(&self, x: f64) -> BigUint {
        assert!(x.is_finite(), "cannot encode NaN/inf");
        let scaled = (x * (1u64 << self.precision) as f64).round();
        self.encode_i64(scaled as i64)
    }

    /// Decode a real at scale level 1 (one factor of `2^f`).
    pub fn decode_f64(&self, v: &BigUint) -> f64 {
        self.decode_f64_scaled(v, 1)
    }

    /// Decode a real whose scale is `2^(f·levels)` — after `levels - 1`
    /// homomorphic multiplications of encoded values.
    pub fn decode_f64_scaled(&self, v: &BigUint, levels: u32) -> f64 {
        let signed = self.decode_i128(v);
        signed as f64 / 2f64.powi((self.precision * levels) as i32)
    }

    /// The plaintext modulus this codec reduces into.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn codec() -> FixedPointCodec {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = keygen(&mut rng, 128);
        FixedPointCodec::with_default(&kp.pk)
    }

    #[test]
    fn i64_round_trip() {
        let c = codec();
        for v in [0i64, 1, -1, 42, -42, i32::MAX as i64, -(1 << 40)] {
            assert_eq!(c.decode_i64(&c.encode_i64(v)), v, "value {v}");
        }
    }

    #[test]
    fn f64_round_trip_within_precision() {
        let c = codec();
        for v in [0.0f64, 1.5, -2.25, 3.140625, -100.001, 65535.9] {
            let decoded = c.decode_f64(&c.encode_f64(v));
            assert!((decoded - v).abs() < 1e-4, "value {v} decoded {decoded}");
        }
    }

    #[test]
    fn additive_homomorphism_of_encoding() {
        // encode(a) + encode(b) mod N decodes to a + b (same scale).
        let c = codec();
        let a = c.encode_f64(1.5);
        let b = c.encode_f64(-0.75);
        let sum = (&a + &b).rem_of(c.modulus());
        assert!((c.decode_f64(&sum) - 0.75).abs() < 1e-4);
    }

    #[test]
    fn scaled_decode_after_product() {
        // encode(a) * encode(b) mod N decodes at level 2 to a*b.
        let c = codec();
        let a = c.encode_f64(3.0);
        let b = c.encode_f64(-1.25);
        let prod = (&a * &b).rem_of(c.modulus());
        assert!((c.decode_f64_scaled(&prod, 2) - -3.75).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        codec().encode_f64(f64::NAN);
    }
}
