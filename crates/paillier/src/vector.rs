//! Encrypted-vector helpers: the homomorphic dot products of paper Eqn (3)
//! and the PIR-style private selection of Theorem 2 (§5.2).

use crate::{Ciphertext, PublicKey};
use pivot_bignum::BigUint;
use rand::Rng;

/// Encrypt every element of a plaintext vector.
pub fn encrypt_vec<R: Rng + ?Sized>(
    pk: &PublicKey,
    values: &[BigUint],
    rng: &mut R,
) -> Vec<Ciphertext> {
    values.iter().map(|v| pk.encrypt(v, rng)).collect()
}

/// Homomorphic dot product `x ⊙ [v]` with a **binary** plaintext vector
/// (paper Eqn 3 where `x ∈ {0,1}^n` — the dominant case in Pivot: indicator
/// vectors selecting samples). Only ciphertext multiplications are needed.
pub fn dot_binary(pk: &PublicKey, enc: &[Ciphertext], select: &[bool]) -> Ciphertext {
    assert_eq!(enc.len(), select.len(), "dimension mismatch in dot product");
    // Seed the accumulator from the first selected element: multiplying
    // into the trivial 1 would cost one full Montgomery multiplication
    // per dot product for nothing (1·c ≡ c mod N²).
    let mut acc: Option<Ciphertext> = None;
    for (c, &keep) in enc.iter().zip(select) {
        if keep {
            acc = Some(match acc {
                None => c.clone(),
                Some(a) => pk.add(&a, c),
            });
        }
    }
    acc.unwrap_or_else(|| pk.trivial_zero().clone())
}

/// Homomorphic dot product `x ⊙ [v]` with an arbitrary plaintext vector
/// (paper Eqn 3): `Π [vᵢ]^{xᵢ} = [Σ xᵢ·vᵢ]`.
pub fn dot_plain(pk: &PublicKey, enc: &[Ciphertext], plain: &[BigUint]) -> Ciphertext {
    assert_eq!(enc.len(), plain.len(), "dimension mismatch in dot product");
    // Split the product: weight-1 terms are plain multiplications; the
    // rest form one simultaneous multi-exponentiation `Π cᵢ^{xᵢ}` whose
    // squaring chain is shared across every term (Shamir's trick) instead
    // of paying a full windowed `mul_plain` per ciphertext.
    let mut pow_pairs: Vec<(&BigUint, &BigUint)> = Vec::new();
    let mut acc: Option<Ciphertext> = None;
    for (c, x) in enc.iter().zip(plain) {
        if x.is_zero() {
            continue;
        }
        if x.is_one() {
            acc = Some(match acc {
                None => c.clone(),
                Some(a) => pk.add(&a, c),
            });
        } else {
            pow_pairs.push((c.raw(), x));
        }
    }
    if !pow_pairs.is_empty() {
        let product = Ciphertext::from_raw(pk.mont().multi_pow(&pow_pairs));
        acc = Some(match acc {
            None => product,
            Some(a) => pk.add(&a, &product),
        });
    }
    acc.unwrap_or_else(|| pk.trivial_zero().clone())
}

/// Element-wise homomorphic multiplication of an encrypted vector by a
/// plaintext binary vector — the paper's `βₖ ⊙ [α]`-style mask refinement,
/// where a 0 entry must become a fresh encryption of 0 (not a trivial one,
/// which would leak the position).
pub fn mask_binary<R: Rng + ?Sized>(
    pk: &PublicKey,
    enc: &[Ciphertext],
    mask: &[bool],
    rng: &mut R,
) -> Vec<Ciphertext> {
    assert_eq!(enc.len(), mask.len(), "dimension mismatch in mask");
    enc.iter()
        .zip(mask)
        .map(|(c, &keep)| {
            if keep {
                pk.rerandomize(c, rng)
            } else {
                pk.encrypt(&BigUint::zero(), rng)
            }
        })
        .collect()
}

/// Theorem 2 private selection: given the plaintext indicator **matrix**
/// `V (rows × cols)` and an encrypted one-hot column `[λ]` of length `cols`,
/// returns `[V·λ]` — the encryption of the selected column, without the
/// holder of `V` learning which column was taken.
pub fn matrix_select_binary(
    pk: &PublicKey,
    rows: &[Vec<bool>],
    enc_onehot: &[Ciphertext],
) -> Vec<Ciphertext> {
    rows.iter()
        .map(|row| dot_binary(pk, enc_onehot, row))
        .collect()
}

/// Same selection with arbitrary plaintext matrix entries (used to extract
/// the encrypted split *threshold* from the candidate-value table).
pub fn select_plain_values(
    pk: &PublicKey,
    values: &[BigUint],
    enc_onehot: &[Ciphertext],
) -> Ciphertext {
    dot_plain(pk, enc_onehot, values)
}

/// Homomorphic sum of an encrypted vector.
pub fn sum(pk: &PublicKey, enc: &[Ciphertext]) -> Ciphertext {
    // Seed the accumulator from the first element (see `dot_binary`).
    match enc.split_first() {
        None => pk.trivial_zero().clone(),
        Some((first, rest)) => {
            let mut acc = first.clone();
            for c in rest {
                acc = pk.add(&acc, c);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keygen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (crate::KeyPair, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        (keygen(&mut rng, 128), rng)
    }

    fn nums(vals: &[u64]) -> Vec<BigUint> {
        vals.iter().map(|&v| BigUint::from_u64(v)).collect()
    }

    #[test]
    fn binary_dot_product() {
        let (kp, mut rng) = setup();
        let enc = encrypt_vec(&kp.pk, &nums(&[10, 20, 30, 40]), &mut rng);
        let sel = [true, false, true, false];
        let c = dot_binary(&kp.pk, &enc, &sel);
        assert_eq!(kp.sk.decrypt(&c), BigUint::from_u64(40));
    }

    #[test]
    fn plain_dot_product() {
        let (kp, mut rng) = setup();
        let enc = encrypt_vec(&kp.pk, &nums(&[1, 2, 3]), &mut rng);
        let weights = nums(&[5, 0, 7]);
        let c = dot_plain(&kp.pk, &enc, &weights);
        assert_eq!(kp.sk.decrypt(&c), BigUint::from_u64(5 + 21));
    }

    #[test]
    fn empty_selection_is_zero() {
        let (kp, mut rng) = setup();
        let enc = encrypt_vec(&kp.pk, &nums(&[9, 9]), &mut rng);
        let c = dot_binary(&kp.pk, &enc, &[false, false]);
        assert_eq!(kp.sk.decrypt(&c), BigUint::zero());
    }

    #[test]
    fn mask_zeroes_hidden_entries() {
        let (kp, mut rng) = setup();
        let enc = encrypt_vec(&kp.pk, &nums(&[3, 4, 5]), &mut rng);
        let masked = mask_binary(&kp.pk, &enc, &[true, false, true], &mut rng);
        let dec: Vec<u64> = masked
            .iter()
            .map(|c| kp.sk.decrypt(c).to_u64().unwrap())
            .collect();
        assert_eq!(dec, vec![3, 0, 5]);
        // Re-randomization: ciphertexts differ from the originals.
        assert_ne!(masked[0].raw(), enc[0].raw());
    }

    #[test]
    fn theorem2_selects_matrix_column() {
        let (kp, mut rng) = setup();
        // V is 3×4; one-hot selects column 2.
        let rows = vec![
            vec![true, false, true, false],
            vec![false, false, false, true],
            vec![false, true, true, true],
        ];
        let onehot = encrypt_vec(&kp.pk, &nums(&[0, 0, 1, 0]), &mut rng);
        let picked = matrix_select_binary(&kp.pk, &rows, &onehot);
        let dec: Vec<u64> = picked
            .iter()
            .map(|c| kp.sk.decrypt(c).to_u64().unwrap())
            .collect();
        // Column 2 of V is (1, 0, 1).
        assert_eq!(dec, vec![1, 0, 1]);
    }

    #[test]
    fn select_value_by_onehot() {
        let (kp, mut rng) = setup();
        let values = nums(&[100, 200, 300]);
        let onehot = encrypt_vec(&kp.pk, &nums(&[0, 1, 0]), &mut rng);
        let c = select_plain_values(&kp.pk, &values, &onehot);
        assert_eq!(kp.sk.decrypt(&c), BigUint::from_u64(200));
    }

    #[test]
    fn vector_sum() {
        let (kp, mut rng) = setup();
        let enc = encrypt_vec(&kp.pk, &nums(&[1, 2, 3, 4]), &mut rng);
        assert_eq!(kp.sk.decrypt(&sum(&kp.pk, &enc)), BigUint::from_u64(10));
    }
}
