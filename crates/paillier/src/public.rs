//! The Paillier public key and encryption.

use crate::Ciphertext;
use pivot_bignum::{rng as brng, BigUint, ExponentSchedule, Montgomery};
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// Paillier public key `(N, g = N+1)` with a shared Montgomery context for
/// `N²` (the hot path of every homomorphic operation).
///
/// Cloning is cheap (`Arc` inside); the key is `Send + Sync` so all client
/// threads share one context.
#[derive(Clone)]
pub struct PublicKey {
    inner: Arc<PkInner>,
}

struct PkInner {
    n: BigUint,
    n2: BigUint,
    half_n: BigUint,
    mont_n2: Montgomery,
    /// `N − 1`: the negation exponent, cached so `neg` stops recomputing
    /// it per call.
    n_minus_1: BigUint,
    /// Window recoding of the fixed exponent `N`, precomputed once so the
    /// nonce power `r^N mod N²` — the dominant cost of every encryption,
    /// re-randomization and ZKP commitment — skips per-call exponent
    /// scanning ([`Montgomery::pow_scheduled`]).
    n_schedule: ExponentSchedule,
    /// The trivial encryption of zero (raw value 1), cached so vector
    /// accumulators stop re-deriving `encrypt_trivial(&zero)` per call.
    zero_ct: Ciphertext,
}

impl PublicKey {
    /// Build a public key from the modulus `N`.
    pub fn from_n(n: BigUint) -> Self {
        assert!(n.is_odd() && n.bits() >= 16, "implausible Paillier modulus");
        let n2 = &n * &n;
        let half_n = n.shr_bits(1);
        let mont_n2 = Montgomery::new(&n2);
        let n_minus_1 = &n - &BigUint::one();
        let n_schedule = ExponentSchedule::recode(&n);
        // (1+N)^0 · 1^N = 1 mod N².
        let zero_ct = Ciphertext::from_raw(BigUint::one());
        PublicKey {
            inner: Arc::new(PkInner {
                n,
                n2,
                half_n,
                mont_n2,
                n_minus_1,
                n_schedule,
                zero_ct,
            }),
        }
    }

    /// The modulus `N` (also the plaintext space size).
    pub fn n(&self) -> &BigUint {
        &self.inner.n
    }

    /// `N²` — the ciphertext space modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.inner.n2
    }

    /// `⌊N/2⌋`, the signed-encoding boundary.
    pub fn half_n(&self) -> &BigUint {
        &self.inner.half_n
    }

    /// Montgomery context modulo `N²`.
    pub(crate) fn mont(&self) -> &Montgomery {
        &self.inner.mont_n2
    }

    /// Bits of `N` (the paper's "keysize").
    pub fn keysize(&self) -> u32 {
        self.inner.n.bits()
    }

    /// The nonce power `r^N mod N²` via the cached window recoding of the
    /// fixed exponent `N` — bit-identical to `mont().pow(r, n)`.
    pub fn pow_n(&self, r: &BigUint) -> BigUint {
        self.inner.mont_n2.pow_scheduled(r, &self.inner.n_schedule)
    }

    /// Encrypt a plaintext in `[0, N)`.
    ///
    /// `c = (1+N)^x · r^N mod N²`, using the binomial identity
    /// `(1+N)^x ≡ 1 + xN (mod N²)` so only one exponentiation (`r^N`) is paid.
    pub fn encrypt<R: Rng + ?Sized>(&self, x: &BigUint, rng: &mut R) -> Ciphertext {
        let r = brng::gen_coprime(rng, self.n());
        self.encrypt_with(x, &r)
    }

    /// Encrypt with caller-supplied randomness (used by ZKP provers and
    /// deterministic tests).
    pub fn encrypt_with(&self, x: &BigUint, r: &BigUint) -> Ciphertext {
        // r^N mod N² via the cached fixed-exponent schedule.
        let rn = self.pow_n(r);
        self.encrypt_with_rn(x, &rn)
    }

    /// Encrypt with a *precomputed* nonce power `rn = r^N mod N²` (the
    /// offline-randomness fast path): one modular multiplication plus the
    /// binomial add — no online exponentiation.
    pub fn encrypt_with_rn(&self, x: &BigUint, rn: &BigUint) -> Ciphertext {
        let x = x.rem_of(self.n());
        if x.is_zero() {
            // (1+N)^0 = 1: the ciphertext is the nonce power itself.
            return Ciphertext::from_raw(rn.clone());
        }
        // (1+N)^x = 1 + xN mod N²
        let gx = (BigUint::one() + &x * self.n()).rem_of(self.n_squared());
        Ciphertext::from_raw(self.mont().mul(&gx, rn))
    }

    /// The trivial (deterministic, randomness = 1) encryption of `x`.
    /// Used for public constants; NOT semantically secure on its own.
    pub fn encrypt_trivial(&self, x: &BigUint) -> Ciphertext {
        if x.is_zero() {
            return self.inner.zero_ct.clone();
        }
        let x = x.rem_of(self.n());
        Ciphertext::from_raw((BigUint::one() + &x * self.n()).rem_of(self.n_squared()))
    }

    /// The cached trivial encryption of zero (raw value 1) — the identity
    /// of homomorphic addition.
    pub fn trivial_zero(&self) -> &Ciphertext {
        &self.inner.zero_ct
    }

    /// Homomorphic addition (paper Eqn 1): `[x1] ⊕ [x2] = [x1 + x2]`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext::from_raw(self.mont().mul(a.raw(), b.raw()))
    }

    /// Homomorphic plaintext multiplication (paper Eqn 2):
    /// `k ⊗ [x] = [k·x]`.
    pub fn mul_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext::from_raw(self.mont().pow(a.raw(), k))
    }

    /// Homomorphic subtraction: `[x1] ⊖ [x2] = [x1 - x2]` (mod `N`).
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let neg_b = self.neg(b);
        self.add(a, &neg_b)
    }

    /// Homomorphic negation: `[x] → [N - x]`.
    pub fn neg(&self, a: &Ciphertext) -> Ciphertext {
        // c^{N-1} = [ (N-1) x ] = [-x mod N]; exponent cached in PkInner.
        self.mul_plain(a, &self.inner.n_minus_1)
    }

    /// Re-randomize a ciphertext (multiply by a fresh encryption of zero).
    pub fn rerandomize<R: Rng + ?Sized>(&self, a: &Ciphertext, rng: &mut R) -> Ciphertext {
        let r = brng::gen_coprime(rng, self.n());
        let rn = self.pow_n(&r);
        self.rerandomize_with_rn(a, &rn)
    }

    /// Re-randomize with a precomputed nonce power `rn = r^N mod N²`.
    pub fn rerandomize_with_rn(&self, a: &Ciphertext, rn: &BigUint) -> Ciphertext {
        Ciphertext::from_raw(self.mont().mul(a.raw(), rn))
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey(keysize={})", self.keysize())
    }
}

impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.inner.n == other.inner.n
    }
}

impl Eq for PublicKey {}
