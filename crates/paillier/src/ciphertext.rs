//! Paillier ciphertexts.

use pivot_bignum::BigUint;
use std::fmt;

/// A Paillier ciphertext: an element of `Z_{N²}^*`.
///
/// All arithmetic lives on [`crate::PublicKey`] (which owns the Montgomery
/// context); `Ciphertext` itself is a thin, serializable wrapper. The paper
/// writes this as `[x]`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ciphertext {
    raw: BigUint,
}

impl Ciphertext {
    /// Wrap a raw ciphertext value (must already be reduced mod `N²`).
    pub fn from_raw(raw: BigUint) -> Self {
        Ciphertext { raw }
    }

    /// The raw group element.
    pub fn raw(&self) -> &BigUint {
        &self.raw
    }

    /// Consume into the raw group element.
    pub fn into_raw(self) -> BigUint {
        self.raw
    }

    /// Serialize as big-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.raw.to_bytes_be()
    }

    /// Deserialize from big-endian bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Ciphertext {
            raw: BigUint::from_bytes_be(bytes),
        }
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Ciphertexts are opaque; print a short fingerprint only.
        let hex = self.raw.to_hex();
        let head = &hex[..hex.len().min(12)];
        write!(f, "Ciphertext({head}…, {} bits)", self.raw.bits())
    }
}
