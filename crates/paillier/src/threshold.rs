//! Full-threshold Paillier decryption (Fouque–Poupard–Stern / Damgård–Jurik).
//!
//! A trusted dealer (the role `libhcs` plays in the original Pivot code)
//! generates a modulus from *safe primes* `p = 2p'+1`, `q = 2q'+1` and
//! Shamir-shares the secret exponent `d = β·M` (with `M = p'·q'`) over
//! `Z_{N·M}`. Decryption of `[x]`:
//!
//! 1. every party `i` publishes a partial decryption `cᵢ = c^{2Δsᵢ} mod N²`
//!    (`Δ = m!`),
//! 2. any `t` partials combine via integer Lagrange coefficients into
//!    `c' = Π cᵢ^{2λᵢ} = c^{4Δ²βM}`,
//! 3. `x = L(c') · (4Δ²θ)^{-1} mod N` with the public `θ = βM mod N`.
//!
//! Pivot uses the **full threshold** structure `t = m` (paper §2.1), so all
//! clients must participate; the implementation supports any `t ≤ m`.

use crate::keygen::l_function;
use crate::{Ciphertext, PublicKey};
use pivot_bignum::{mod_inverse, prime, rng as brng, BigInt, BigUint, ExponentSchedule, Sign};
use rand::Rng;
use std::sync::Arc;

/// Public combination parameters known to every client.
#[derive(Clone)]
pub struct Combiner {
    pk: PublicKey,
    /// `θ = βM mod N`.
    theta: BigUint,
    /// `(4Δ²θ)^{-1} mod N`, precomputed.
    inv_4d2_theta: BigUint,
    /// Number of parties `m`.
    pub n_parties: usize,
    /// Decryption threshold `t` (Pivot always sets `t = m`).
    pub threshold: usize,
    /// `Δ = m!`.
    delta: Arc<BigUint>,
}

/// One party's share of the threshold secret key.
#[derive(Clone)]
pub struct SecretKeyShare {
    /// 1-based party index (the Shamir evaluation point).
    pub index: usize,
    pk: PublicKey,
    /// `2Δsᵢ` — the partial-decryption exponent, precomputed once from the
    /// Shamir evaluation `sᵢ` instead of re-multiplied per ciphertext.
    two_delta_s: BigUint,
    /// The fixed exponent's sliding-window recoding, shared by every
    /// partial decryption this share ever performs (ROADMAP lever 3): the
    /// bit-scan happens once here, and per ciphertext only the odd-power
    /// table the digits actually reference is built.
    schedule: ExponentSchedule,
}

/// A partial decryption `cᵢ`, tagged with the producing party's index.
#[derive(Clone, Debug)]
pub struct PartialDecryption {
    pub index: usize,
    pub value: BigUint,
}

/// Dealer output: the public key, the combiner, and one share per party.
pub struct ThresholdKeyPair {
    pub pk: PublicKey,
    pub combiner: Combiner,
    pub shares: Vec<SecretKeyShare>,
}

/// Trusted-dealer threshold key generation.
///
/// `n_bits` is the paper's "keysize" (bits of `N`); `m` the number of
/// parties; `t` the decryption threshold (use `t = m` for Pivot).
pub fn threshold_keygen<R: Rng + ?Sized>(
    rng: &mut R,
    n_bits: u32,
    m: usize,
    t: usize,
) -> ThresholdKeyPair {
    assert!(m >= 2, "need at least two parties");
    assert!((1..=m).contains(&t), "threshold must be in 1..=m");
    loop {
        let p = prime::gen_safe_prime(rng, n_bits / 2);
        let q = prime::gen_safe_prime(rng, n_bits.div_ceil(2));
        if p == q {
            continue;
        }
        if let Some(kp) = threshold_from_safe_primes(rng, &p, &q, m, t) {
            return kp;
        }
    }
}

/// Threshold keygen from pre-generated safe primes (used by fixtures).
/// Returns `None` when the random β happens to share a factor with `N`
/// (retry with fresh randomness).
pub fn threshold_from_safe_primes<R: Rng + ?Sized>(
    rng: &mut R,
    p: &BigUint,
    q: &BigUint,
    m: usize,
    t: usize,
) -> Option<ThresholdKeyPair> {
    let one = BigUint::one();
    let n = p * q;
    let p_prime = (p - &one).shr_bits(1);
    let q_prime = (q - &one).shr_bits(1);
    let big_m = &p_prime * &q_prime;
    let nm = &n * &big_m;

    let beta = brng::gen_coprime(rng, &n);
    let d = &beta * &big_m; // the shared secret exponent
    let theta = d.rem_of(&n);
    // θ must be invertible mod N for combination to work.
    let delta = factorial(m);
    let four_d2_theta = (&(&BigUint::from_u64(4) * &(&delta * &delta)) * &theta).rem_of(&n);
    let inv_4d2_theta = mod_inverse(&four_d2_theta, &n)?;

    // Shamir polynomial of degree t-1 over Z_{NM} with f(0) = d.
    let mut coeffs = Vec::with_capacity(t);
    coeffs.push(d.rem_of(&nm));
    for _ in 1..t {
        coeffs.push(brng::gen_below(rng, &nm));
    }

    let pk = PublicKey::from_n(n);
    let delta = Arc::new(delta);
    let shares = (1..=m)
        .map(|i| {
            let s_i = eval_poly(&coeffs, i as u64, &nm);
            let two_delta_s = &(&BigUint::from_u64(2) * &*delta) * &s_i;
            let schedule = ExponentSchedule::recode(&two_delta_s);
            SecretKeyShare {
                index: i,
                pk: pk.clone(),
                two_delta_s,
                schedule,
            }
        })
        .collect();

    let combiner = Combiner {
        pk: pk.clone(),
        theta,
        inv_4d2_theta,
        n_parties: m,
        threshold: t,
        delta,
    };
    Some(ThresholdKeyPair {
        pk,
        combiner,
        shares,
    })
}

/// Horner evaluation of the sharing polynomial mod `nm`.
fn eval_poly(coeffs: &[BigUint], x: u64, nm: &BigUint) -> BigUint {
    let x = BigUint::from_u64(x);
    let mut acc = BigUint::zero();
    for c in coeffs.iter().rev() {
        acc = (&(&acc * &x) + c).rem_of(nm);
    }
    acc
}

fn factorial(m: usize) -> BigUint {
    let mut acc = BigUint::one();
    for i in 2..=m as u64 {
        acc.mul_limb(i);
    }
    acc
}

impl SecretKeyShare {
    /// Produce this party's partial decryption `cᵢ = c^{2Δsᵢ} mod N²`,
    /// replaying the share's precomputed window schedule (bit-identical
    /// to `pow(c, 2Δsᵢ)` — asserted by unit test and bignum proptest).
    pub fn partial_decrypt(&self, c: &Ciphertext) -> PartialDecryption {
        PartialDecryption {
            index: self.index,
            value: self.pk.mont().pow_scheduled(c.raw(), &self.schedule),
        }
    }

    /// The fixed partial-decryption exponent (exposed for parity tests).
    pub fn exponent(&self) -> &BigUint {
        &self.two_delta_s
    }
}

impl Combiner {
    /// The public key this combiner belongs to.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// The public `θ = βM mod N` (exposed for ZKP verification).
    pub fn theta(&self) -> &BigUint {
        &self.theta
    }

    /// Combine `t` (or more) partial decryptions into the plaintext.
    ///
    /// Panics if fewer than `threshold` distinct partials are supplied.
    pub fn combine(&self, partials: &[PartialDecryption]) -> BigUint {
        assert!(
            partials.len() >= self.threshold,
            "need at least {} partial decryptions, got {}",
            self.threshold,
            partials.len()
        );
        let subset = &partials[..self.threshold];
        let indices: Vec<i128> = subset.iter().map(|p| p.index as i128).collect();
        assert!(
            (1..indices.len()).all(|i| !indices[..i].contains(&indices[i])),
            "duplicate party index in partial decryptions"
        );

        let n2 = self.pk.n_squared();
        // Split `Π cᵢ^{2λᵢ}` by coefficient sign into two simultaneous
        // multi-exponentiations (shared squaring chain, Shamir's trick)
        // and pay a single modular inversion for the whole negative part
        // instead of one per negative coefficient.
        let mut exps: Vec<(BigUint, Sign)> = Vec::with_capacity(subset.len());
        for part in subset {
            // λᵢ = Δ · Π_{j≠i} j / (j - i)  — an integer thanks to Δ = m!.
            let lambda = lagrange_at_zero(&self.delta, part.index as i128, &indices);
            exps.push((two_lambda_abs(&lambda), lambda.sign()));
        }
        let pairs_of = |sign: Sign| -> Vec<(&BigUint, &BigUint)> {
            subset
                .iter()
                .zip(&exps)
                .filter(|(_, (_, s))| *s == sign)
                .map(|(p, (e, _))| (&p.value, e))
                .collect()
        };
        let pos = pairs_of(Sign::Positive);
        let neg = pairs_of(Sign::Negative);
        let mut c_prime = self.pk.mont().multi_pow(&pos);
        if !neg.is_empty() {
            let neg_prod = self.pk.mont().multi_pow(&neg);
            let inv = mod_inverse(&neg_prod, n2).expect("partial decryptions are units mod N²");
            c_prime = self.pk.mont().mul(&c_prime, &inv);
        }
        let l = l_function(&c_prime, self.pk.n());
        (&l * &self.inv_4d2_theta).rem_of(self.pk.n())
    }
}

/// `Δ · Π_{j∈S, j≠i} j / (j - i)` as an exact integer.
fn lagrange_at_zero(delta: &BigUint, i: i128, indices: &[i128]) -> BigInt {
    let mut num = BigInt::from(delta.clone());
    let mut den = BigInt::one();
    for &j in indices {
        if j == i {
            continue;
        }
        num = &num * &BigInt::from_i128(j);
        den = &den * &BigInt::from_i128(j - i);
    }
    // Exact division: Δ clears every denominator.
    let (q, r) = num.magnitude().div_rem(den.magnitude());
    assert!(r.is_zero(), "Lagrange coefficient must be integral");
    let sign = if num.is_negative() == den.is_negative() {
        Sign::Positive
    } else {
        Sign::Negative
    };
    if q.is_zero() {
        BigInt::zero()
    } else {
        BigInt::from_parts(sign, q)
    }
}

/// `|2λ|` as a BigUint exponent.
fn two_lambda_abs(lambda: &BigInt) -> BigUint {
    lambda.magnitude().shl_bits(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn small_threshold_keys(m: usize, t: usize) -> ThresholdKeyPair {
        let mut r = rng();
        // 64-bit safe primes keep unit tests fast.
        let p = prime::gen_safe_prime(&mut r, 64);
        let q = loop {
            let q = prime::gen_safe_prime(&mut r, 64);
            if q != p {
                break q;
            }
        };
        threshold_from_safe_primes(&mut r, &p, &q, m, t).expect("keygen")
    }

    #[test]
    fn full_threshold_round_trip() {
        let mut r = rng();
        let kp = small_threshold_keys(3, 3);
        for x in [0u64, 1, 12345, 1 << 40] {
            let x = BigUint::from_u64(x);
            let c = kp.pk.encrypt(&x, &mut r);
            let partials: Vec<_> = kp.shares.iter().map(|s| s.partial_decrypt(&c)).collect();
            assert_eq!(kp.combiner.combine(&partials), x);
        }
    }

    #[test]
    fn threshold_subset_suffices() {
        let mut r = rng();
        let kp = small_threshold_keys(5, 3);
        let x = BigUint::from_u64(777);
        let c = kp.pk.encrypt(&x, &mut r);
        // Any 3 of 5 shares decrypt — try a non-prefix subset.
        let partials: Vec<_> = [4usize, 1, 3]
            .iter()
            .map(|&i| kp.shares[i - 1].partial_decrypt(&c))
            .collect();
        assert_eq!(kp.combiner.combine(&partials), x);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_partials_rejected() {
        let mut r = rng();
        let kp = small_threshold_keys(3, 3);
        let c = kp.pk.encrypt(&BigUint::from_u64(1), &mut r);
        let partials: Vec<_> = kp
            .shares
            .iter()
            .take(2)
            .map(|s| s.partial_decrypt(&c))
            .collect();
        kp.combiner.combine(&partials);
    }

    #[test]
    fn homomorphic_sum_through_threshold_decryption() {
        let mut r = rng();
        let kp = small_threshold_keys(3, 3);
        let ca = kp.pk.encrypt(&BigUint::from_u64(30), &mut r);
        let cb = kp.pk.encrypt(&BigUint::from_u64(12), &mut r);
        let c = kp.pk.add(&ca, &cb);
        let partials: Vec<_> = kp.shares.iter().map(|s| s.partial_decrypt(&c)).collect();
        assert_eq!(kp.combiner.combine(&partials), BigUint::from_u64(42));
    }

    #[test]
    fn two_party_full_threshold() {
        let mut r = rng();
        let kp = small_threshold_keys(2, 2);
        let x = BigUint::from_u64(31337);
        let c = kp.pk.encrypt(&x, &mut r);
        let partials: Vec<_> = kp.shares.iter().map(|s| s.partial_decrypt(&c)).collect();
        assert_eq!(kp.combiner.combine(&partials), x);
    }

    #[test]
    fn scheduled_partial_decrypt_matches_direct_pow() {
        // The shared window schedule must reproduce pow(c, 2Δsᵢ) exactly.
        let mut r = rng();
        let kp = small_threshold_keys(3, 3);
        for x in [0u64, 1, 31337, 1 << 33] {
            let c = kp.pk.encrypt(&BigUint::from_u64(x), &mut r);
            for share in &kp.shares {
                assert_eq!(
                    share.partial_decrypt(&c).value,
                    kp.pk.mont().pow(c.raw(), share.exponent()),
                    "share {} x {x}",
                    share.index
                );
            }
        }
    }

    #[test]
    fn lagrange_coefficients_sum_property() {
        // Σ λᵢ(0) over the subset equals Δ (interpolating f ≡ 1).
        let delta = factorial(4);
        let indices = [1i128, 2, 3, 4];
        let mut sum = BigInt::zero();
        for &i in &indices {
            sum = &sum + &lagrange_at_zero(&delta, i, &indices);
        }
        assert_eq!(sum, BigInt::from(delta));
    }
}
