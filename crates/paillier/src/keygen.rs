//! Plain (non-threshold) Paillier key generation and decryption.
//!
//! The non-threshold scheme is used by unit tests and by the trusted dealer
//! inside [`crate::threshold`]; the Pivot protocols themselves only ever use
//! the threshold variant.

use crate::{Ciphertext, PublicKey};
use pivot_bignum::{lcm, mod_inverse, prime, BigUint};
use rand::Rng;

/// Paillier private key: `λ = lcm(p-1, q-1)` and `μ = λ^{-1} mod N`.
pub struct PrivateKey {
    pk: PublicKey,
    lambda: BigUint,
    mu: BigUint,
}

/// A freshly generated key pair.
pub struct KeyPair {
    pub pk: PublicKey,
    pub sk: PrivateKey,
}

/// Generate a Paillier key pair with an `n_bits`-bit modulus.
pub fn keygen<R: Rng + ?Sized>(rng: &mut R, n_bits: u32) -> KeyPair {
    assert!(n_bits >= 16, "modulus too small to be meaningful");
    loop {
        let p = prime::gen_prime(rng, n_bits / 2);
        let q = prime::gen_prime(rng, n_bits.div_ceil(2));
        if p == q {
            continue;
        }
        let n = &p * &q;
        if n.bits() != n_bits {
            continue;
        }
        let one = BigUint::one();
        let lambda = lcm(&(&p - &one), &(&q - &one));
        // g = N+1 ⇒ L(g^λ mod N²) = λ mod N, so μ = λ^{-1} mod N.
        let Some(mu) = mod_inverse(&lambda, &n) else {
            continue; // gcd(λ, N) ≠ 1 is astronomically unlikely; retry
        };
        let pk = PublicKey::from_n(n);
        return KeyPair {
            sk: PrivateKey {
                pk: pk.clone(),
                lambda,
                mu,
            },
            pk,
        };
    }
}

/// Build a key pair from known primes (used by fixtures and the dealer).
pub fn keypair_from_primes(p: &BigUint, q: &BigUint) -> KeyPair {
    let n = p * q;
    let one = BigUint::one();
    let lambda = lcm(&(p - &one), &(q - &one));
    let mu = mod_inverse(&lambda, &n).expect("gcd(λ, N) = 1 for valid primes");
    let pk = PublicKey::from_n(n);
    KeyPair {
        sk: PrivateKey {
            pk: pk.clone(),
            lambda,
            mu,
        },
        pk,
    }
}

impl PrivateKey {
    /// The matching public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// Decrypt: `x = L(c^λ mod N²) · μ mod N` with `L(u) = (u-1)/N`.
    pub fn decrypt(&self, c: &Ciphertext) -> BigUint {
        let u = self.pk.mont().pow(c.raw(), &self.lambda);
        let l = l_function(&u, self.pk.n());
        (&l * &self.mu).rem_of(self.pk.n())
    }
}

/// The Paillier `L` function: `L(u) = (u - 1) / N` (exact division).
pub(crate) fn l_function(u: &BigUint, n: &BigUint) -> BigUint {
    let (q, r) = (u - &BigUint::one()).div_rem(n);
    debug_assert!(r.is_zero(), "L-function input not ≡ 1 mod N");
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        for x in [0u64, 1, 42, 1 << 30] {
            let x = BigUint::from_u64(x);
            let c = kp.pk.encrypt(&x, &mut r);
            assert_eq!(kp.sk.decrypt(&c), x);
        }
    }

    #[test]
    fn homomorphic_addition() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        let a = BigUint::from_u64(123);
        let b = BigUint::from_u64(456);
        let ca = kp.pk.encrypt(&a, &mut r);
        let cb = kp.pk.encrypt(&b, &mut r);
        let sum = kp.pk.add(&ca, &cb);
        assert_eq!(kp.sk.decrypt(&sum), BigUint::from_u64(579));
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        let x = BigUint::from_u64(21);
        let c = kp.pk.encrypt(&x, &mut r);
        let doubled = kp.pk.mul_plain(&c, &BigUint::from_u64(2));
        assert_eq!(kp.sk.decrypt(&doubled), BigUint::from_u64(42));
    }

    #[test]
    fn homomorphic_subtraction_and_negation() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        let a = kp.pk.encrypt(&BigUint::from_u64(100), &mut r);
        let b = kp.pk.encrypt(&BigUint::from_u64(58), &mut r);
        assert_eq!(kp.sk.decrypt(&kp.pk.sub(&a, &b)), BigUint::from_u64(42));
        // Negation wraps mod N.
        let neg = kp.pk.neg(&b);
        let expect = kp.pk.n() - &BigUint::from_u64(58);
        assert_eq!(kp.sk.decrypt(&neg), expect);
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_ciphertext() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        let c = kp.pk.encrypt(&BigUint::from_u64(7), &mut r);
        let c2 = kp.pk.rerandomize(&c, &mut r);
        assert_ne!(c.raw(), c2.raw());
        assert_eq!(kp.sk.decrypt(&c2), BigUint::from_u64(7));
    }

    #[test]
    fn trivial_encryption_decrypts() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        let c = kp.pk.encrypt_trivial(&BigUint::from_u64(99));
        assert_eq!(kp.sk.decrypt(&c), BigUint::from_u64(99));
    }

    #[test]
    fn ciphertexts_are_probabilistic() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        let x = BigUint::from_u64(5);
        let c1 = kp.pk.encrypt(&x, &mut r);
        let c2 = kp.pk.encrypt(&x, &mut r);
        assert_ne!(c1.raw(), c2.raw(), "fresh randomness per encryption");
    }

    #[test]
    fn plaintext_reduced_mod_n() {
        let mut r = rng();
        let kp = keygen(&mut r, 128);
        let big = kp.pk.n() + &BigUint::from_u64(5);
        let c = kp.pk.encrypt(&big, &mut r);
        assert_eq!(kp.sk.decrypt(&c), BigUint::from_u64(5));
    }
}
