//! Property-based tests for the Paillier layer: homomorphism laws and
//! threshold-decryption round trips under random plaintexts.

use pivot_bignum::BigUint;
use pivot_paillier::{fixtures, keygen, KeyPair};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared 128-bit key pair (keygen dominates test time otherwise).
fn kp() -> &'static KeyPair {
    static KP: OnceLock<KeyPair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(404);
        keygen(&mut rng, 128)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn enc_dec_round_trip(x in any::<u64>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = kp();
        let x = BigUint::from_u64(x);
        let c = kp.pk.encrypt(&x, &mut rng);
        prop_assert_eq!(kp.sk.decrypt(&c), x);
    }

    #[test]
    fn additive_homomorphism(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = kp();
        let ca = kp.pk.encrypt(&BigUint::from_u64(a as u64), &mut rng);
        let cb = kp.pk.encrypt(&BigUint::from_u64(b as u64), &mut rng);
        let sum = kp.pk.add(&ca, &cb);
        prop_assert_eq!(kp.sk.decrypt(&sum), BigUint::from_u64(a as u64 + b as u64));
    }

    #[test]
    fn scalar_homomorphism(x in any::<u32>(), k in 0u32..1000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = kp();
        let c = kp.pk.encrypt(&BigUint::from_u64(x as u64), &mut rng);
        let scaled = kp.pk.mul_plain(&c, &BigUint::from_u64(k as u64));
        prop_assert_eq!(
            kp.sk.decrypt(&scaled),
            BigUint::from_u64(x as u64 * k as u64)
        );
    }

    #[test]
    fn sub_then_add_cancels(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = kp();
        let ca = kp.pk.encrypt(&BigUint::from_u64(a as u64), &mut rng);
        let cb = kp.pk.encrypt(&BigUint::from_u64(b as u64), &mut rng);
        let diff = kp.pk.sub(&ca, &cb);
        let back = kp.pk.add(&diff, &cb);
        prop_assert_eq!(kp.sk.decrypt(&back), BigUint::from_u64(a as u64));
    }

    #[test]
    fn pow_n_matches_generic_pow_mont(seed in any::<u64>()) {
        // The fixed-exponent schedule for r^N must be bit-identical to the
        // generic Montgomery ladder — `verification = "off"` transcripts
        // depend on it.
        let mut rng = StdRng::seed_from_u64(seed);
        let pk = &kp().pk;
        let r = pivot_bignum::rng::gen_coprime(&mut rng, pk.n());
        let scheduled = pk.pow_n(&r);
        let generic = pivot_bignum::mod_pow(&r, pk.n(), pk.n_squared());
        prop_assert_eq!(scheduled, generic);
    }

    #[test]
    fn rerandomization_invariant(x in any::<u32>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = kp();
        let x = BigUint::from_u64(x as u64);
        let c = kp.pk.encrypt(&x, &mut rng);
        let c2 = kp.pk.rerandomize(&c, &mut rng);
        prop_assert_ne!(c.raw(), c2.raw());
        prop_assert_eq!(kp.sk.decrypt(&c2), x);
    }
}

proptest! {
    // Threshold decryption is slower — fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn threshold_round_trip(x in any::<u64>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = fixtures::threshold_keys(3, 128);
        let x = BigUint::from_u64(x);
        let c = keys.pk.encrypt(&x, &mut rng);
        let partials: Vec<_> =
            keys.shares.iter().map(|s| s.partial_decrypt(&c)).collect();
        prop_assert_eq!(keys.combiner.combine(&partials), x);
    }
}
