//! Criterion bench for Figure 4c: training time vs features per client.
//! Expected shape: linear for both protocols, stable gap.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{run_training, Algo, BenchConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4c_training_vs_d");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for d in [2usize, 4, 6] {
        let cfg = BenchConfig {
            d_per_client: d,
            n: 60,
            b: 3,
            h: 2,
            classes: 2,
            keysize: 128,
            ..Default::default()
        };
        let data = cfg.classification_dataset();
        g.bench_function(format!("pivot_basic/d={d}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotBasic, &data))
        });
        g.bench_function(format!("pivot_enhanced/d={d}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotEnhanced, &data))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
