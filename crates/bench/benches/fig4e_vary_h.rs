//! Criterion bench for Figure 4e: training time vs maximum tree depth.
//! Expected shape: roughly doubles per extra level (2^h − 1 internal nodes).

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{run_training, Algo, BenchConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4e_training_vs_h");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for h in [1usize, 2, 3] {
        let cfg = BenchConfig {
            h,
            n: 60,
            d_per_client: 2,
            b: 3,
            classes: 2,
            keysize: 128,
            ..Default::default()
        };
        let data = cfg.classification_dataset();
        g.bench_function(format!("pivot_basic/h={h}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotBasic, &data))
        });
        g.bench_function(format!("pivot_enhanced/h={h}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotEnhanced, &data))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
