//! Criterion bench for Figure 4b: training time vs the number of samples.
//! Expected shape: Basic nearly flat, Enhanced linear in n.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{run_training, Algo, BenchConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_training_vs_n");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for n in [40usize, 80, 160] {
        let cfg = BenchConfig {
            n,
            d_per_client: 2,
            b: 3,
            h: 2,
            classes: 2,
            keysize: 128,
            ..Default::default()
        };
        let data = cfg.classification_dataset();
        g.bench_function(format!("pivot_basic/n={n}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotBasic, &data))
        });
        g.bench_function(format!("pivot_enhanced/n={n}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotEnhanced, &data))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
