//! Criterion bench for Figure 5: Pivot vs SPDZ-DT vs NPD-DT.
//! Expected shape: SPDZ-DT ≫ Pivot-Enhanced > Pivot-Basic ≫ NPD-DT.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{run_training, Algo, BenchConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_baselines");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let cfg = BenchConfig {
        n: 60,
        d_per_client: 2,
        b: 3,
        h: 2,
        classes: 2,
        keysize: 128,
        ..Default::default()
    };
    let data = cfg.classification_dataset();
    for algo in [
        Algo::PivotBasic,
        Algo::PivotEnhanced,
        Algo::SpdzDt,
        Algo::NpdDt,
    ] {
        g.bench_function(algo.label(), |b| b.iter(|| run_training(&cfg, algo, &data)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
