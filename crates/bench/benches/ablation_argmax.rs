//! Ablation (DESIGN.md §7): tournament argmax (log-depth, used by default)
//! vs the paper's sequential secure-maximum scan (§4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_mpc::{FixedConfig, MpcEngine, Share};
use pivot_transport::run_parties;
use std::time::Duration;

fn argmax_run(n_vals: usize, sequential: bool) {
    run_parties(3, |ep| {
        let mut e = MpcEngine::new(&ep, 42, FixedConfig::default());
        let vals: Vec<Share> = (0..n_vals)
            .map(|i| e.constant_f64((i % 17) as f64))
            .collect();
        let (idx, _) = if sequential {
            e.argmax_sequential(&vals)
        } else {
            e.argmax(&vals)
        };
        e.open(idx)
    });
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_argmax");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    for n in [8usize, 32] {
        g.bench_function(format!("tournament/{n}"), |b| {
            b.iter(|| argmax_run(n, false))
        });
        g.bench_function(format!("sequential/{n}"), |b| {
            b.iter(|| argmax_run(n, true))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
