//! Ablation (DESIGN.md §7): Montgomery exponentiation vs naive
//! square-and-multiply with division-based reduction — the substrate
//! choice underlying every Paillier operation.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bignum::{rng as brng, BigUint, Montgomery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn naive_modpow(base: &BigUint, exp: &BigUint, modulus: &BigUint) -> BigUint {
    let mut result = BigUint::one();
    let mut acc = base.rem_of(modulus);
    for i in 0..exp.bits() {
        if exp.bit(i) {
            result = (&result * &acc).rem_of(modulus);
        }
        acc = (&acc * &acc).rem_of(modulus);
    }
    result
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_montgomery");
    g.sample_size(20).measurement_time(Duration::from_secs(4));
    let mut rng = StdRng::seed_from_u64(9);
    for bits in [512u32, 1024] {
        let modulus = {
            let mut m = brng::gen_exact_bits(&mut rng, bits);
            if m.is_even() {
                m.add_assign_ref(&BigUint::one());
            }
            m
        };
        let base = brng::gen_below(&mut rng, &modulus);
        let exp = brng::gen_exact_bits(&mut rng, bits / 2);
        let ctx = Montgomery::new(&modulus);
        g.bench_function(format!("montgomery/{bits}b"), |b| {
            b.iter(|| ctx.pow(&base, &exp))
        });
        g.bench_function(format!("naive/{bits}b"), |b| {
            b.iter(|| naive_modpow(&base, &exp, &modulus))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
