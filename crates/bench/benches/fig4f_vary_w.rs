//! Criterion bench for Figure 4f: ensemble training time vs tree count W.
//! Expected order: GBDT-classification ≫ GBDT-regression ≈ RF.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{Algo, BenchConfig};
use pivot_core::ensemble::{train_gbdt, train_rf, GbdtProtocolParams, RfProtocolParams};
use pivot_core::party::PartyContext;
use pivot_data::partition_vertically;
use pivot_transport::run_parties;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4f_ensembles_vs_w");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    let cfg = BenchConfig {
        n: 40,
        d_per_client: 2,
        b: 3,
        h: 2,
        classes: 2,
        keysize: 128,
        ..Default::default()
    };
    let clf = cfg.classification_dataset();
    let reg = cfg.regression_dataset();
    for w in [2usize, 4] {
        let clf_part = partition_vertically(&clf, cfg.m, 0);
        let reg_part = partition_vertically(&reg, cfg.m, 0);
        let params = cfg.params(Algo::PivotBasic);
        g.bench_function(format!("rf_classification/W={w}"), |b| {
            b.iter(|| {
                run_parties(cfg.m, |ep| {
                    let view = clf_part.views[ep.id()].clone();
                    let mut ctx = PartyContext::setup(&ep, view, params.clone());
                    train_rf(
                        &mut ctx,
                        &RfProtocolParams {
                            trees: w,
                            ..Default::default()
                        },
                    )
                })
            })
        });
        g.bench_function(format!("gbdt_regression/W={w}"), |b| {
            b.iter(|| {
                run_parties(cfg.m, |ep| {
                    let view = reg_part.views[ep.id()].clone();
                    let mut ctx = PartyContext::setup(&ep, view, params.clone());
                    train_gbdt(
                        &mut ctx,
                        &GbdtProtocolParams {
                            rounds: w,
                            learning_rate: 0.3,
                        },
                    )
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
