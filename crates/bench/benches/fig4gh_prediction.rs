//! Criterion bench for Figures 4g/4h: prediction time per sample vs m and
//! h for the basic and enhanced protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{Algo, BenchConfig};
use pivot_core::party::PartyContext;
use pivot_core::{predict_basic, predict_enhanced, train_basic, train_enhanced};
use pivot_data::partition_vertically;
use pivot_transport::run_parties;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4gh_prediction");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    // 4g: vary m at h=2; 4h: vary h at m=3.
    for (label, m, h) in [
        ("4g/m=2", 2usize, 2usize),
        ("4g/m=4", 4, 2),
        ("4h/h=1", 3, 1),
        ("4h/h=3", 3, 3),
    ] {
        let cfg = BenchConfig {
            m,
            h,
            n: 40,
            d_per_client: 2,
            b: 3,
            classes: 2,
            keysize: 128,
            ..Default::default()
        };
        let data = cfg.classification_dataset();
        let partition = partition_vertically(&data, cfg.m, 0);

        let basic_params = cfg.params(Algo::PivotBasic);
        g.bench_function(format!("basic/{label}"), |b| {
            b.iter(|| {
                run_parties(cfg.m, |ep| {
                    let view = partition.views[ep.id()].clone();
                    let mut ctx = PartyContext::setup(&ep, view.clone(), basic_params.clone());
                    let tree = train_basic::train(&mut ctx);
                    predict_basic::predict(&mut ctx, &tree, &view.features[0])
                })
            })
        });
        let enh_params = cfg.params(Algo::PivotEnhanced);
        g.bench_function(format!("enhanced/{label}"), |b| {
            b.iter(|| {
                run_parties(cfg.m, |ep| {
                    let view = partition.views[ep.id()].clone();
                    let mut ctx = PartyContext::setup(&ep, view.clone(), enh_params.clone());
                    let tree = train_enhanced::train(&mut ctx);
                    predict_enhanced::predict(&mut ctx, &tree, &view.features[0])
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
