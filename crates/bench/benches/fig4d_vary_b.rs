//! Criterion bench for Figure 4d: training time vs max splits per feature.
//! Expected shape: linear for both protocols.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{run_training, Algo, BenchConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4d_training_vs_b");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for b_splits in [2usize, 4, 8] {
        let cfg = BenchConfig {
            b: b_splits,
            n: 60,
            d_per_client: 2,
            h: 2,
            classes: 2,
            keysize: 128,
            ..Default::default()
        };
        let data = cfg.classification_dataset();
        g.bench_function(format!("pivot_basic/b={b_splits}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotBasic, &data))
        });
        g.bench_function(format!("pivot_enhanced/b={b_splits}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotEnhanced, &data))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
