//! Criterion bench for Figure 4a: training time vs the number of clients.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_bench::{run_training, Algo, BenchConfig};
use std::time::Duration;

fn tiny(m: usize) -> BenchConfig {
    BenchConfig {
        m,
        n: 60,
        d_per_client: 2,
        b: 3,
        h: 2,
        classes: 2,
        keysize: 128,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4a_training_vs_m");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for m in [2usize, 3, 4] {
        let cfg = tiny(m);
        let data = cfg.classification_dataset();
        g.bench_function(format!("pivot_basic/m={m}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotBasic, &data))
        });
        g.bench_function(format!("pivot_enhanced/m={m}"), |b| {
            b.iter(|| run_training(&cfg, Algo::PivotEnhanced, &data))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
