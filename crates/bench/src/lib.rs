//! Shared harness for the Pivot benchmark suite.
//!
//! Every table and figure of the paper's §8 maps to one binary in
//! `src/bin/` (see DESIGN.md §4 for the index) and one Criterion bench in
//! `benches/`. This library holds the common machinery: scaled-down
//! default parameters (Table 4 shapes at laptop scale), dataset
//! construction, and timed SPMD protocol runs.

use pivot_core::baselines::{npd_dt, spdz_dt};
use pivot_core::{config::PivotParams, party::PartyContext, train_basic, train_enhanced};
use pivot_data::{partition_vertically, synth, Dataset, Task};
use pivot_transport::{run_parties_with, NetConfig};
use pivot_trees::TreeParams;
use std::time::{Duration, Instant};

/// Which training algorithm a run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Pivot basic protocol (§4).
    PivotBasic,
    /// Pivot basic with parallel threshold decryption (`-PP`).
    PivotBasicPp,
    /// Pivot enhanced protocol (§5).
    PivotEnhanced,
    /// Pivot enhanced with parallel threshold decryption (`-PP`).
    PivotEnhancedPp,
    /// Pure-MPC baseline.
    SpdzDt,
    /// Non-private distributed baseline.
    NpdDt,
}

impl Algo {
    pub fn label(&self) -> &'static str {
        match self {
            Algo::PivotBasic => "Pivot-Basic",
            Algo::PivotBasicPp => "Pivot-Basic-PP",
            Algo::PivotEnhanced => "Pivot-Enhanced",
            Algo::PivotEnhancedPp => "Pivot-Enhanced-PP",
            Algo::SpdzDt => "SPDZ-DT",
            Algo::NpdDt => "NPD-DT",
        }
    }
}

/// One evaluation configuration (the paper's Table 4 parameters).
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Clients `m`.
    pub m: usize,
    /// Samples `n`.
    pub n: usize,
    /// Features per client `d̄` (total `d = m·d̄`).
    pub d_per_client: usize,
    /// Max splits per feature `b`.
    pub b: usize,
    /// Max tree depth `h`.
    pub h: usize,
    /// Classes `c` (paper default 4).
    pub classes: usize,
    /// Paillier modulus bits.
    pub keysize: u32,
    /// Worker threads for the batched crypto runtime under `-PP`
    /// (paper §8.3: 6 cores).
    pub crypto_threads: usize,
    /// Dataset / dealer seed.
    pub seed: u64,
    /// Per-run network settings (LAN simulation + wedge timeout). The
    /// default reads the legacy `PIVOT_NET_*` environment variables once
    /// per config, so existing bench invocations keep working; sweeps can
    /// override per configuration instead of per process.
    pub net: NetConfig,
}

impl Default for BenchConfig {
    /// Laptop-scale defaults preserving Table 4's shape
    /// (m=3, d̄ and b smaller, n in the hundreds; `--paper-scale` lifts
    /// them — see EXPERIMENTS.md).
    fn default() -> Self {
        BenchConfig {
            m: 3,
            n: 200,
            d_per_client: 3,
            b: 4,
            h: 3,
            classes: 4,
            keysize: 256,
            crypto_threads: 6,
            seed: 0xBE7C4,
            net: NetConfig::from_env(),
        }
    }
}

impl BenchConfig {
    /// The paper's actual Table 4 defaults (long-running!).
    pub fn paper_scale() -> Self {
        BenchConfig {
            m: 3,
            n: 50_000,
            d_per_client: 15,
            b: 8,
            h: 4,
            classes: 4,
            keysize: 1024,
            crypto_threads: 6,
            seed: 0xBE7C4,
            net: NetConfig::from_env(),
        }
    }

    /// Generate the synthetic classification dataset for this config
    /// (sklearn-style, as in §8.1).
    pub fn classification_dataset(&self) -> Dataset {
        synth::make_classification(&synth::ClassificationSpec {
            samples: self.n,
            features: self.m * self.d_per_client,
            informative: (self.m * self.d_per_client).div_ceil(2),
            classes: self.classes,
            class_sep: 1.5,
            flip_y: 0.01,
            seed: self.seed,
        })
    }

    /// Synthetic regression dataset with the same shape.
    pub fn regression_dataset(&self) -> Dataset {
        synth::make_regression(&synth::RegressionSpec {
            samples: self.n,
            features: self.m * self.d_per_client,
            informative: (self.m * self.d_per_client).div_ceil(2),
            noise: 0.1,
            seed: self.seed,
        })
    }

    /// PivotParams for an algorithm under this config.
    pub fn params(&self, algo: Algo) -> PivotParams {
        let tree = TreeParams {
            max_depth: self.h,
            min_samples: 2,
            max_splits: self.b,
            stop_when_pure: false, // full trees, matching the paper's 2^h−1
        };
        let mut p = algo_params(algo, tree, self.keysize, self.seed);
        p.crypto_threads = self.crypto_threads;
        p
    }
}

/// The single source of algorithm-to-parameter policy, shared by the bench
/// harness and `pivot-cli`: enhanced variants get `PivotParams::enhanced()`
/// plus a keysize floor of 192 bits (the share-conversion mask needs
/// headroom, DESIGN.md §8), and the `-PP` variants switch on parallel
/// threshold decryption.
pub fn algo_params(algo: Algo, tree: TreeParams, keysize: u32, dealer_seed: u64) -> PivotParams {
    match algo {
        Algo::PivotEnhanced | Algo::PivotEnhancedPp => {
            let mut p = PivotParams::enhanced();
            p.tree = tree;
            p.keysize = keysize.max(192);
            p.parallel_decrypt = algo == Algo::PivotEnhancedPp;
            p.dealer_seed = dealer_seed;
            p
        }
        _ => PivotParams {
            tree,
            keysize,
            parallel_decrypt: algo == Algo::PivotBasicPp,
            dealer_seed,
            ..Default::default()
        },
    }
}

/// Outcome of one timed training run.
#[derive(Clone, Debug)]
pub struct TrainOutcome {
    pub wall: Duration,
    /// Threshold decryptions performed by party 0 (`Cd`).
    pub decryptions: u64,
    /// Paillier encryptions by party 0 (`Ce`).
    pub encryptions: u64,
    /// Secure multiplications (`Cs`) by party 0.
    pub mults: u64,
    /// Secure comparisons (`Cc`) by party 0.
    pub comparisons: u64,
    /// Bytes sent by party 0.
    pub bytes_sent: u64,
    /// Internal nodes of the trained tree.
    pub internal_nodes: usize,
}

/// Run one training session and time it (wall clock across all parties).
pub fn run_training(cfg: &BenchConfig, algo: Algo, data: &Dataset) -> TrainOutcome {
    let partition = partition_vertically(data, cfg.m, 0);
    let params = cfg.params(algo);
    let start = Instant::now();
    let results = run_parties_with(cfg.m, cfg.net.clone(), |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let internal = match algo {
            Algo::PivotBasic | Algo::PivotBasicPp => train_basic::train(&mut ctx).internal_count(),
            Algo::PivotEnhanced | Algo::PivotEnhancedPp => {
                train_enhanced::train(&mut ctx).internal_count()
            }
            Algo::SpdzDt => spdz_dt::train(&mut ctx).internal_count(),
            Algo::NpdDt => npd_dt::train(&mut ctx).internal_count(),
        };
        let (_, mults, comparisons, _) = ctx.engine.counters().snapshot();
        (
            internal,
            ctx.metrics.threshold_decryptions(),
            ctx.metrics.encryptions(),
            mults,
            comparisons,
            ctx.ep.stats().bytes_sent(),
        )
    });
    let wall = start.elapsed();
    let (internal, dec, enc, mults, cmps, bytes) = results[0];
    TrainOutcome {
        wall,
        decryptions: dec,
        encryptions: enc,
        mults,
        comparisons: cmps,
        bytes_sent: bytes,
        internal_nodes: internal,
    }
}

/// Time distributed prediction (`per-sample` average over `count` samples).
pub fn run_prediction(cfg: &BenchConfig, algo: Algo, data: &Dataset, count: usize) -> Duration {
    use pivot_core::{predict_basic, predict_enhanced};
    let partition = partition_vertically(data, cfg.m, 0);
    let params = cfg.params(algo);
    let count = count.min(data.num_samples());

    let elapsed: Vec<Duration> = run_parties_with(cfg.m, cfg.net.clone(), |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
        let samples: Vec<Vec<f64>> = (0..count).map(|i| view.features[i].clone()).collect();
        match algo {
            Algo::PivotEnhanced | Algo::PivotEnhancedPp => {
                let tree = train_enhanced::train(&mut ctx);
                let start = Instant::now();
                let _ = predict_enhanced::predict_batch(&mut ctx, &tree, &samples);
                start.elapsed()
            }
            Algo::NpdDt => {
                let tree = npd_dt::train(&mut ctx);
                // Non-private distributed prediction: clients exchange
                // their plaintext feature values, then walk the tree.
                let start = Instant::now();
                let d_total = ctx.feature_owners.len();
                for local in &samples {
                    let all = ctx.ep.exchange_all(local);
                    let mut full = vec![0.0f64; d_total];
                    for (client, vals) in all.iter().enumerate() {
                        let indices = if client == ctx.id() {
                            ctx.view.feature_indices.clone()
                        } else {
                            // Contiguous-block layout: recover indices
                            // from the ownership map.
                            ctx.feature_owners
                                .iter()
                                .enumerate()
                                .filter(|(_, &o)| o == client)
                                .map(|(j, _)| j)
                                .collect()
                        };
                        for (slot, &j) in indices.iter().enumerate() {
                            full[j] = vals[slot];
                        }
                    }
                    std::hint::black_box(tree.predict(&full));
                }
                start.elapsed()
            }
            _ => {
                let tree = train_basic::train(&mut ctx);
                let start = Instant::now();
                let _ = predict_basic::predict_batch(&mut ctx, &tree, &samples);
                start.elapsed()
            }
        }
    });
    elapsed[0] / count as u32
}

/// Parse `--paper-scale` (full Table 4 parameters) from the process args.
pub fn scale_from_args() -> BenchConfig {
    if std::env::args().any(|a| a == "--paper-scale") {
        BenchConfig::paper_scale()
    } else {
        BenchConfig::default()
    }
}

/// Parse `--sweep <name>` from the process args.
pub fn sweep_from_args(default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--sweep")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// Make a regression/classification `Dataset` into evaluation splits and
/// report accuracy or MSE (Table 3 metric).
pub fn table3_metric(task: Task, preds: &[f64], truth: &[f64]) -> f64 {
    match task {
        Task::Classification { .. } => pivot_data::metrics::accuracy(preds, truth),
        Task::Regression => pivot_data::metrics::mse(preds, truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_all_algorithms() {
        let cfg = BenchConfig {
            n: 40,
            d_per_client: 2,
            b: 3,
            h: 2,
            classes: 2,
            keysize: 128,
            ..Default::default()
        };
        let data = cfg.classification_dataset();
        for algo in [Algo::PivotBasic, Algo::SpdzDt, Algo::NpdDt] {
            let out = run_training(&cfg, algo, &data);
            assert!(out.internal_nodes >= 1, "{algo:?} produced a stump");
        }
    }

    #[test]
    fn parallel_variant_runs() {
        let cfg = BenchConfig {
            n: 30,
            d_per_client: 2,
            b: 3,
            h: 2,
            classes: 2,
            keysize: 128,
            ..Default::default()
        };
        let data = cfg.classification_dataset();
        let out = run_training(&cfg, Algo::PivotBasicPp, &data);
        assert!(out.decryptions > 0);
    }

    #[test]
    fn default_config_shapes() {
        let cfg = BenchConfig::default();
        let data = cfg.classification_dataset();
        assert_eq!(data.num_samples(), cfg.n);
        assert_eq!(data.num_features(), cfg.m * cfg.d_per_client);
        let paper = BenchConfig::paper_scale();
        assert_eq!(paper.n, 50_000);
        assert_eq!(paper.keysize, 1024);
    }
}
