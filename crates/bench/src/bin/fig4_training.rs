//! Figures 4a–4e — training time vs m, n, d̄, b, h for Pivot-Basic,
//! Pivot-Basic-PP, Pivot-Enhanced, Pivot-Enhanced-PP.
//!
//! Run: `cargo run --release -p pivot-bench --bin fig4_training -- --sweep m`
//! Sweeps: `m`, `n`, `d`, `b`, `h`, or `all`. Values are scaled down from
//! Table 4 by default; `--paper-scale` restores the paper's ranges (slow).
//!
//! Expected shapes (paper §8.3.1): Enhanced > Basic everywhere; Basic
//! nearly flat in n while Enhanced grows linearly; both linear in d̄ and
//! b; time ≈ doubles per extra depth level; `-PP` shrinks the gap.

use pivot_bench::{run_training, Algo, BenchConfig};

const ALGOS: [Algo; 4] = [
    Algo::PivotBasic,
    Algo::PivotBasicPp,
    Algo::PivotEnhanced,
    Algo::PivotEnhancedPp,
];

fn main() {
    let sweep = pivot_bench::sweep_from_args("all");
    let paper = std::env::args().any(|a| a == "--paper-scale");
    if sweep == "m" || sweep == "all" {
        sweep_m(paper);
    }
    if sweep == "n" || sweep == "all" {
        sweep_n(paper);
    }
    if sweep == "d" || sweep == "all" {
        sweep_d(paper);
    }
    if sweep == "b" || sweep == "all" {
        sweep_b(paper);
    }
    if sweep == "h" || sweep == "all" {
        sweep_h(paper);
    }
}

fn header(fig: &str, axis: &str) {
    println!();
    println!("Figure {fig} — training time vs {axis}");
    print!("{axis:>8}");
    for algo in ALGOS {
        print!(" {:>20}", algo.label());
    }
    println!();
}

fn run_row(value: usize, cfg: &BenchConfig) {
    let data = cfg.classification_dataset();
    print!("{value:>8}");
    for algo in ALGOS {
        let out = run_training(cfg, algo, &data);
        print!(" {:>17.2?}ms", out.wall.as_secs_f64() * 1000.0);
        let _ = out;
    }
    println!();
}

fn sweep_m(paper: bool) {
    header("4a", "m");
    let values: &[usize] = if paper {
        &[2, 3, 4, 6, 8, 10]
    } else {
        &[2, 3, 4, 6]
    };
    for &m in values {
        let cfg = BenchConfig { m, ..base(paper) };
        run_row(m, &cfg);
    }
}

fn sweep_n(paper: bool) {
    header("4b", "n");
    let values: &[usize] = if paper {
        &[5_000, 10_000, 50_000, 100_000, 200_000]
    } else {
        &[50, 100, 200, 400]
    };
    for &n in values {
        let cfg = BenchConfig { n, ..base(paper) };
        run_row(n, &cfg);
    }
}

fn sweep_d(paper: bool) {
    header("4c", "d̄");
    let values: &[usize] = if paper {
        &[5, 15, 30, 60, 120]
    } else {
        &[2, 3, 5, 8]
    };
    for &d in values {
        let cfg = BenchConfig {
            d_per_client: d,
            ..base(paper)
        };
        run_row(d, &cfg);
    }
}

fn sweep_b(paper: bool) {
    header("4d", "b");
    let values: &[usize] = if paper {
        &[2, 4, 8, 16, 32]
    } else {
        &[2, 4, 8]
    };
    for &b in values {
        let cfg = BenchConfig { b, ..base(paper) };
        run_row(b, &cfg);
    }
}

fn sweep_h(paper: bool) {
    header("4e", "h");
    let values: &[usize] = if paper {
        &[2, 3, 4, 5, 6]
    } else {
        &[1, 2, 3, 4]
    };
    for &h in values {
        let cfg = BenchConfig { h, ..base(paper) };
        run_row(h, &cfg);
    }
}

fn base(paper: bool) -> BenchConfig {
    if paper {
        BenchConfig::paper_scale()
    } else {
        BenchConfig::default()
    }
}
