//! Figures 5a/5b — Pivot vs the SPDZ-DT and NPD-DT baselines, varying m
//! (5a) and n (5b).
//!
//! Expected shapes (paper §8.3.3): SPDZ-DT grows much faster than both
//! Pivot protocols in m and n (up to 19.8×/37.5× over Pivot-Basic at the
//! sweep ends in the paper); Pivot-Enhanced sits between; NPD-DT is near
//! zero. The harness prints the measured speedup of each Pivot protocol
//! over SPDZ-DT.
//!
//! Run: `cargo run --release -p pivot-bench --bin fig5_baselines -- --sweep m`

use pivot_bench::{run_training, Algo, BenchConfig};

const ALGOS: [Algo; 4] = [
    Algo::PivotBasic,
    Algo::PivotEnhanced,
    Algo::SpdzDt,
    Algo::NpdDt,
];

fn main() {
    let sweep = pivot_bench::sweep_from_args("all");
    let paper = std::env::args().any(|a| a == "--paper-scale");

    if sweep == "m" || sweep == "all" {
        println!();
        println!("Figure 5a — training time vs m (baseline comparison)");
        print_header();
        let values: &[usize] = if paper {
            &[2, 3, 4, 6, 8, 10]
        } else {
            &[2, 3, 4]
        };
        for &m in values {
            let cfg = BenchConfig { m, ..base(paper) };
            print_row(m, &cfg);
        }
    }
    if sweep == "n" || sweep == "all" {
        println!();
        println!("Figure 5b — training time vs n (baseline comparison)");
        print_header();
        let values: &[usize] = if paper {
            &[5_000, 10_000, 50_000]
        } else {
            &[50, 100, 200]
        };
        for &n in values {
            let cfg = BenchConfig { n, ..base(paper) };
            print_row(n, &cfg);
        }
    }
}

fn print_header() {
    print!("{:>8}", "x");
    for algo in ALGOS {
        print!(" {:>17}", algo.label());
    }
    println!(" {:>14} {:>14}", "basic-speedup", "enh-speedup");
}

fn print_row(x: usize, cfg: &BenchConfig) {
    let data = cfg.classification_dataset();
    print!("{x:>8}");
    let mut times = Vec::new();
    for algo in ALGOS {
        let out = run_training(cfg, algo, &data);
        times.push(out.wall.as_secs_f64());
        print!(" {:>14.2}ms", out.wall.as_secs_f64() * 1000.0);
    }
    // Speedups of Pivot over SPDZ-DT (the paper's headline numbers).
    let basic_speedup = times[2] / times[0];
    let enh_speedup = times[2] / times[1];
    println!(" {:>13.1}x {:>13.1}x", basic_speedup, enh_speedup);
}

fn base(paper: bool) -> BenchConfig {
    if paper {
        BenchConfig::paper_scale()
    } else {
        // SPDZ-DT at n=200 with the default depth already takes a while;
        // shrink depth for the sweep.
        BenchConfig {
            h: 2,
            ..Default::default()
        }
    }
}
