//! Table 2 — theoretical cost analysis, validated empirically.
//!
//! Prints the measured operation counts (Ce encryptions/ops, Cd threshold
//! decryptions, Cs secure multiplications, Cc secure comparisons) for both
//! protocols next to the paper's asymptotic formulas, so the scaling
//! claims can be checked directly.
//!
//! Run: `cargo run --release -p pivot-bench --bin table2_opcounts`

use pivot_bench::{run_training, Algo};

fn main() {
    let cfg = pivot_bench::scale_from_args();
    let data = cfg.classification_dataset();
    let d = cfg.m * cfg.d_per_client;
    println!(
        "Table 2 — operation counts (measured at m={}, n={}, d̄={}, b={}, h={}, c={})",
        cfg.m, cfg.n, cfg.d_per_client, cfg.b, cfg.h, cfg.classes
    );
    println!();
    println!(
        "{:<18} {:>6} {:>12} {:>10} {:>12} {:>12} {:>12}",
        "protocol", "nodes", "Ce(enc)", "Cd", "Cs(mults)", "Cc(cmps)", "bytes"
    );
    for algo in [Algo::PivotBasic, Algo::PivotEnhanced] {
        let out = run_training(&cfg, algo, &data);
        println!(
            "{:<18} {:>6} {:>12} {:>10} {:>12} {:>12} {:>12}",
            algo.label(),
            out.internal_nodes,
            out.encryptions,
            out.decryptions,
            out.mults,
            out.comparisons,
            out.bytes_sent,
        );
    }
    println!();
    println!("Paper formulas (t = internal nodes):");
    println!("  Basic    training: O(n·c·d̄·b·t)·Ce + O(c·d·b·t)·(Cd+Cs) + O(d·b·t)·Cc");
    println!("  Enhanced training: adds O(n·t)·Cd and O(n·b·t)·Ce in the model update");
    println!(
        "  with n={}, c={}, d̄={}, d={}, b={}: c·d·b = {} (per-node Cd basic), n = {} (extra per-node Cd enhanced)",
        cfg.n,
        cfg.classes,
        cfg.d_per_client,
        d,
        cfg.b,
        cfg.classes * d * cfg.b,
        cfg.n
    );
}
