//! Table 3 — model accuracy: Pivot-DT/RF/GBDT vs their non-private
//! counterparts on matched-shape stand-ins for the paper's three UCI
//! datasets (see DESIGN.md §3 for the substitution argument).
//!
//! Reproduced claim: Pivot's accuracy is within a small gap of the
//! non-private baselines — the only loss channel is fixed-point rounding.
//!
//! Run: `cargo run --release -p pivot-bench --bin table3_accuracy`
//! (add `--paper-scale` for the full dataset sizes; slow).

use pivot_core::ensemble::{
    gbdt::predict_gbdt_batch, rf::predict_rf_batch, train_gbdt, train_rf, GbdtProtocolParams,
    RfProtocolParams,
};
use pivot_core::{config::PivotParams, party::PartyContext, train_basic};
use pivot_data::{metrics, partition_vertically, synth, Dataset, Task};
use pivot_transport::run_parties;
use pivot_trees::{train_tree, Gbdt, GbdtParams, RandomForest, RandomForestParams, TreeParams};

struct Row {
    dataset: &'static str,
    task: Task,
    pivot_dt: f64,
    np_dt: f64,
    pivot_rf: f64,
    np_rf: f64,
    pivot_gbdt: f64,
    np_gbdt: f64,
}

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    // Matched shapes: (bank 4521×17), (credit 30000×25), (energy 19735×29);
    // scaled down by default so the full table runs in minutes.
    let scale = |n: usize| if paper_scale { n } else { n.min(400) };
    let datasets: Vec<(&'static str, Dataset)> = vec![
        ("Bank market", synth::bank_market_like(scale(4521), 1)),
        ("Credit card", synth::credit_card_like(scale(30_000), 2)),
        ("Appliances energy", synth::energy_like(scale(19_735), 3)),
    ];

    let m = 3;
    let tree = TreeParams {
        max_depth: 4,
        max_splits: 8,
        ..Default::default()
    };
    println!(
        "Table 3 — accuracy (classification) / MSE (regression), {} runs",
        1
    );
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "dataset", "Pivot-DT", "NP-DT", "Pivot-RF", "NP-RF", "Pivot-GBDT", "NP-GBDT"
    );

    for (name, data) in datasets {
        let row = evaluate(name, &data, m, &tree);
        println!(
            "{:<20} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>11.4} {:>10.4}",
            row.dataset,
            row.pivot_dt,
            row.np_dt,
            row.pivot_rf,
            row.np_rf,
            row.pivot_gbdt,
            row.np_gbdt
        );
        let gap = (row.pivot_dt - row.np_dt).abs();
        let rel = gap / row.np_dt.abs().max(1e-9);
        assert!(
            rel < 0.2,
            "{}: Pivot-DT diverged from NP-DT by {rel:.1}% — shape violated",
            row.dataset
        );
        let _ = row.task;
    }
    println!();
    println!("Shape check passed: Pivot within a small gap of non-private baselines.");
}

fn evaluate(name: &'static str, data: &Dataset, m: usize, tree: &TreeParams) -> Row {
    let (train, test) = data.train_test_split(0.25);
    let test_samples: Vec<Vec<f64>> = (0..test.num_samples())
        .map(|i| test.sample(i).to_vec())
        .collect();
    let task = data.task();
    let metric = |preds: &[f64]| match task {
        Task::Classification { .. } => metrics::accuracy(preds, test.labels()),
        Task::Regression => metrics::mse(preds, test.labels()),
    };

    // Non-private baselines (accuracy run uses keysize 512 in the paper;
    // model structure is key-independent so we use the bench default).
    let np_dt = metric(&train_tree(&train, tree).predict_batch(&test_samples));
    let np_rf = metric(
        &RandomForest::train(
            &train,
            &RandomForestParams {
                trees: 4,
                tree: tree.clone(),
                ..Default::default()
            },
        )
        .predict_batch(&test_samples),
    );
    let np_gbdt = metric(
        &Gbdt::train(
            &train,
            &GbdtParams {
                rounds: 4,
                tree: tree.clone(),
                ..Default::default()
            },
        )
        .predict_batch(&test_samples),
    );

    // Pivot protocols.
    let params = PivotParams {
        tree: tree.clone(),
        keysize: 256,
        ..Default::default()
    };
    let train_part = partition_vertically(&train, m, 0);
    let test_part = partition_vertically(&test, m, 0);

    let pivot_dt = {
        let trees = run_parties(m, |ep| {
            let view = train_part.views[ep.id()].clone();
            let mut ctx = PartyContext::setup(&ep, view, params.clone());
            train_basic::train(&mut ctx)
        });
        metric(&trees[0].predict_batch(&test_samples))
    };

    let pivot_rf = {
        let rf = RfProtocolParams {
            trees: 4,
            ..Default::default()
        };
        let preds = run_parties(m, |ep| {
            let view = train_part.views[ep.id()].clone();
            let test_view = &test_part.views[ep.id()];
            let mut ctx = PartyContext::setup(&ep, view, params.clone());
            let model = train_rf(&mut ctx, &rf);
            let local: Vec<Vec<f64>> = (0..test_view.num_samples())
                .map(|i| test_view.features[i].clone())
                .collect();
            predict_rf_batch(&mut ctx, &model, &local)
        });
        metric(&preds[0])
    };

    let pivot_gbdt = {
        let g = GbdtProtocolParams {
            rounds: 4,
            learning_rate: 0.5,
        };
        let mut gp = params.clone();
        gp.tree.stop_when_pure = false;
        gp.tree.max_depth = tree.max_depth.min(3);
        let preds = run_parties(m, |ep| {
            let view = train_part.views[ep.id()].clone();
            let test_view = &test_part.views[ep.id()];
            let mut ctx = PartyContext::setup(&ep, view, gp.clone());
            let model = train_gbdt(&mut ctx, &g);
            let local: Vec<Vec<f64>> = (0..test_view.num_samples())
                .map(|i| test_view.features[i].clone())
                .collect();
            predict_gbdt_batch(&mut ctx, &model, &local)
        });
        metric(&preds[0])
    };

    Row {
        dataset: name,
        task,
        pivot_dt,
        np_dt,
        pivot_rf,
        np_rf,
        pivot_gbdt,
        np_gbdt,
    }
}
