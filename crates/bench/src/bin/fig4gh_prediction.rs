//! Figures 4g/4h — prediction time per sample vs m (4g) and h (4h) for
//! Pivot-Basic, Pivot-Enhanced, and NPD-DT.
//!
//! Expected shapes (paper §8.3.2): Basic grows linearly in m (round-robin
//! ring) but stays nearly flat in h; Enhanced is nearly flat in m but
//! grows with 2^h (secure comparisons per node); NPD-DT is ≈ free. The
//! basic/enhanced crossover sits at small h.
//!
//! Run: `cargo run --release -p pivot-bench --bin fig4gh_prediction -- --sweep m`

use pivot_bench::{run_prediction, Algo, BenchConfig};

const ALGOS: [Algo; 3] = [Algo::PivotBasic, Algo::PivotEnhanced, Algo::NpdDt];

fn main() {
    let sweep = pivot_bench::sweep_from_args("all");
    let paper = std::env::args().any(|a| a == "--paper-scale");
    let samples = 5;

    if sweep == "m" || sweep == "all" {
        println!();
        println!("Figure 4g — prediction time per sample vs m");
        print_header();
        let values: &[usize] = if paper {
            &[2, 3, 4, 6, 8, 10]
        } else {
            &[2, 3, 4, 6]
        };
        for &m in values {
            let cfg = BenchConfig { m, ..base(paper) };
            print_row(m, &cfg, samples);
        }
    }
    if sweep == "h" || sweep == "all" {
        println!();
        println!("Figure 4h — prediction time per sample vs h");
        print_header();
        let values: &[usize] = if paper {
            &[2, 3, 4, 5, 6]
        } else {
            &[1, 2, 3, 4]
        };
        for &h in values {
            let cfg = BenchConfig { h, ..base(paper) };
            print_row(h, &cfg, samples);
        }
    }
}

fn print_header() {
    print!("{:>6}", "x");
    for algo in ALGOS {
        print!(" {:>18}", algo.label());
    }
    println!();
}

fn print_row(x: usize, cfg: &BenchConfig, samples: usize) {
    let data = cfg.classification_dataset();
    print!("{x:>6}");
    for algo in ALGOS {
        let per_sample = run_prediction(cfg, algo, &data, samples);
        print!(" {:>15.3}ms", per_sample.as_secs_f64() * 1000.0);
    }
    println!();
}

fn base(paper: bool) -> BenchConfig {
    if paper {
        BenchConfig {
            n: 2_000,
            ..BenchConfig::paper_scale()
        }
    } else {
        BenchConfig {
            n: 80,
            ..Default::default()
        }
    }
}
