//! Figure 4f — ensemble training time vs the number of trees `W`:
//! RF / GBDT × classification / regression.
//!
//! Expected shape (paper §8.3.1): GBDT-classification ≫ GBDT-regression ≈
//! RF-classification > RF-regression; all linear in W.
//!
//! Run: `cargo run --release -p pivot-bench --bin fig4f_ensembles`

use pivot_bench::BenchConfig;
use pivot_core::ensemble::{train_gbdt, train_rf, GbdtProtocolParams, RfProtocolParams};
use pivot_core::party::PartyContext;
use pivot_data::partition_vertically;
use pivot_transport::run_parties;
use std::time::Instant;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper-scale");
    let values: &[usize] = if paper {
        &[2, 4, 8, 16, 32]
    } else {
        &[2, 4, 8]
    };
    let cfg = if paper {
        BenchConfig {
            n: 5_000,
            ..BenchConfig::paper_scale()
        }
    } else {
        BenchConfig {
            n: 80,
            h: 2,
            ..Default::default()
        }
    };

    println!(
        "Figure 4f — ensemble training time vs W (n={}, h={})",
        cfg.n, cfg.h
    );
    println!(
        "{:>4} {:>16} {:>16} {:>16} {:>16}",
        "W", "RF-clf", "RF-reg", "GBDT-clf", "GBDT-reg"
    );
    for &w in values {
        let rf_c = time_rf(&cfg, w, true);
        let rf_r = time_rf(&cfg, w, false);
        let gb_c = time_gbdt(&cfg, w, true);
        let gb_r = time_gbdt(&cfg, w, false);
        println!(
            "{:>4} {:>14.2}ms {:>14.2}ms {:>14.2}ms {:>14.2}ms",
            w,
            rf_c * 1000.0,
            rf_r * 1000.0,
            gb_c * 1000.0,
            gb_r * 1000.0
        );
    }
}

fn time_rf(cfg: &BenchConfig, w: usize, classification: bool) -> f64 {
    let data = if classification {
        cfg.classification_dataset()
    } else {
        cfg.regression_dataset()
    };
    let partition = partition_vertically(&data, cfg.m, 0);
    let params = cfg.params(pivot_bench::Algo::PivotBasic);
    let rf = RfProtocolParams {
        trees: w,
        ..Default::default()
    };
    let start = Instant::now();
    run_parties(cfg.m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        train_rf(&mut ctx, &rf)
    });
    start.elapsed().as_secs_f64()
}

fn time_gbdt(cfg: &BenchConfig, w: usize, classification: bool) -> f64 {
    let data = if classification {
        cfg.classification_dataset()
    } else {
        cfg.regression_dataset()
    };
    let partition = partition_vertically(&data, cfg.m, 0);
    let mut params = cfg.params(pivot_bench::Algo::PivotBasic);
    params.tree.stop_when_pure = false;
    let gbdt = GbdtProtocolParams {
        rounds: w,
        learning_rate: 0.3,
    };
    let start = Instant::now();
    run_parties(cfg.m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        train_gbdt(&mut ctx, &gbdt)
    });
    start.elapsed().as_secs_f64()
}
