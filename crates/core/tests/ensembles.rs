//! End-to-end tests for the ensemble extensions (§7): random forest and
//! GBDT with encrypted residual labels.

use pivot_core::ensemble::{
    gbdt::predict_gbdt_batch, rf::predict_rf_batch, train_gbdt, train_rf, GbdtProtocolParams,
    RfProtocolParams,
};
use pivot_core::{config::PivotParams, party::PartyContext};
use pivot_data::{metrics, partition_vertically, synth, Dataset, Task};
use pivot_transport::run_parties;
use pivot_trees::TreeParams;

fn params(tree: TreeParams) -> PivotParams {
    PivotParams {
        tree,
        keysize: 128,
        ..Default::default()
    }
}

#[test]
fn random_forest_classification() {
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 48,
        features: 6,
        informative: 4,
        classes: 2,
        class_sep: 2.5,
        flip_y: 0.0,
        seed: 31,
    });
    let m = 3;
    let p = params(TreeParams {
        max_depth: 2,
        max_splits: 3,
        ..Default::default()
    });
    let rf = RfProtocolParams {
        trees: 3,
        ..Default::default()
    };
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), p.clone());
        let model = train_rf(&mut ctx, &rf);
        let local: Vec<Vec<f64>> = (0..8).map(|i| view.features[i].clone()).collect();
        let preds = predict_rf_batch(&mut ctx, &model, &local);
        (model.trees.len(), preds)
    });
    let (count, preds) = &results[0];
    assert_eq!(*count, 3);
    for (c, p2) in &results[1..] {
        assert_eq!(c, count);
        assert_eq!(p2, preds);
    }
    // Majority vote should classify crisply separated data well.
    let truth: Vec<f64> = (0..8).map(|i| data.label(i)).collect();
    let acc = metrics::accuracy(preds, &truth);
    assert!(acc >= 0.75, "rf accuracy {acc}");
}

#[test]
fn random_forest_regression_mean() {
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 40,
        features: 4,
        informative: 2,
        noise: 0.01,
        seed: 77,
    });
    let m = 2;
    let p = params(TreeParams {
        max_depth: 2,
        max_splits: 3,
        ..Default::default()
    });
    let rf = RfProtocolParams {
        trees: 2,
        ..Default::default()
    };
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), p.clone());
        let model = train_rf(&mut ctx, &rf);
        let local: Vec<Vec<f64>> = (0..6).map(|i| view.features[i].clone()).collect();
        let preds = predict_rf_batch(&mut ctx, &model, &local);
        (model, preds)
    });
    let (model, preds) = &results[0];
    // Distributed prediction must equal the centralized mean over trees.
    for i in 0..6 {
        let central: f64 = model
            .trees
            .iter()
            .map(|t| t.predict(data.sample(i)))
            .sum::<f64>()
            / model.trees.len() as f64;
        assert!(
            (preds[i] - central).abs() < 1e-3,
            "sample {i}: {} vs {central}",
            preds[i]
        );
    }
}

#[test]
fn gbdt_regression_learns() {
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 40,
        features: 4,
        informative: 3,
        noise: 0.02,
        seed: 21,
    });
    let m = 2;
    let p = params(TreeParams {
        max_depth: 2,
        max_splits: 3,
        stop_when_pure: false,
        ..Default::default()
    });
    let g = GbdtProtocolParams {
        rounds: 3,
        learning_rate: 0.5,
    };
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), p.clone());
        let model = train_gbdt(&mut ctx, &g);
        let local: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        let preds = predict_gbdt_batch(&mut ctx, &model, &local);
        (model.forests[0].len(), preds)
    });
    let (rounds, preds) = &results[0];
    assert_eq!(*rounds, 3);
    for (r, p2) in &results[1..] {
        assert_eq!(r, rounds);
        assert_eq!(p2, preds);
    }
    // Boosted predictions must beat the mean baseline on training data.
    let mse = metrics::mse(preds, data.labels());
    let mean: f64 = data.labels().iter().sum::<f64>() / data.num_samples() as f64;
    let base_mse = metrics::mse(&vec![mean; data.num_samples()], data.labels());
    assert!(mse < base_mse, "gbdt mse {mse} vs baseline {base_mse}");
}

#[test]
fn gbdt_classification_one_vs_rest() {
    // Crisp two-feature data so 2 rounds suffice.
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..30 {
        let x0 = if i % 2 == 0 { -3.0 } else { 3.0 };
        features.push(vec![x0 + (i % 3) as f64 * 0.1, (i % 5) as f64]);
        labels.push(f64::from(i % 2 == 1));
    }
    let data = Dataset::new(features, labels, Task::Classification { classes: 2 });
    let m = 2;
    let p = params(TreeParams {
        max_depth: 2,
        max_splits: 3,
        stop_when_pure: false,
        ..Default::default()
    });
    let g = GbdtProtocolParams {
        rounds: 2,
        learning_rate: 0.8,
    };
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), p.clone());
        let model = train_gbdt(&mut ctx, &g);
        let local: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        predict_gbdt_batch(&mut ctx, &model, &local)
    });
    let acc = metrics::accuracy(&results[0], data.labels());
    assert!(acc >= 0.9, "gbdt classification accuracy {acc}");
}
