//! Dynamically packed Algorithm-2 conversion: several scalar ciphertexts
//! ride one threshold decryption through audited slots, and the recovered
//! additive shares must sum to the plaintexts mod p — including negative
//! encodings and the mod-p slack the enhanced protocol's ciphertexts
//! carry.

use pivot_bignum::BigUint;
use pivot_core::conversion::{packed_share_conversion, packed_share_conversion_groups};
use pivot_core::{config::PivotParams, party::PartyContext};
use pivot_data::{Dataset, Task, VerticalView};
use pivot_mpc::{Fp, Share, MODULUS};
use pivot_transport::run_parties;

fn toy_view(client: usize, m: usize) -> VerticalView {
    let data = Dataset::new(
        vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        vec![0.0, 1.0],
        Task::Classification { classes: 2 },
    );
    let part = pivot_data::partition_vertically(&data, m, 0);
    part.views[client].clone()
}

/// Deterministic ciphertext every party can rebuild locally: trivial
/// encryption of a signed value (negatives encode as `N − |x|`).
fn trivial_signed(ctx: &PartyContext<'_>, v: i128) -> pivot_paillier::Ciphertext {
    let pt = if v >= 0 {
        BigUint::from_u128(v as u128)
    } else {
        ctx.pk.n() - &BigUint::from_u128(v.unsigned_abs())
    };
    ctx.pk.encrypt_trivial(&pt)
}

fn expected_share(v: i128) -> Fp {
    let p = MODULUS as i128;
    Fp::new(v.rem_euclid(p) as u64)
}

fn open(per_party: &[Vec<Share>], idx: usize) -> Fp {
    per_party
        .iter()
        .map(|shares| shares[idx].0)
        .fold(Fp::ZERO, |acc, x| acc + x)
}

#[test]
fn packed_conversion_recovers_values_mod_p() {
    // keysize 512 with a 100-bit bound: slot audit gives ~102-bit slots,
    // so the conversion genuinely packs (4 slots) rather than falling
    // back to the scalar path.
    let params = PivotParams {
        keysize: 512,
        ..Default::default()
    };
    let m = 3;
    // Signed magnitudes below 2^100, including a slack multiple of p
    // (reduces away mod p) and values spilling across chunk boundaries.
    let values: Vec<i128> = vec![
        -12_345,
        777,
        5 * MODULUS as i128 + 42,
        (1i128 << 99) + 9,
        -(1i128 << 98),
        0,
        1,
    ];
    let results = run_parties(m, |ep| {
        let view = toy_view(ep.id(), m);
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let cts: Vec<_> = values.iter().map(|&v| trivial_signed(&ctx, v)).collect();
        packed_share_conversion(&mut ctx, &cts, 100)
    });
    for (i, &v) in values.iter().enumerate() {
        assert_eq!(open(&results, i), expected_share(v), "value {i}");
    }
}

#[test]
fn grouped_conversion_audits_each_width_separately() {
    let params = PivotParams {
        keysize: 512,
        ..Default::default()
    };
    let m = 2;
    // A wide group (Eqn-10-like quadratic slack, ~130 bits) and a narrow
    // one (§5.2 share sums, < m·p) settle in the same decryption round
    // with different slot widths.
    let wide: Vec<i128> = vec![(1i128 << 125) + 3, -(1i128 << 124)];
    let narrow: Vec<i128> = vec![MODULUS as i128 + 17, -99, 123_456];
    let results = run_parties(m, |ep| {
        let view = toy_view(ep.id(), m);
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let wide_cts: Vec<_> = wide.iter().map(|&v| trivial_signed(&ctx, v)).collect();
        let narrow_cts: Vec<_> = narrow.iter().map(|&v| trivial_signed(&ctx, v)).collect();
        packed_share_conversion_groups(&mut ctx, &[(&wide_cts, 126), (&narrow_cts, 63)])
    });
    for (i, &v) in wide.iter().enumerate() {
        let opened = results
            .iter()
            .map(|g| g[0][i].0)
            .fold(Fp::ZERO, |a, x| a + x);
        assert_eq!(opened, expected_share(v), "wide value {i}");
    }
    for (i, &v) in narrow.iter().enumerate() {
        let opened = results
            .iter()
            .map(|g| g[1][i].0)
            .fold(Fp::ZERO, |a, x| a + x);
        assert_eq!(opened, expected_share(v), "narrow value {i}");
    }
}

#[test]
fn scalar_fallback_when_slots_too_narrow() {
    // keysize 128 cannot fit two ~102-bit slots: the single-group entry
    // point must fall back to the scalar conversion and stay correct.
    let params = PivotParams {
        keysize: 128,
        ..Default::default()
    };
    let m = 2;
    let values: Vec<i128> = vec![-4242, 31_337];
    let results = run_parties(m, |ep| {
        let view = toy_view(ep.id(), m);
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let cts: Vec<_> = values.iter().map(|&v| trivial_signed(&ctx, v)).collect();
        packed_share_conversion(&mut ctx, &cts, 100)
    });
    for (i, &v) in values.iter().enumerate() {
        assert_eq!(open(&results, i), expected_share(v), "value {i}");
    }
}
