//! Tests for the evaluation baselines (SPDZ-DT, NPD-DT) and the
//! differential-privacy extension.

use pivot_core::baselines::{npd_dt, spdz_dt};
use pivot_core::dp::{train_dp, DpParams};
use pivot_core::{config::PivotParams, party::PartyContext};
use pivot_data::{partition_vertically, synth, Dataset, Task};
use pivot_transport::run_parties;
use pivot_trees::{train_tree, TreeParams};

fn params(tree: TreeParams) -> PivotParams {
    PivotParams {
        tree,
        keysize: 128,
        ..Default::default()
    }
}

fn crisp_dataset() -> Dataset {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        // Asymmetric group sizes (16 vs 8) keep every split gain strictly
        // distinct, so ±1-ulp truncation noise cannot flip a tie-break.
        let x0 = if i < 16 { 10.0 } else { 0.0 };
        let x1 = if i % 2 == 0 { -5.0 } else { 5.0 };
        features.push(vec![x0, x1, (i % 7) as f64]);
        labels.push(if x0 > 5.0 {
            1.0
        } else if x1 > 0.0 {
            1.0
        } else {
            0.0
        });
    }
    Dataset::new(features, labels, Task::Classification { classes: 2 })
}

#[test]
fn npd_dt_equals_centralized_cart() {
    // The non-private distributed baseline must match the centralized
    // trainer exactly — on classification and regression alike.
    let class_data = crisp_dataset();
    let reg_data = synth::make_regression(&synth::RegressionSpec {
        samples: 40,
        features: 4,
        informative: 2,
        noise: 0.05,
        seed: 13,
    });
    for data in [class_data, reg_data] {
        let tree_params = TreeParams {
            max_depth: 3,
            max_splits: 4,
            ..Default::default()
        };
        let reference = train_tree(&data, &tree_params);
        let partition = partition_vertically(&data, 3, 0);
        let p = params(tree_params);
        let trees = run_parties(3, |ep| {
            let view = partition.views[ep.id()].clone();
            let mut ctx = PartyContext::setup(&ep, view, p.clone());
            npd_dt::train(&mut ctx)
        });
        for tree in &trees {
            assert_eq!(tree, &reference, "NPD-DT must equal centralized CART");
        }
    }
}

#[test]
fn spdz_dt_matches_cart_on_crisp_data() {
    let data = crisp_dataset();
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        ..Default::default()
    };
    let reference = train_tree(&data, &tree_params);
    let partition = partition_vertically(&data, 2, 0);
    let p = params(tree_params);
    let trees = run_parties(2, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, p.clone());
        spdz_dt::train(&mut ctx)
    });
    for tree in &trees {
        assert_eq!(
            tree, &reference,
            "SPDZ-DT must reproduce the plaintext CART tree"
        );
    }
}

#[test]
fn spdz_dt_regression() {
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 30,
        features: 4,
        informative: 2,
        noise: 0.01,
        seed: 3,
    });
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 3,
        stop_when_pure: false,
        ..Default::default()
    };
    let partition = partition_vertically(&data, 2, 0);
    let p = params(tree_params.clone());
    let trees = run_parties(2, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, p.clone());
        spdz_dt::train(&mut ctx)
    });
    let reference = train_tree(&data, &tree_params);
    // Same split structure; leaf values agree to fixed-point precision.
    assert_eq!(trees[0].internal_count(), reference.internal_count());
    let samples: Vec<Vec<f64>> = (0..data.num_samples())
        .map(|i| data.sample(i).to_vec())
        .collect();
    let ref_preds = reference.predict_batch(&samples);
    let got_preds = trees[0].predict_batch(&samples);
    for (g, r) in got_preds.iter().zip(&ref_preds) {
        assert!((g - r).abs() < 1e-2, "prediction {g} vs {r}");
    }
}

#[test]
fn spdz_dt_costs_more_mpc_than_pivot() {
    // The whole point of Figure 5: SPDZ-DT pays vastly more secure
    // multiplications/comparisons than Pivot-Basic on the same task. The
    // gap is O(n) — use enough samples to see it.
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 120,
        features: 4,
        informative: 3,
        classes: 2,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 55,
    });
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        ..Default::default()
    };
    let partition = partition_vertically(&data, 2, 0);
    let p = params(tree_params);

    let pivot_ops = run_parties(2, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, p.clone());
        let _ = pivot_core::train_basic::train(&mut ctx);
        ctx.engine.counters().snapshot().1
    });
    let spdz_ops = run_parties(2, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, p.clone());
        let _ = spdz_dt::train(&mut ctx);
        ctx.engine.counters().snapshot().1
    });
    assert!(
        spdz_ops[0] > 3 * pivot_ops[0],
        "SPDZ-DT ({}) should do far more secure mults than Pivot ({})",
        spdz_ops[0],
        pivot_ops[0]
    );
}

#[test]
fn dp_training_produces_valid_tree() {
    let data = crisp_dataset();
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let partition = partition_vertically(&data, 2, 0);
    let p = params(tree_params);
    // Large ε ⇒ low noise ⇒ the tree should still be sensible.
    let dp = DpParams {
        epsilon_per_query: 8.0,
    };
    assert!((dp.total_budget(2) - 48.0).abs() < 1e-9);
    let trees = run_parties(2, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, p.clone());
        train_dp(&mut ctx, &dp)
    });
    // All parties hold the same DP tree (the mechanism is jointly sampled).
    assert_eq!(trees[0], trees[1]);
    // With generous budget the tree should classify most training samples.
    let preds: Vec<f64> = (0..data.num_samples())
        .map(|i| trees[0].predict(data.sample(i)))
        .collect();
    let acc = pivot_data::metrics::accuracy(&preds, data.labels());
    assert!(acc > 0.7, "dp tree accuracy {acc}");
}

#[test]
fn dp_noise_actually_randomizes_small_budget() {
    // With a tiny budget the exponential mechanism should (almost surely)
    // pick different splits across different dealer seeds.
    let data = crisp_dataset();
    let tree_params = TreeParams {
        max_depth: 1,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let partition = partition_vertically(&data, 2, 0);
    let dp = DpParams {
        epsilon_per_query: 0.01,
    };
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..4u64 {
        let p = PivotParams {
            tree: tree_params.clone(),
            keysize: 128,
            dealer_seed: 1000 + seed,
            ..Default::default()
        };
        let trees = run_parties(2, |ep| {
            let view = partition.views[ep.id()].clone();
            let mut ctx = PartyContext::setup(&ep, view, p.clone());
            train_dp(&mut ctx, &dp)
        });
        if let pivot_trees::Node::Internal {
            feature, threshold, ..
        } = &trees[0].nodes()[trees[0].root()]
        {
            distinct.insert((*feature, (threshold * 1000.0) as i64));
        }
    }
    assert!(
        distinct.len() > 1,
        "tiny ε must randomize the root split; got {distinct:?}"
    );
}
