//! End-to-end tests for the malicious-model verification plane: honest
//! runs release the identical model under every knob setting, spot
//! checking pays a fraction of the full verification cost, and a
//! deterministic `[adversary]` tampering is caught and attributed by
//! every party in the same round.

use pivot_core::{
    config::PivotParams, party::PartyContext, predict_basic, train_basic, AdversarySpec,
    Verification, VerificationCounters,
};
use pivot_data::{partition_vertically, synth, Dataset, Task};
use pivot_transport::{run_parties, try_run_parties_with, NetConfig, ProtocolError, RunFailure};
use pivot_trees::{DecisionTree, TreeParams};

fn crisp_dataset() -> Dataset {
    // Crisp margins (feature 0 decides the root) so the released tree is
    // deterministic and party 0 — the owner of feature 0 — wins the root
    // split, making the `update` phase adversary land deterministically.
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..16 {
        let x0 = if i < 10 { 10.0 } else { 0.0 };
        let x1 = if i % 2 == 0 { -5.0 } else { 5.0 };
        features.push(vec![x0, x1]);
        labels.push(if x0 > 5.0 {
            1.0
        } else if x1 > 0.0 {
            1.0
        } else {
            0.0
        });
    }
    Dataset::new(features, labels, Task::Classification { classes: 2 })
}

fn params_with(verification: Verification, adversary: Option<AdversarySpec>) -> PivotParams {
    PivotParams {
        tree: TreeParams {
            max_depth: 2,
            max_splits: 2,
            ..Default::default()
        },
        keysize: 128,
        verification,
        adversary,
        ..Default::default()
    }
}

/// Train + predict one batch; returns per-party (tree, predictions,
/// verification counters).
fn honest_run(
    data: &Dataset,
    m: usize,
    params: &PivotParams,
) -> Vec<(DecisionTree, Vec<f64>, VerificationCounters)> {
    let partition = partition_vertically(data, m, 0);
    run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let tree = train_basic::train(&mut ctx);
        let preds = predict_basic::predict_batch(&mut ctx, &tree, &samples);
        (tree, preds, ctx.metrics.verification())
    })
}

#[test]
fn honest_runs_release_the_same_model_under_every_knob() {
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 24,
        features: 4,
        informative: 3,
        classes: 2,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 21,
    });
    let m = 3;
    let off = honest_run(&data, m, &params_with(Verification::Off, None));
    let spot = honest_run(&data, m, &params_with(Verification::Spot(0.25), None));
    let full = honest_run(&data, m, &params_with(Verification::Full, None));

    // Off generates nothing and the counters stay zero.
    for (_, _, counters) in &off {
        assert_eq!(counters, &VerificationCounters::default());
    }
    // The released model and predictions are knob-independent.
    for runs in [&spot, &full] {
        for ((tree, preds, counters), (ref_tree, ref_preds, _)) in runs.iter().zip(&off) {
            assert_eq!(tree, ref_tree, "verification must not perturb the model");
            assert_eq!(preds, ref_preds);
            assert_eq!(counters.proofs_rejected, 0, "honest run rejected a proof");
            assert!(counters.proofs_generated > 0 || counters.proofs_verified > 0);
            assert!(counters.proof_bytes > 0 || counters.proofs_generated == 0);
        }
    }
    // Spot(0.25) skips most checks; Full skips none.
    for (_, _, counters) in &spot {
        assert!(
            counters.proofs_skipped > counters.proofs_verified,
            "spot(0.25) verified {} of {} commits",
            counters.proofs_verified,
            counters.proofs_verified + counters.proofs_skipped
        );
    }
    for (_, _, counters) in &full {
        assert_eq!(counters.proofs_skipped, 0);
        assert!(counters.proofs_verified > 0);
    }
}

/// Run a tampered session and assert every party raises `ProofRejected`
/// accusing `expect_party` in `expect_phase`.
fn assert_detected(data: &Dataset, m: usize, spec: &str, expect_kind: &str) {
    let adv = AdversarySpec::parse(spec).expect("valid adversary spec");
    let expect_party = adv.party;
    let expect_phase = adv.phase.clone();
    let params = params_with(Verification::Spot(1.0), Some(adv));
    let partition = partition_vertically(data, m, 0);
    let results = try_run_parties_with(m, NetConfig::default(), |ep| {
        let view = partition.views[ep.id()].clone();
        let samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let tree = train_basic::train(&mut ctx);
        predict_basic::predict_batch(&mut ctx, &tree, &samples)
    });
    assert_eq!(results.len(), m);
    for (observer, result) in results.into_iter().enumerate() {
        let failure = result.err().unwrap_or_else(|| {
            panic!("party {observer} did not detect tampering ({spec})");
        });
        let RunFailure::Protocol(ProtocolError::ProofRejected {
            party,
            observer: seen_by,
            phase,
            proof_kind,
            ..
        }) = failure
        else {
            panic!("party {observer}: expected ProofRejected, got {failure}");
        };
        assert_eq!(party, expect_party, "accused the wrong party");
        assert_eq!(seen_by, observer);
        assert_eq!(phase, expect_phase);
        assert_eq!(proof_kind, expect_kind, "caught by the wrong proof kind");
    }
}

#[test]
fn tampered_setup_commit_is_caught_and_attributed() {
    // The super client (party 0 after setup discovery) tampers its third
    // split-indicator encryption at setup.
    assert_detected(&crisp_dataset(), 2, "party 0 phase=setup index=2", "popk");
}

#[test]
fn tampered_label_mask_is_caught_and_attributed() {
    assert_detected(
        &crisp_dataset(),
        2,
        "party 0 phase=label_masks index=17",
        "popcm",
    );
}

#[test]
fn tampered_split_statistic_is_caught_and_attributed() {
    // Party 1 tampers one of its own pooled Eqn-7 statistics.
    assert_detected(&crisp_dataset(), 2, "party 1 phase=stats index=1", "pohdp");
}

#[test]
fn tampered_model_update_is_caught_and_attributed() {
    // Party 0 owns the crisp root feature, wins the root split, and
    // tampers one of its masked update vectors.
    assert_detected(&crisp_dataset(), 2, "party 0 phase=update index=3", "popcm");
}

#[test]
fn tampered_prediction_ring_is_caught_and_attributed() {
    // Party 1 (= m−1) tampers an η initialization commit in Algorithm 4.
    assert_detected(&crisp_dataset(), 2, "party 1 phase=predict index=5", "popk");
}

#[test]
fn tampered_final_prediction_is_caught_by_recompute() {
    // Party 0 tampers a final leaf dot product. Its predict commit space
    // is [masking commits: n·leaves][outputs: n], so aim past the η
    // stage: with ≤ 4 leaves and 16 samples the masking stage is at most
    // 64 commits; the recompute check addresses the tail.
    let data = crisp_dataset();
    let partition = partition_vertically(&data, 2, 0);
    let probe = run_parties(2, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params_with(Verification::Off, None));
        let tree = train_basic::train(&mut ctx);
        tree.leaf_paths().len()
    });
    let eta_commits = 16 * probe[0];
    assert_detected(
        &data,
        2,
        &format!("party 0 phase=predict index={eta_commits}"),
        "recompute",
    );
}
