//! End-to-end tests for the Pivot enhanced protocol (§5): concealed models
//! must classify like the basic protocol's plaintext models, while
//! revealing only split features — never thresholds or leaf labels.

use pivot_core::{
    config::PivotParams, model::ConcealedNode, party::PartyContext, predict_enhanced, train_basic,
    train_enhanced,
};
use pivot_data::{partition_vertically, synth, Dataset, Task};
use pivot_transport::run_parties;
use pivot_trees::TreeParams;

fn enhanced_params(tree: TreeParams) -> PivotParams {
    let mut p = PivotParams::enhanced();
    p.tree = tree;
    p.tree.stop_when_pure = false;
    p.keysize = 192;
    p
}

fn crisp_dataset() -> Dataset {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        // Asymmetric group sizes (16 vs 8) keep every split gain strictly
        // distinct, so ±1-ulp truncation noise cannot flip a tie-break.
        let x0 = if i < 16 { 10.0 } else { 0.0 };
        let x1 = if i % 2 == 0 { -5.0 } else { 5.0 };
        features.push(vec![x0, x1, (i % 7) as f64]);
        labels.push(if x0 > 5.0 {
            1.0
        } else if x1 > 0.0 {
            1.0
        } else {
            0.0
        });
    }
    Dataset::new(features, labels, Task::Classification { classes: 2 })
}

#[test]
fn enhanced_training_and_prediction() {
    let data = crisp_dataset();
    let m = 3;
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let params = enhanced_params(tree_params.clone());
    let partition = partition_vertically(&data, m, 0);

    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
        let tree = train_enhanced::train(&mut ctx);
        // Predict the training samples through the concealed model.
        let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        let preds = predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples);
        (tree.internal_count(), tree.leaf_count(), preds)
    });

    let (internals, leaves, preds) = &results[0];
    assert!(*internals >= 1, "tree must have split at least once");
    assert_eq!(*leaves, internals + 1);
    for (_, _, other) in &results[1..] {
        assert_eq!(preds, other, "all parties agree on predictions");
    }
    // Concealed-model predictions must equal the true labels on this
    // crisply separable data.
    let correct = preds
        .iter()
        .zip(data.labels())
        .filter(|(p, t)| (**p - **t).abs() < 0.5)
        .count();
    assert!(
        correct >= 22,
        "concealed model classified only {correct}/24 training samples"
    );
}

#[test]
fn enhanced_model_structure_is_concealed() {
    let data = crisp_dataset();
    let m = 2;
    let params = enhanced_params(TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    });
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        train_enhanced::train(&mut ctx)
    });
    let tree = &results[0];
    // The concealed model exposes features but only ciphertexts for
    // thresholds and leaf labels.
    for node in &tree.nodes {
        match node {
            ConcealedNode::Internal {
                enc_threshold,
                client,
                ..
            } => {
                assert!(*client < m);
                // A ciphertext, not a plain encoding: must exceed the
                // trivial encoding magnitude of any data value.
                assert!(enc_threshold.raw().bits() > 64);
            }
            ConcealedNode::Leaf { enc_value } => {
                assert!(enc_value.raw().bits() > 64);
            }
        }
    }
}

#[test]
fn enhanced_agrees_with_basic_on_predictions() {
    let data = crisp_dataset();
    let m = 2;
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let partition = partition_vertically(&data, m, 0);

    // Train basic (plaintext model) and enhanced (concealed model) on the
    // same data and compare predictions sample by sample.
    let basic_params = PivotParams {
        tree: tree_params.clone(),
        keysize: 128,
        ..Default::default()
    };
    let basic_trees = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, basic_params.clone());
        train_basic::train(&mut ctx)
    });

    let enh_params = enhanced_params(tree_params);
    let enh_preds = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), enh_params.clone());
        let tree = train_enhanced::train(&mut ctx);
        let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples)
    });

    let basic_preds: Vec<f64> = (0..data.num_samples())
        .map(|i| basic_trees[0].predict(data.sample(i)))
        .collect();
    assert_eq!(
        basic_preds, enh_preds[0],
        "basic and enhanced protocols must learn the same function here"
    );
}

#[test]
fn enhanced_regression() {
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 24,
        features: 4,
        informative: 2,
        noise: 0.01,
        seed: 17,
    });
    let m = 2;
    let params = enhanced_params(TreeParams {
        max_depth: 2,
        max_splits: 3,
        stop_when_pure: false,
        ..Default::default()
    });
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
        let tree = train_enhanced::train(&mut ctx);
        let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples)
    });
    // Predictions bounded by the normalized label range, and better than
    // the trivial mean predictor on training data.
    let preds = &results[0];
    assert!(preds.iter().all(|p| p.abs() <= 1.5), "{preds:?}");
    let mse = pivot_data::metrics::mse(preds, data.labels());
    let mean: f64 = data.labels().iter().sum::<f64>() / data.num_samples() as f64;
    let base: Vec<f64> = vec![mean; data.num_samples()];
    let base_mse = pivot_data::metrics::mse(&base, data.labels());
    assert!(
        mse < base_mse,
        "tree mse {mse} should beat mean baseline {base_mse}"
    );
}

#[test]
fn packed_enhanced_predicts_like_unpacked() {
    // Packed (level-wise) enhanced training must release a model that
    // predicts identically to the unpacked run's: split structure is
    // argmax-exact, and predictions reveal leaf-label equality without
    // opening the concealed ciphertexts.
    //
    // The dataset needs two properties, or the comparison is ill-posed:
    // every split-gain argmax must have a margin ≫ the ±1-ulp
    // probabilistic-truncation noise (whose dealer randomness aligns
    // differently under the level-wise schedule — near-tie data flips
    // structure even between two *unpacked* runs with different dealer
    // seeds), and no internal node may be pure (a pure node ties every
    // split at equal gain). A decision list with a few label flips keeps
    // margins macroscopic and every node impure.
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        let x0 = if i < 16 { 10.0 } else { 0.0 };
        let x1 = if i % 2 == 0 { -5.0 } else { 5.0 };
        features.push(vec![x0, x1, (i % 7) as f64]);
        labels.push(if i < 16 {
            // Impure left group: 14×1, 2×0, the zeros isolated by x2.
            if i == 0 || i == 7 {
                0.0
            } else {
                1.0
            }
        } else {
            (i % 2) as f64
        });
    }
    let data = Dataset::new(features, labels, Task::Classification { classes: 2 });
    let m = 3;
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let run = |params: PivotParams| {
        let partition = partition_vertically(&data, m, 0);
        run_parties(m, |ep| {
            let view = partition.views[ep.id()].clone();
            let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
            let tree = train_enhanced::train(&mut ctx);
            let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
                .map(|i| view.features[i].clone())
                .collect();
            let preds = predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples);
            (tree, preds, ctx.metrics.split_stat_ciphertexts())
        })
    };
    let unpacked = run(enhanced_params(tree_params.clone()));
    let mut packed_params = enhanced_params(tree_params);
    packed_params.packing = pivot_core::config::Packing::Auto;
    let packed = run(packed_params);

    let (u_tree, u_preds, u_stats) = &unpacked[0];
    let (p_tree, p_preds, p_stats) = &packed[0];
    assert_eq!(p_preds, u_preds, "packed predictions must match");
    assert_eq!(p_tree.internal_count(), u_tree.internal_count());
    // Same public structure (client, feature, arena shape).
    for (a, b) in p_tree.nodes.iter().zip(&u_tree.nodes) {
        match (a, b) {
            (
                ConcealedNode::Internal {
                    client,
                    feature_global,
                    left,
                    right,
                    ..
                },
                ConcealedNode::Internal {
                    client: rc,
                    feature_global: rfg,
                    left: rl,
                    right: rr,
                    ..
                },
            ) => assert_eq!((client, feature_global, left, right), (rc, rfg, rl, rr)),
            (ConcealedNode::Leaf { .. }, ConcealedNode::Leaf { .. }) => {}
            _ => panic!("structure mismatch"),
        }
    }
    // Packing cuts the pooled split-statistics ciphertext volume. (Total
    // decryptions are scale-dependent here: the per-level slack refresh
    // costs 2n conversions per node, which only amortizes once
    // total·stride ≫ n — see the packing baseline scenario.)
    assert!(
        p_stats < u_stats,
        "packed run should pool fewer split-stat ciphertexts ({p_stats} vs {u_stats})"
    );
    for (tree, preds, _) in &packed[1..] {
        assert_eq!(preds, p_preds);
        assert_eq!(tree.internal_count(), p_tree.internal_count());
    }
}

#[test]
fn bounded_prediction_comparisons_match_full_width() {
    // Under a bounded comparison policy the per-feature range contract
    // drives `ltz_vec_bounded` at prediction time; the predictions must
    // be identical to the full-width path while the predict-phase
    // comparison widths stay below `int_bits`.
    let data = crisp_dataset();
    let m = 2;
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let partition = partition_vertically(&data, m, 0);
    let run = |params: PivotParams| {
        run_parties(m, |ep| {
            let view = partition.views[ep.id()].clone();
            let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
            let tree = train_enhanced::train(&mut ctx);
            let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
                .map(|i| view.features[i].clone())
                .collect();
            let before = ctx.engine.comparison_snapshot();
            let preds = predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples);
            let after = ctx.engine.comparison_snapshot();
            // Widths exercised during prediction only.
            let predict_widths: Vec<u32> = after
                .widths
                .iter()
                .filter_map(|&(w, n)| {
                    let prior = before
                        .widths
                        .iter()
                        .find(|&&(pw, _)| pw == w)
                        .map_or(0, |&(_, pn)| pn);
                    (n > prior).then_some(w)
                })
                .collect();
            (preds, predict_widths)
        })
    };

    let full = run(enhanced_params(tree_params.clone()));
    let mut bounded_params = enhanced_params(tree_params);
    bounded_params.comparison_bits = pivot_core::CompareBits::Auto;
    let bounded = run(bounded_params);

    let int_bits = enhanced_params(TreeParams::default()).fixed.int_bits;
    for ((f_preds, f_widths), (b_preds, b_widths)) in full.iter().zip(&bounded) {
        assert_eq!(
            f_preds, b_preds,
            "range-contract comparisons changed a prediction"
        );
        assert!(
            f_widths.iter().all(|&w| w == int_bits),
            "full-width run used widths {f_widths:?}"
        );
        assert!(
            !b_widths.is_empty() && b_widths.iter().all(|&w| w < int_bits),
            "bounded run paid widths {b_widths:?} (int_bits = {int_bits})"
        );
    }
}
