//! End-to-end tests for the Pivot enhanced protocol (§5): concealed models
//! must classify like the basic protocol's plaintext models, while
//! revealing only split features — never thresholds or leaf labels.

use pivot_core::{
    config::PivotParams, model::ConcealedNode, party::PartyContext, predict_enhanced, train_basic,
    train_enhanced,
};
use pivot_data::{partition_vertically, synth, Dataset, Task};
use pivot_transport::run_parties;
use pivot_trees::TreeParams;

fn enhanced_params(tree: TreeParams) -> PivotParams {
    let mut p = PivotParams::enhanced();
    p.tree = tree;
    p.tree.stop_when_pure = false;
    p.keysize = 192;
    p
}

fn crisp_dataset() -> Dataset {
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        // Asymmetric group sizes (16 vs 8) keep every split gain strictly
        // distinct, so ±1-ulp truncation noise cannot flip a tie-break.
        let x0 = if i < 16 { 10.0 } else { 0.0 };
        let x1 = if i % 2 == 0 { -5.0 } else { 5.0 };
        features.push(vec![x0, x1, (i % 7) as f64]);
        labels.push(if x0 > 5.0 {
            1.0
        } else if x1 > 0.0 {
            1.0
        } else {
            0.0
        });
    }
    Dataset::new(features, labels, Task::Classification { classes: 2 })
}

#[test]
fn enhanced_training_and_prediction() {
    let data = crisp_dataset();
    let m = 3;
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let params = enhanced_params(tree_params.clone());
    let partition = partition_vertically(&data, m, 0);

    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
        let tree = train_enhanced::train(&mut ctx);
        // Predict the training samples through the concealed model.
        let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        let preds = predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples);
        (tree.internal_count(), tree.leaf_count(), preds)
    });

    let (internals, leaves, preds) = &results[0];
    assert!(*internals >= 1, "tree must have split at least once");
    assert_eq!(*leaves, internals + 1);
    for (_, _, other) in &results[1..] {
        assert_eq!(preds, other, "all parties agree on predictions");
    }
    // Concealed-model predictions must equal the true labels on this
    // crisply separable data.
    let correct = preds
        .iter()
        .zip(data.labels())
        .filter(|(p, t)| (**p - **t).abs() < 0.5)
        .count();
    assert!(
        correct >= 22,
        "concealed model classified only {correct}/24 training samples"
    );
}

#[test]
fn enhanced_model_structure_is_concealed() {
    let data = crisp_dataset();
    let m = 2;
    let params = enhanced_params(TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    });
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        train_enhanced::train(&mut ctx)
    });
    let tree = &results[0];
    // The concealed model exposes features but only ciphertexts for
    // thresholds and leaf labels.
    for node in &tree.nodes {
        match node {
            ConcealedNode::Internal {
                enc_threshold,
                client,
                ..
            } => {
                assert!(*client < m);
                // A ciphertext, not a plain encoding: must exceed the
                // trivial encoding magnitude of any data value.
                assert!(enc_threshold.raw().bits() > 64);
            }
            ConcealedNode::Leaf { enc_value } => {
                assert!(enc_value.raw().bits() > 64);
            }
        }
    }
}

#[test]
fn enhanced_agrees_with_basic_on_predictions() {
    let data = crisp_dataset();
    let m = 2;
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        stop_when_pure: false,
        ..Default::default()
    };
    let partition = partition_vertically(&data, m, 0);

    // Train basic (plaintext model) and enhanced (concealed model) on the
    // same data and compare predictions sample by sample.
    let basic_params = PivotParams {
        tree: tree_params.clone(),
        keysize: 128,
        ..Default::default()
    };
    let basic_trees = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, basic_params.clone());
        train_basic::train(&mut ctx)
    });

    let enh_params = enhanced_params(tree_params);
    let enh_preds = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), enh_params.clone());
        let tree = train_enhanced::train(&mut ctx);
        let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples)
    });

    let basic_preds: Vec<f64> = (0..data.num_samples())
        .map(|i| basic_trees[0].predict(data.sample(i)))
        .collect();
    assert_eq!(
        basic_preds, enh_preds[0],
        "basic and enhanced protocols must learn the same function here"
    );
}

#[test]
fn enhanced_regression() {
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 24,
        features: 4,
        informative: 2,
        noise: 0.01,
        seed: 17,
    });
    let m = 2;
    let params = enhanced_params(TreeParams {
        max_depth: 2,
        max_splits: 3,
        stop_when_pure: false,
        ..Default::default()
    });
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
        let tree = train_enhanced::train(&mut ctx);
        let local_samples: Vec<Vec<f64>> = (0..view.num_samples())
            .map(|i| view.features[i].clone())
            .collect();
        predict_enhanced::predict_batch(&mut ctx, &tree, &local_samples)
    });
    // Predictions bounded by the normalized label range, and better than
    // the trivial mean predictor on training data.
    let preds = &results[0];
    assert!(preds.iter().all(|p| p.abs() <= 1.5), "{preds:?}");
    let mse = pivot_data::metrics::mse(preds, data.labels());
    let mean: f64 = data.labels().iter().sum::<f64>() / data.num_samples() as f64;
    let base: Vec<f64> = vec![mean; data.num_samples()];
    let base_mse = pivot_data::metrics::mse(&base, data.labels());
    assert!(
        mse < base_mse,
        "tree mse {mse} should beat mean baseline {base_mse}"
    );
}
