//! Minimal reproduction harness for joint decryption inside PartyContext.

use pivot_bignum::BigUint;
use pivot_core::{config::PivotParams, decrypt, party::PartyContext};
use pivot_data::{Dataset, Task, VerticalView};
use pivot_transport::run_parties;

fn toy_view(client: usize, m: usize) -> VerticalView {
    let data = Dataset::new(
        vec![vec![1.0, 2.0], vec![3.0, 4.0]],
        vec![0.0, 1.0],
        Task::Classification { classes: 2 },
    );
    let part = pivot_data::partition_vertically(&data, m, 0);
    part.views[client].clone()
}

#[test]
fn joint_decrypt_round_trip() {
    let params = PivotParams {
        keysize: 128,
        ..Default::default()
    };
    let results = run_parties(2, |ep| {
        let view = toy_view(ep.id(), 2);
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        // One party encrypts; everyone must hold the identical ciphertext.
        let ct = if ctx.id() == 0 {
            let ct = ctx.pk.encrypt(&BigUint::from_u64(12345), &mut ctx.rng);
            ctx.ep.broadcast(&ct);
            ct
        } else {
            ctx.ep.recv(0)
        };
        let out = decrypt::joint_decrypt(&mut ctx, &ct);
        out.to_u64()
    });
    assert_eq!(results, vec![Some(12345), Some(12345)]);
}
