//! End-to-end tests for the Pivot basic protocol: privacy-preserving
//! training must reproduce the plaintext CART reference exactly (same
//! candidate splits, same gain ordering), and distributed prediction must
//! match centralized prediction on the released model.

use pivot_core::{config::PivotParams, party::PartyContext, predict_basic, train_basic};
use pivot_data::{partition_vertically, synth, Dataset, Task};
use pivot_transport::run_parties;
use pivot_trees::{train_tree, DecisionTree, TreeParams};

/// Train with the basic protocol over `m` threads; returns per-party trees.
fn pivot_train(data: &Dataset, m: usize, params: &PivotParams) -> Vec<DecisionTree> {
    let partition = partition_vertically(data, m, 0);
    run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        train_basic::train(&mut ctx)
    })
}

fn small_params(tree: TreeParams) -> PivotParams {
    PivotParams {
        tree,
        keysize: 128,
        ..Default::default()
    }
}

#[test]
fn matches_plaintext_cart_exactly_on_crisp_margins() {
    // A dataset whose split gains are well separated: two-valued features
    // (so the quantile midpoint is the exact separator) and hierarchical
    // labels. Fixed-point rounding cannot flip any argmax, so Pivot must
    // reproduce CART node-for-node.
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..24 {
        // Asymmetric group sizes (16 vs 8) keep every split gain strictly
        // distinct, so ±1-ulp truncation noise cannot flip a tie-break.
        let x0 = if i < 16 { 10.0 } else { 0.0 };
        let x1 = if i % 2 == 0 { -5.0 } else { 5.0 };
        features.push(vec![x0, x1, (i % 7) as f64]);
        // Decision list: f0 decides for half the data; f1 decides the rest.
        labels.push(if x0 > 5.0 {
            1.0
        } else if x1 > 0.0 {
            1.0
        } else {
            0.0
        });
    }
    let data = Dataset::new(features, labels, Task::Classification { classes: 2 });
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        ..Default::default()
    };
    let reference = train_tree(&data, &tree_params);
    let trees = pivot_train(&data, 3, &small_params(tree_params));
    for tree in &trees {
        assert_eq!(
            tree, &reference,
            "Pivot-Basic must reproduce the plaintext CART tree exactly"
        );
    }
}

#[test]
fn agrees_with_plaintext_cart_on_noisy_data() {
    // On data with near-tie gains, fixed-point truncation may legitimately
    // flip split choices (the paper's own Table 3 shows slight accuracy
    // differences). Require prediction-level agreement instead.
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 60,
        features: 6,
        informative: 4,
        classes: 2,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 42,
    });
    let tree_params = TreeParams {
        max_depth: 3,
        max_splits: 4,
        ..Default::default()
    };
    let reference = train_tree(&data, &tree_params);
    let trees = pivot_train(&data, 3, &small_params(tree_params));
    let samples: Vec<Vec<f64>> = (0..data.num_samples())
        .map(|i| data.sample(i).to_vec())
        .collect();
    let ref_preds = reference.predict_batch(&samples);
    let pivot_preds = trees[0].predict_batch(&samples);
    let agree = ref_preds
        .iter()
        .zip(&pivot_preds)
        .filter(|(a, b)| a == b)
        .count();
    assert!(
        agree as f64 / samples.len() as f64 >= 0.9,
        "only {agree}/{} predictions agree",
        samples.len()
    );
    // Training accuracy of both trees must be close.
    let ref_acc = pivot_data::metrics::accuracy(&ref_preds, data.labels());
    let piv_acc = pivot_data::metrics::accuracy(&pivot_preds, data.labels());
    assert!(
        (ref_acc - piv_acc).abs() < 0.05,
        "accuracy gap too large: {ref_acc} vs {piv_acc}"
    );
}

#[test]
fn matches_plaintext_cart_regression() {
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 50,
        features: 4,
        informative: 3,
        noise: 0.05,
        seed: 9,
    });
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 4,
        ..Default::default()
    };
    let reference = train_tree(&data, &tree_params);
    let trees = pivot_train(&data, 2, &small_params(tree_params));
    for tree in &trees {
        // Structure (features/thresholds) must match exactly; leaf values
        // agree up to fixed-point precision.
        assert_eq!(tree.internal_count(), reference.internal_count());
        for (node, ref_node) in tree.nodes().iter().zip(reference.nodes()) {
            match (node, ref_node) {
                (
                    pivot_trees::Node::Internal {
                        feature, threshold, ..
                    },
                    pivot_trees::Node::Internal {
                        feature: rf,
                        threshold: rt,
                        ..
                    },
                ) => {
                    assert_eq!(feature, rf);
                    assert!((threshold - rt).abs() < 1e-9);
                }
                (pivot_trees::Node::Leaf { value }, pivot_trees::Node::Leaf { value: rv }) => {
                    assert!((value - rv).abs() < 1e-3, "leaf {value} vs {rv}");
                }
                _ => panic!("structure mismatch"),
            }
        }
    }
}

#[test]
fn distributed_prediction_matches_model() {
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 40,
        features: 6,
        informative: 4,
        classes: 3,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 5,
    });
    let (train, test) = data.train_test_split(0.25);
    let m = 3;
    let tree_params = TreeParams {
        max_depth: 3,
        max_splits: 4,
        ..Default::default()
    };
    let params = small_params(tree_params);

    // Vertically partition train AND test consistently.
    let train_part = partition_vertically(&train, m, 0);
    let test_part = partition_vertically(&test, m, 0);
    let results = run_parties(m, |ep| {
        let view = train_part.views[ep.id()].clone();
        let test_view = &test_part.views[ep.id()];
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let tree = train_basic::train(&mut ctx);
        let local_samples: Vec<Vec<f64>> = (0..test_view.num_samples())
            .map(|i| test_view.features[i].clone())
            .collect();
        let preds = predict_basic::predict_batch(&mut ctx, &tree, &local_samples);
        (tree, preds)
    });

    let (tree, preds) = &results[0];
    // All parties agree on the predictions.
    for (_, other_preds) in &results[1..] {
        assert_eq!(preds, other_preds);
    }
    // Distributed prediction equals centralized prediction on the model.
    for i in 0..test.num_samples() {
        let central = tree.predict(test.sample(i));
        assert_eq!(preds[i], central, "sample {i}");
    }
}

#[test]
fn respects_min_samples_pruning() {
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 20,
        features: 4,
        informative: 3,
        classes: 2,
        class_sep: 1.0,
        flip_y: 0.0,
        // Depth equality below needs a dataset with no near-tie splits
        // (fixed-point MPC gains may break ties differently than f64);
        // this seed avoids one under the vendored StdRng stream.
        seed: 4,
    });
    let tree_params = TreeParams {
        max_depth: 5,
        min_samples: 15,
        max_splits: 4,
        ..Default::default()
    };
    let trees = pivot_train(&data, 2, &small_params(tree_params.clone()));
    let reference = train_tree(&data, &tree_params);
    assert_eq!(trees[0].depth(), reference.depth());
    // A child that keeps ≥ min_samples may legally split again, but with
    // n=20 and min_samples=15 the tree cannot reach the depth-5 limit.
    assert!(
        trees[0].depth() < 5,
        "min_samples must prune well before max_depth (got depth {})",
        trees[0].depth()
    );
}

#[test]
fn regression_prediction_round_trip() {
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 30,
        features: 4,
        informative: 2,
        noise: 0.01,
        seed: 11,
    });
    let m = 2;
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 3,
        ..Default::default()
    };
    let params = small_params(tree_params);
    let partition = partition_vertically(&data, m, 0);
    let results = run_parties(m, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view.clone(), params.clone());
        let tree = train_basic::train(&mut ctx);
        let sample = view.features[0].clone();
        let pred = predict_basic::predict(&mut ctx, &tree, &sample);
        (tree, pred)
    });
    let (tree, pred) = &results[0];
    let central = tree.predict(data.sample(0));
    assert!(
        (pred - central).abs() < 1e-3,
        "distributed {pred} vs centralized {central}"
    );
    assert!(matches!(tree.task(), Task::Regression));
}

#[test]
fn metrics_are_populated() {
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 20,
        features: 4,
        informative: 3,
        classes: 2,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 8,
    });
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 3,
        ..Default::default()
    };
    let params = small_params(tree_params);
    let partition = partition_vertically(&data, 2, 0);
    let results = run_parties(2, |ep| {
        let view = partition.views[ep.id()].clone();
        let mut ctx = PartyContext::setup(&ep, view, params.clone());
        let _ = train_basic::train(&mut ctx);
        (
            ctx.metrics.encryptions(),
            ctx.metrics.threshold_decryptions(),
            ctx.engine.counters().snapshot().1, // multiplications
        )
    });
    for (enc, dec, muls) in results {
        assert!(enc > 0, "encryptions recorded");
        assert!(dec > 0, "decryptions recorded");
        assert!(muls > 0, "secure multiplications recorded");
    }
}

#[test]
fn packed_training_builds_the_same_tree() {
    // Ciphertext packing changes the transcript (packed statistics, one
    // level-wise Algorithm-2 batch per depth) but not the statistics
    // themselves — the packed run must produce the identical tree. At
    // keysize 128 the audit yields two 63-bit slots, so the stride of 3
    // spans two chunks: the chunked path is exercised too.
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 30,
        features: 6,
        informative: 4,
        classes: 2,
        class_sep: 1.5,
        flip_y: 0.0,
        seed: 77,
    });
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 3,
        ..Default::default()
    };
    let unpacked = pivot_train(&data, 3, &small_params(tree_params.clone()));
    let mut packed_params = small_params(tree_params);
    packed_params.packing = pivot_core::config::Packing::Auto;
    let packed = pivot_train(&data, 3, &packed_params);
    assert_eq!(packed[0], unpacked[0], "packed tree must match unpacked");
    for tree in &packed[1..] {
        assert_eq!(tree, &packed[0], "all parties agree");
    }
}

#[test]
fn packed_regression_matches_unpacked() {
    // Regression exercises the offset-encoded label moments through the
    // packed pipeline (+1 offset removed after the packed conversion).
    let data = synth::make_regression(&synth::RegressionSpec {
        samples: 24,
        features: 4,
        informative: 3,
        noise: 0.05,
        seed: 13,
    });
    let tree_params = TreeParams {
        max_depth: 2,
        max_splits: 3,
        ..Default::default()
    };
    let unpacked = pivot_train(&data, 2, &small_params(tree_params.clone()));
    let mut packed_params = small_params(tree_params);
    packed_params.packing = pivot_core::config::Packing::Slots(2);
    let packed = pivot_train(&data, 2, &packed_params);
    // Argmax parity is exact: identical structure, features, thresholds.
    // Regression *leaf values* pass through probabilistic truncation
    // (±1 ulp at scale 2^-f) whose dealer randomness aligns differently
    // under the level-wise schedule, so they match to fixed-point
    // precision rather than bit-for-bit.
    let (p, u) = (&packed[0], &unpacked[0]);
    assert_eq!(p.internal_count(), u.internal_count());
    assert_eq!(p.root(), u.root());
    for (node, ref_node) in p.nodes().iter().zip(u.nodes()) {
        match (node, ref_node) {
            (
                pivot_trees::Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                },
                pivot_trees::Node::Internal {
                    feature: rf,
                    threshold: rt,
                    left: rl,
                    right: rr,
                },
            ) => {
                assert_eq!((feature, left, right), (rf, rl, rr));
                assert!((threshold - rt).abs() < 1e-12);
            }
            (pivot_trees::Node::Leaf { value }, pivot_trees::Node::Leaf { value: rv }) => {
                assert!((value - rv).abs() < 1e-4, "leaf {value} vs {rv}");
            }
            _ => panic!("structure mismatch"),
        }
    }
}
