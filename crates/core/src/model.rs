//! Released model forms.
//!
//! The basic protocol releases a plaintext [`pivot_trees::DecisionTree`].
//! The enhanced protocol releases a [`ConcealedTree`]: split *features* are
//! public (client + global feature id), split *thresholds* are encrypted,
//! and leaf labels are encrypted — exactly the disclosure set of §5.

use pivot_data::Task;
use pivot_paillier::Ciphertext;

/// A node of the concealed model.
#[derive(Clone, Debug)]
pub enum ConcealedNode {
    /// Internal node: the owning client and global feature id are public
    /// (§5.2 releases the split feature); the threshold is encrypted.
    Internal {
        client: usize,
        feature_global: usize,
        enc_threshold: Ciphertext,
        left: usize,
        right: usize,
    },
    /// Leaf with encrypted label (class index, or fixed-point regression
    /// value at scale `2^f`).
    Leaf { enc_value: Ciphertext },
}

/// The enhanced protocol's released model.
#[derive(Clone, Debug)]
pub struct ConcealedTree {
    pub nodes: Vec<ConcealedNode>,
    pub root: usize,
    pub task: Task,
}

impl ConcealedTree {
    /// Number of internal nodes `t`.
    pub fn internal_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, ConcealedNode::Internal { .. }))
            .count()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.len() - self.internal_count()
    }

    /// Leaves in left-to-right order with their root-to-leaf paths:
    /// `(leaf node id, [(internal node id, went_left)])`.
    pub fn leaf_paths(&self) -> Vec<(usize, Vec<(usize, bool)>)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            match &self.nodes[id] {
                ConcealedNode::Leaf { .. } => out.push((id, path)),
                ConcealedNode::Internal { left, right, .. } => {
                    let mut rp = path.clone();
                    rp.push((id, false));
                    stack.push((*right, rp));
                    let mut lp = path;
                    lp.push((id, true));
                    stack.push((*left, lp));
                }
            }
        }
        out
    }

    /// Internal nodes in id order: `(node id, client, global feature,
    /// encrypted threshold)`.
    pub fn internals(&self) -> Vec<(usize, usize, usize, &Ciphertext)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(id, n)| match n {
                ConcealedNode::Internal {
                    client,
                    feature_global,
                    enc_threshold,
                    ..
                } => Some((id, *client, *feature_global, enc_threshold)),
                ConcealedNode::Leaf { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_bignum::BigUint;

    fn ct(v: u64) -> Ciphertext {
        Ciphertext::from_raw(BigUint::from_u64(v))
    }

    fn sample_tree() -> ConcealedTree {
        // node0 internal → left: leaf1, right: internal2 → leaves 3, 4
        ConcealedTree {
            nodes: vec![
                ConcealedNode::Internal {
                    client: 0,
                    feature_global: 2,
                    enc_threshold: ct(10),
                    left: 1,
                    right: 2,
                },
                ConcealedNode::Leaf { enc_value: ct(1) },
                ConcealedNode::Internal {
                    client: 1,
                    feature_global: 5,
                    enc_threshold: ct(20),
                    left: 3,
                    right: 4,
                },
                ConcealedNode::Leaf { enc_value: ct(2) },
                ConcealedNode::Leaf { enc_value: ct(3) },
            ],
            root: 0,
            task: Task::Classification { classes: 2 },
        }
    }

    #[test]
    fn counts() {
        let t = sample_tree();
        assert_eq!(t.internal_count(), 2);
        assert_eq!(t.leaf_count(), 3);
    }

    #[test]
    fn leaf_paths_in_order() {
        let t = sample_tree();
        let paths = t.leaf_paths();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].0, 1);
        assert_eq!(paths[0].1, vec![(0, true)]);
        assert_eq!(paths[1].0, 3);
        assert_eq!(paths[1].1, vec![(0, false), (2, true)]);
        assert_eq!(paths[2].0, 4);
        assert_eq!(paths[2].1, vec![(0, false), (2, false)]);
    }

    #[test]
    fn internals_listed() {
        let t = sample_tree();
        let ints = t.internals();
        assert_eq!(ints.len(), 2);
        assert_eq!(ints[0].2, 2);
        assert_eq!(ints[1].1, 1);
    }
}
