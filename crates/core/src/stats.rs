//! The local computation step (§4.1/§4.2): every client derives encrypted
//! split statistics from `[L]` and its plaintext feature columns, then the
//! encrypted statistics are pooled for the MPC step.
//!
//! Two pipelines produce the pooled statistics:
//!
//! * **Unpacked** ([`pooled_statistics`]): one ciphertext per statistic —
//!   `stride = K+1` ciphertexts per candidate split. This is the paper's
//!   layout and stays bit-identical across PRs.
//! * **Packed** ([`packed_pooled_statistics`]): the whole stride of a
//!   split rides *one* ciphertext (slots of a
//!   [`pivot_paillier::SlotCodec`]), and `G = ⌊slots/stride⌋` neighbouring
//!   splits merge into a single ciphertext via homomorphic slot shifts —
//!   each client emits `Σᵢ ⌈cᵢ/G⌉` ciphertexts instead of `Σᵢ cᵢ·stride`.
//!   When the stride exceeds the slot capacity the stride is cut into
//!   *chunks* of at most `slots` values and every chunk forms its own
//!   ciphertext stream.

use crate::masks::{LabelMasks, PackedLabels};
use crate::metrics::Stage;
use crate::party::PartyContext;
use crate::verify;
use pivot_data::{candidate_splits, SplitCandidates};
use pivot_paillier::{vector, Ciphertext, SlotCodec};
use pivot_transport::Endpoint;

/// Public split-candidate layout: how many candidate splits every client
/// holds per local feature (the counts are public; thresholds stay local).
#[derive(Clone, Debug)]
pub struct SplitLayout {
    /// `counts[client][local_feature]`.
    pub counts: Vec<Vec<usize>>,
    /// Flattened start offset of every (client, feature) block.
    offsets: Vec<Vec<usize>>,
    /// Block starts in global order (sorted ascending), for O(log) lookup.
    flat_starts: Vec<usize>,
    /// `(client, feature)` of each entry of `flat_starts`.
    flat_blocks: Vec<(usize, usize)>,
    total: usize,
}

impl SplitLayout {
    /// Exchange local candidate counts and build the global layout.
    pub fn build(ep: &Endpoint, local_counts: &[usize]) -> SplitLayout {
        SplitLayout::from_counts(ep.exchange_all(&local_counts.to_vec()))
    }

    /// Build the layout from already-known per-client counts.
    pub fn from_counts(counts: Vec<Vec<usize>>) -> SplitLayout {
        let mut offsets = Vec::with_capacity(counts.len());
        let mut flat_starts = Vec::new();
        let mut flat_blocks = Vec::new();
        let mut running = 0usize;
        for (client, client_counts) in counts.iter().enumerate() {
            let mut row = Vec::with_capacity(client_counts.len());
            for (feature, &c) in client_counts.iter().enumerate() {
                row.push(running);
                flat_starts.push(running);
                flat_blocks.push((client, feature));
                running += c;
            }
            offsets.push(row);
        }
        SplitLayout {
            counts,
            offsets,
            flat_starts,
            flat_blocks,
            total: running,
        }
    }

    /// Total number of candidate splits `Σ d_i·b_i`.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Global index of the `s`-th split of `client`'s local `feature`.
    pub fn global_index(&self, client: usize, feature: usize, split: usize) -> usize {
        debug_assert!(split < self.counts[client][feature]);
        self.offsets[client][feature] + split
    }

    /// Map a global split index back to `(client, local_feature, split)`:
    /// binary search for the last block start at or below `global`. Empty
    /// blocks share their start with the *following* block, so the
    /// partition point always lands on the containing non-empty block
    /// (trailing empties start at `total`, excluded by the range assert).
    pub fn locate(&self, global: usize) -> (usize, usize, usize) {
        assert!(global < self.total, "split index out of range");
        let idx = self.flat_starts.partition_point(|&start| start <= global) - 1;
        let (client, feature) = self.flat_blocks[idx];
        debug_assert!(self.counts[client][feature] > 0, "landed on empty block");
        (client, feature, global - self.flat_starts[idx])
    }

    /// Start/end of one (client, feature) block in global indices.
    pub fn block(&self, client: usize, feature: usize) -> (usize, usize) {
        let start = self.offsets[client][feature];
        (start, start + self.counts[client][feature])
    }
}

/// One client's precomputed local split data: candidate thresholds and the
/// left-side indicator vector per split (plaintext, never leaves the
/// client).
pub struct LocalSplits {
    pub candidates: Vec<SplitCandidates>,
    /// `indicators[feature][split][sample]` — true iff sample goes left.
    pub indicators: Vec<Vec<Vec<bool>>>,
}

impl LocalSplits {
    /// Precompute from the client's vertical view.
    pub fn precompute(ctx: &PartyContext<'_>) -> LocalSplits {
        let view = &ctx.view;
        let mut candidates = Vec::with_capacity(view.num_local_features());
        let mut indicators = Vec::with_capacity(view.num_local_features());
        for j in 0..view.num_local_features() {
            let column = view.column(j);
            let cand = candidate_splits(&column, ctx.params.tree.max_splits);
            let per_split: Vec<Vec<bool>> = cand
                .thresholds
                .iter()
                .map(|&t| column.iter().map(|&v| v <= t).collect())
                .collect();
            candidates.push(cand);
            indicators.push(per_split);
        }
        LocalSplits {
            candidates,
            indicators,
        }
    }

    /// Flat per-feature candidate counts (for [`SplitLayout::build`]).
    pub fn counts(&self) -> Vec<usize> {
        self.candidates.iter().map(|c| c.len()).collect()
    }
}

/// Encrypted statistics for every global split, plus node totals.
/// Layout: `per_split[global_split] = [n_l, g_l(γ₀), g_l(γ₁), …]`.
pub struct EncryptedStats {
    pub per_split: Vec<Vec<Ciphertext>>,
    /// `[n̄]` — encrypted node size.
    pub node_total: Ciphertext,
    /// `[Σ γ_k]` per label vector (class counts / label moments).
    pub gamma_totals: Vec<Ciphertext>,
    /// Whether regression labels carry the +1 offset (see `LabelMasks`).
    pub offset_encoded: bool,
}

/// Compute local encrypted statistics (Eqn 7 / Eqn 9) and pool them across
/// clients so every party holds the full list.
pub fn pooled_statistics(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    local: &LocalSplits,
    alpha: &[Ciphertext],
    masks: &LabelMasks,
) -> EncryptedStats {
    let stride = 1 + masks.gammas.len();
    let splits: Vec<&Vec<bool>> = local.indicators.iter().flatten().collect();
    // Local stats, flattened in local split order. Every split's dot
    // products are independent, so the batch runs on the shared worker
    // pool (order-preserving: the flattened layout is identical to the
    // serial loop's).
    let mut mine: Vec<Ciphertext> = ctx.metrics.time(Stage::LocalComputation, || {
        let per_split: Vec<Vec<Ciphertext>> =
            pivot_runtime::global().map(ctx.crypto_threads(), &splits, |v_l| {
                let mut stats = Vec::with_capacity(stride);
                stats.push(vector::dot_binary(&ctx.pk, alpha, v_l));
                for gamma in &masks.gammas {
                    stats.push(vector::dot_binary(&ctx.pk, gamma, v_l));
                }
                stats
            });
        let flat: Vec<Ciphertext> = per_split.into_iter().flatten().collect();
        ctx.metrics
            .add_ciphertext_ops((alpha.len() * flat.len().max(1)) as u64);
        flat
    });
    // Verification: commit the indicator bits and prove every pooled dot
    // product against those commitments (pohdp, Eqn 7).
    let sets: Vec<&[Ciphertext]> = std::iter::once(alpha)
        .chain(masks.gammas.iter().map(Vec::as_slice))
        .collect();
    let mut bundle = verify::prove_pohdp(ctx, "stats", &sets, &splits, &mut mine);

    // Node totals (every client can compute them from [α] and [L]).
    let all_true = vec![true; alpha.len()];
    let node_total = vector::dot_binary(&ctx.pk, alpha, &all_true);
    let gamma_totals: Vec<Ciphertext> = masks
        .gammas
        .iter()
        .map(|g| vector::dot_binary(&ctx.pk, g, &all_true))
        .collect();

    // Pool everyone's statistics (ciphertexts are safe to publish).
    let all: Vec<Vec<Ciphertext>> = ctx.ep.exchange_all(&mine);
    // Every party proves its own pooled statistics and spot-checks every
    // prover's (its own included) in client order.
    for (prover, client_stats) in all.iter().enumerate() {
        let own = (prover == ctx.id()).then(|| bundle.take()).flatten();
        verify::check_pohdp(ctx, "stats", prover, &sets, client_stats, own);
    }
    let mut per_split = Vec::with_capacity(layout.total());
    for (client, client_stats) in all.iter().enumerate() {
        let expected: usize = layout.counts[client].iter().sum::<usize>() * stride;
        assert_eq!(
            client_stats.len(),
            expected,
            "stat shape from client {client}"
        );
        for split_stats in client_stats.chunks(stride) {
            per_split.push(split_stats.to_vec());
        }
    }
    assert_eq!(per_split.len(), layout.total());
    ctx.metrics
        .add_split_stat_ciphertexts((layout.total() * stride) as u64);
    EncryptedStats {
        per_split,
        node_total,
        gamma_totals,
        offset_encoded: masks.offset_encoded,
    }
}

/// How a stride of `K+1` statistics maps onto packed slots: the stride is
/// cut into chunks of at most `slots` values, and within each chunk
/// `group` whole splits share one ciphertext.
#[derive(Clone, Debug)]
pub struct PackedChunking {
    /// Statistics per split (`K+1`).
    pub stride: usize,
    /// Values per full chunk (`min(stride, slots)`).
    pub chunk_width: usize,
    /// Actual width of each chunk (the last may be narrower).
    pub widths: Vec<usize>,
    /// Splits merged per ciphertext (`max(1, ⌊slots/chunk_width⌋)`).
    pub group: usize,
}

impl PackedChunking {
    pub fn new(stride: usize, slots: usize) -> PackedChunking {
        assert!(stride >= 1 && slots >= 1);
        let chunk_width = stride.min(slots);
        let chunks = stride.div_ceil(chunk_width);
        let widths: Vec<usize> = (0..chunks)
            .map(|c| (stride - c * chunk_width).min(chunk_width))
            .collect();
        PackedChunking {
            stride,
            chunk_width,
            widths,
            group: (slots / chunk_width).max(1),
        }
    }

    /// Number of chunks the stride occupies.
    pub fn chunks(&self) -> usize {
        self.widths.len()
    }

    /// Per-client group sizes for `splits` local candidate splits.
    pub fn group_sizes(&self, splits: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(splits.div_ceil(self.group));
        let mut rest = splits;
        while rest > 0 {
            let g = rest.min(self.group);
            out.push(g);
            rest -= g;
        }
        out
    }
}

/// Pooled **packed** statistics of one node: per chunk, the merged
/// group ciphertexts in global (client-major) split order, plus the packed
/// node totals.
pub struct PackedStats {
    /// `groups[chunk][g]` — group `g` of the global order.
    pub groups: Vec<Vec<Ciphertext>>,
    /// Splits merged into group `g` (identical across chunks).
    pub group_sizes: Vec<usize>,
    /// `totals[chunk]` — `[n̄]` and `[Σγ_k]` packed like a single split.
    pub totals: Vec<Ciphertext>,
    pub chunking: PackedChunking,
    pub offset_encoded: bool,
}

/// Packed local computation + pooling: dot products run against the packed
/// label vectors (one per chunk), neighbouring splits merge via slot
/// shifts, and only the merged ciphertexts cross the network.
pub fn packed_pooled_statistics(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    local: &LocalSplits,
    labels: &PackedLabels,
    codec: &SlotCodec,
) -> PackedStats {
    let chunking = labels.chunking.clone();
    let n_samples = labels.samples;
    let threads = ctx.crypto_threads();

    let mine: Vec<Vec<Ciphertext>> = ctx.metrics.time(Stage::LocalComputation, || {
        let splits: Vec<&Vec<bool>> = local.indicators.iter().flatten().collect();
        let mut per_chunk = Vec::with_capacity(chunking.chunks());
        for (c, chunk_labels) in labels.chunks.iter().enumerate() {
            let width = chunking.widths[c];
            // One packed dot product per split (the whole chunk of the
            // stride at once), then groups merge via slot shifts.
            let per_split: Vec<Ciphertext> = pivot_runtime::global().map(threads, &splits, |v_l| {
                vector::dot_binary(&ctx.pk, chunk_labels, v_l)
            });
            let sizes = chunking.group_sizes(splits.len());
            let bounds: Vec<(usize, usize)> = {
                let mut start = 0;
                sizes
                    .iter()
                    .map(|&g| {
                        let b = (start, start + g);
                        start += g;
                        b
                    })
                    .collect()
            };
            let merged: Vec<Ciphertext> =
                pivot_runtime::global().map(threads, &bounds, |&(start, end)| {
                    let mut acc = per_split[start].clone();
                    for (t, member) in per_split[start + 1..end].iter().enumerate() {
                        let shift = codec.shift_factor((t + 1) * width);
                        acc = ctx.pk.add(&acc, &ctx.pk.mul_plain(member, &shift));
                    }
                    acc
                });
            ctx.metrics
                .add_ciphertext_ops((n_samples * splits.len() + splits.len()) as u64);
            per_chunk.push(merged);
        }
        per_chunk
    });

    // Packed node totals: the all-true dot product per chunk.
    let all_true = vec![true; n_samples];
    let totals: Vec<Ciphertext> = labels
        .chunks
        .iter()
        .map(|chunk_labels| vector::dot_binary(&ctx.pk, chunk_labels, &all_true))
        .collect();

    // Pool the merged ciphertexts; group sizes are public (derived from
    // the public layout), so every party reassembles identically.
    let all: Vec<Vec<Vec<Ciphertext>>> = ctx.ep.exchange_all(&mine);
    let mut group_sizes = Vec::new();
    let mut groups: Vec<Vec<Ciphertext>> = vec![Vec::new(); chunking.chunks()];
    for (client, client_chunks) in all.iter().enumerate() {
        let client_splits: usize = layout.counts[client].iter().sum();
        let sizes = chunking.group_sizes(client_splits);
        assert_eq!(client_chunks.len(), chunking.chunks());
        for (c, chunk_groups) in client_chunks.iter().enumerate() {
            assert_eq!(
                chunk_groups.len(),
                sizes.len(),
                "packed stat shape from client {client}"
            );
            groups[c].extend(chunk_groups.iter().cloned());
        }
        group_sizes.extend(sizes);
    }

    let pooled_cts: usize = groups.iter().map(Vec::len).sum();
    ctx.metrics.add_split_stat_ciphertexts(pooled_cts as u64);
    ctx.metrics.add_packed(
        (pooled_cts + totals.len()) as u64,
        (layout.total() * chunking.stride + chunking.stride) as u64,
        codec.slots() as u64,
    );

    PackedStats {
        groups,
        group_sizes,
        totals,
        chunking,
        offset_encoded: labels.offset_encoded,
    }
}

impl PackedStats {
    /// Append this node's ciphertexts in the canonical conversion order
    /// (chunk-major groups, then per-chunk totals) with their occupied
    /// slot counts. Borrows — the conversion only reads the batch.
    fn append_conversion<'a>(&'a self, cts: &mut Vec<&'a Ciphertext>, used: &mut Vec<usize>) {
        for (c, chunk_groups) in self.groups.iter().enumerate() {
            let width = self.chunking.widths[c];
            for (g, ct) in chunk_groups.iter().enumerate() {
                cts.push(ct);
                used.push(self.group_sizes[g] * width);
            }
        }
        for (c, ct) in self.totals.iter().enumerate() {
            cts.push(ct);
            used.push(self.chunking.widths[c]);
        }
    }

    /// Ciphertexts this node contributes to a conversion batch.
    pub fn conversion_len(&self) -> usize {
        self.groups.iter().map(Vec::len).sum::<usize>() + self.totals.len()
    }
}

/// Flatten a whole frontier's packed statistics into one Algorithm-2
/// batch: `(cts, used, spans)` where `spans[i]` is the offset of node
/// `i`'s range (length [`PackedStats::conversion_len`]). Ciphertexts are
/// borrowed, not cloned — the conversion only reads them.
pub fn conversion_batch(per_node: &[PackedStats]) -> (Vec<&Ciphertext>, Vec<usize>, Vec<usize>) {
    let mut cts = Vec::new();
    let mut used = Vec::new();
    let mut spans = Vec::with_capacity(per_node.len());
    for ps in per_node {
        spans.push(cts.len());
        ps.append_conversion(&mut cts, &mut used);
    }
    (cts, used, spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trips_indices() {
        // Fake a 2-client layout directly (no network needed).
        let layout = SplitLayout::from_counts(vec![vec![2, 3], vec![4]]);
        assert_eq!(layout.total(), 9);
        assert_eq!(layout.global_index(0, 1, 2), 4);
        assert_eq!(layout.locate(4), (0, 1, 2));
        assert_eq!(layout.locate(0), (0, 0, 0));
        assert_eq!(layout.locate(8), (1, 0, 3));
        assert_eq!(layout.block(1, 0), (5, 9));
    }

    #[test]
    fn locate_binary_search_matches_linear_scan() {
        // Exhaustive cross-check against the reference linear scan on a
        // layout with empty blocks (zero-count features share starts).
        let counts = vec![vec![0, 3], vec![2, 0, 1], vec![0], vec![4]];
        let layout = SplitLayout::from_counts(counts.clone());
        assert_eq!(layout.total(), 10);
        for global in 0..layout.total() {
            let mut expect = None;
            'outer: for (client, row) in counts.iter().enumerate() {
                let mut start = counts[..client]
                    .iter()
                    .map(|r| r.iter().sum::<usize>())
                    .sum::<usize>();
                for (feature, &c) in row.iter().enumerate() {
                    if global >= start && global < start + c {
                        expect = Some((client, feature, global - start));
                        break 'outer;
                    }
                    start += c;
                }
            }
            assert_eq!(layout.locate(global), expect.unwrap(), "global {global}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_overflow() {
        let layout = SplitLayout::from_counts(vec![vec![1]]);
        layout.locate(1);
    }

    #[test]
    fn chunking_splits_wide_strides() {
        // stride 3 into 8 slots: one chunk, two splits per ciphertext.
        let c = PackedChunking::new(3, 8);
        assert_eq!(c.chunks(), 1);
        assert_eq!(c.widths, vec![3]);
        assert_eq!(c.group, 2);
        assert_eq!(c.group_sizes(5), vec![2, 2, 1]);
        // stride 5 into 2 slots: three chunks (2 + 2 + 1), no merging.
        let c = PackedChunking::new(5, 2);
        assert_eq!(c.chunks(), 3);
        assert_eq!(c.widths, vec![2, 2, 1]);
        assert_eq!(c.group, 1);
        assert_eq!(c.group_sizes(3), vec![1, 1, 1]);
        // stride equal to slots: one chunk, one split per ciphertext.
        let c = PackedChunking::new(4, 4);
        assert_eq!(c.widths, vec![4]);
        assert_eq!(c.group, 1);
        assert_eq!(c.group_sizes(0), Vec::<usize>::new());
    }
}
