//! The local computation step (§4.1/§4.2): every client derives encrypted
//! split statistics from `[L]` and its plaintext feature columns, then the
//! encrypted statistics are pooled for the MPC step.

use crate::masks::LabelMasks;
use crate::metrics::Stage;
use crate::party::PartyContext;
use pivot_data::{candidate_splits, SplitCandidates};
use pivot_paillier::{vector, Ciphertext};
use pivot_transport::Endpoint;

/// Public split-candidate layout: how many candidate splits every client
/// holds per local feature (the counts are public; thresholds stay local).
#[derive(Clone, Debug)]
pub struct SplitLayout {
    /// `counts[client][local_feature]`.
    pub counts: Vec<Vec<usize>>,
    /// Flattened start offset of every (client, feature) block.
    offsets: Vec<Vec<usize>>,
    total: usize,
}

impl SplitLayout {
    /// Exchange local candidate counts and build the global layout.
    pub fn build(ep: &Endpoint, local_counts: &[usize]) -> SplitLayout {
        let counts = ep.exchange_all(&local_counts.to_vec());
        let mut offsets = Vec::with_capacity(counts.len());
        let mut running = 0usize;
        for client_counts in &counts {
            let mut row = Vec::with_capacity(client_counts.len());
            for &c in client_counts {
                row.push(running);
                running += c;
            }
            offsets.push(row);
        }
        SplitLayout {
            counts,
            offsets,
            total: running,
        }
    }

    /// Total number of candidate splits `Σ d_i·b_i`.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Global index of the `s`-th split of `client`'s local `feature`.
    pub fn global_index(&self, client: usize, feature: usize, split: usize) -> usize {
        debug_assert!(split < self.counts[client][feature]);
        self.offsets[client][feature] + split
    }

    /// Map a global split index back to `(client, local_feature, split)`.
    pub fn locate(&self, global: usize) -> (usize, usize, usize) {
        assert!(global < self.total, "split index out of range");
        for (client, row) in self.offsets.iter().enumerate() {
            for (feature, &start) in row.iter().enumerate() {
                let count = self.counts[client][feature];
                if global >= start && global < start + count {
                    return (client, feature, global - start);
                }
            }
        }
        unreachable!("covered by the total check")
    }

    /// Start/end of one (client, feature) block in global indices.
    pub fn block(&self, client: usize, feature: usize) -> (usize, usize) {
        let start = self.offsets[client][feature];
        (start, start + self.counts[client][feature])
    }
}

/// One client's precomputed local split data: candidate thresholds and the
/// left-side indicator vector per split (plaintext, never leaves the
/// client).
pub struct LocalSplits {
    pub candidates: Vec<SplitCandidates>,
    /// `indicators[feature][split][sample]` — true iff sample goes left.
    pub indicators: Vec<Vec<Vec<bool>>>,
}

impl LocalSplits {
    /// Precompute from the client's vertical view.
    pub fn precompute(ctx: &PartyContext<'_>) -> LocalSplits {
        let view = &ctx.view;
        let mut candidates = Vec::with_capacity(view.num_local_features());
        let mut indicators = Vec::with_capacity(view.num_local_features());
        for j in 0..view.num_local_features() {
            let column = view.column(j);
            let cand = candidate_splits(&column, ctx.params.tree.max_splits);
            let per_split: Vec<Vec<bool>> = cand
                .thresholds
                .iter()
                .map(|&t| column.iter().map(|&v| v <= t).collect())
                .collect();
            candidates.push(cand);
            indicators.push(per_split);
        }
        LocalSplits {
            candidates,
            indicators,
        }
    }

    /// Flat per-feature candidate counts (for [`SplitLayout::build`]).
    pub fn counts(&self) -> Vec<usize> {
        self.candidates.iter().map(|c| c.len()).collect()
    }
}

/// Encrypted statistics for every global split, plus node totals.
/// Layout: `per_split[global_split] = [n_l, g_l(γ₀), g_l(γ₁), …]`.
pub struct EncryptedStats {
    pub per_split: Vec<Vec<Ciphertext>>,
    /// `[n̄]` — encrypted node size.
    pub node_total: Ciphertext,
    /// `[Σ γ_k]` per label vector (class counts / label moments).
    pub gamma_totals: Vec<Ciphertext>,
    /// Whether regression labels carry the +1 offset (see `LabelMasks`).
    pub offset_encoded: bool,
}

/// Compute local encrypted statistics (Eqn 7 / Eqn 9) and pool them across
/// clients so every party holds the full list.
pub fn pooled_statistics(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    local: &LocalSplits,
    alpha: &[Ciphertext],
    masks: &LabelMasks,
) -> EncryptedStats {
    let stride = 1 + masks.gammas.len();
    // Local stats, flattened in local split order. Every split's dot
    // products are independent, so the batch runs on the shared worker
    // pool (order-preserving: the flattened layout is identical to the
    // serial loop's).
    let mine: Vec<Ciphertext> = ctx.metrics.time(Stage::LocalComputation, || {
        let splits: Vec<&Vec<bool>> = local.indicators.iter().flatten().collect();
        let per_split: Vec<Vec<Ciphertext>> =
            pivot_runtime::global().map(ctx.crypto_threads(), &splits, |v_l| {
                let mut stats = Vec::with_capacity(stride);
                stats.push(vector::dot_binary(&ctx.pk, alpha, v_l));
                for gamma in &masks.gammas {
                    stats.push(vector::dot_binary(&ctx.pk, gamma, v_l));
                }
                stats
            });
        let flat: Vec<Ciphertext> = per_split.into_iter().flatten().collect();
        ctx.metrics
            .add_ciphertext_ops((alpha.len() * flat.len().max(1)) as u64);
        flat
    });

    // Node totals (every client can compute them from [α] and [L]).
    let all_true = vec![true; alpha.len()];
    let node_total = vector::dot_binary(&ctx.pk, alpha, &all_true);
    let gamma_totals: Vec<Ciphertext> = masks
        .gammas
        .iter()
        .map(|g| vector::dot_binary(&ctx.pk, g, &all_true))
        .collect();

    // Pool everyone's statistics (ciphertexts are safe to publish).
    let all: Vec<Vec<Ciphertext>> = ctx.ep.exchange_all(&mine);
    let mut per_split = Vec::with_capacity(layout.total());
    for (client, client_stats) in all.iter().enumerate() {
        let expected: usize = layout.counts[client].iter().sum::<usize>() * stride;
        assert_eq!(
            client_stats.len(),
            expected,
            "stat shape from client {client}"
        );
        for split_stats in client_stats.chunks(stride) {
            per_split.push(split_stats.to_vec());
        }
    }
    assert_eq!(per_split.len(), layout.total());
    EncryptedStats {
        per_split,
        node_total,
        gamma_totals,
        offset_encoded: masks.offset_encoded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trips_indices() {
        // Fake a 2-client layout directly (no network needed).
        let counts = vec![vec![2, 3], vec![4]];
        let mut offsets = Vec::new();
        let mut running = 0;
        for row in &counts {
            let mut r = Vec::new();
            for &c in row {
                r.push(running);
                running += c;
            }
            offsets.push(r);
        }
        let layout = SplitLayout {
            counts,
            offsets,
            total: running,
        };
        assert_eq!(layout.total(), 9);
        assert_eq!(layout.global_index(0, 1, 2), 4);
        assert_eq!(layout.locate(4), (0, 1, 2));
        assert_eq!(layout.locate(0), (0, 0, 0));
        assert_eq!(layout.locate(8), (1, 0, 3));
        assert_eq!(layout.block(1, 0), (5, 9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_overflow() {
        let layout = SplitLayout {
            counts: vec![vec![1]],
            offsets: vec![vec![0]],
            total: 1,
        };
        layout.locate(1);
    }
}
